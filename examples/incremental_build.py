#!/usr/bin/env python
"""Make-compatible incremental builds with fat IL objects (paper 6.1).

The paper's framework deliberately avoids a persistent compiler
database so it stays compatible with make: all persistent information
lives in object files, and program-wide information is rebuilt at
link/optimization time.  This example shows the consequence:

* editing one module recompiles only that module's object;
* yet the +O4 link re-runs HLO over all fat objects, so a change to an
  inlined callee correctly propagates into every caller.

Run: ``python examples/incremental_build.py``
"""

import tempfile

from repro import BuildEngine, CompilerOptions

SOURCES = {
    "rates": """
static global base_rate = 3;
func rate_for(tier) {
    if (tier > 2) { return base_rate * 2; }
    return base_rate;
}
""",
    "billing": """
func bill(units, tier) {
    return units * rate_for(tier);
}
""",
    "main": """
func main() {
    var total = 0;
    for (var tier = 1; tier <= 4; tier = tier + 1) {
        total = total + bill(100, tier);
    }
    return total;
}
""",
}


def show(step, result, report):
    value = result.run().value
    print("%-28s recompiled=%-24r reused=%d  main()=%d"
          % (step, report.recompiled, len(report.reused), value))
    return value


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro_objs_") as obj_dir:
        engine = BuildEngine(CompilerOptions(opt_level=4),
                             object_dir=obj_dir)

        print("object directory:", obj_dir, "\n")
        result, report = engine.build(SOURCES)
        original = show("initial build", result, report)

        result, report = engine.build(SOURCES)
        show("no-op rebuild", result, report)

        # Edit the leaf module: the doubled tier threshold changes.
        edited = dict(SOURCES)
        edited["rates"] = edited["rates"].replace("tier > 2", "tier > 1")
        result, report = engine.build(edited)
        changed = show("edit rates.mll", result, report)
        assert changed != original, "the edit must propagate"
        assert report.recompiled == ["rates"], (
            "only the edited module recompiles"
        )

        # A second engine over the same object directory: objects
        # persist on disk exactly like .o files in a make workspace.
        engine2 = BuildEngine(CompilerOptions(opt_level=4),
                              object_dir=obj_dir)
        result, report = engine2.build(edited)
        show("fresh engine, same objects", result, report)
        assert report.recompiled == []

        print("\nthe +O4 link re-optimizes across all fat objects: the")
        print("rates change reached code inlined into billing and main,")
        print("while make-style object reuse skipped their recompiles.")


if __name__ == "__main__":
    main()
