#!/usr/bin/env python
"""Quickstart: compile a small multi-module program at every
optimization level and watch CMO+PBO win.

This walks the paper's whole workflow on a toy program:

1. write MLL sources (three separately compiled modules);
2. build + run at the default level (+O2) for a baseline;
3. build an instrumented binary (+O2 +I), run it on training input,
   and collect a profile database;
4. rebuild with profile-based optimization (+O2 +P), with cross-module
   optimization (+O4), and with both (+O4 +P);
5. compare simulated cycle counts.

Run: ``python examples/quickstart.py``
"""

from repro import Compiler, CompilerOptions, train

SOURCES = {
    "geometry": """
static global scale_factor = 7;

func area(w, h) { return w * h; }

func scaled_area(w, h) {
    return area(w, h) * scale_factor;
}
""",
    "stats": """
global samples = 0;

func clamp(v, lo, hi) {
    if (v < lo) { return lo; }
    if (v > hi) { return hi; }
    return v;
}

func record(v) {
    samples = samples + 1;
    return clamp(v, 0, 10000);
}
""",
    "main": """
func main() {
    var total = 0;
    for (var i = 1; i <= 100; i = i + 1) {
        total = total + record(scaled_area(i % 10, 3));
    }
    return total + samples;
}
""",
}


def main() -> None:
    # Step 1-2: baseline build at the default optimization level.
    baseline = Compiler(CompilerOptions(opt_level=2)).build(SOURCES)
    base = baseline.run()
    print("baseline  +O2    : value=%d  cycles=%d  calls=%d"
          % (base.value, base.cycles, base.calls))

    # Step 3: train -- instrumented build, one training run, profile db.
    profile = train(SOURCES, [None])
    hottest = ", ".join(
        "%s(%d)" % (name, weight)
        for name, weight in profile.hottest_routines(3)
    )
    print("profile trained  : hottest routines: %s" % hottest)

    # Step 4-5: the ladder the paper's Figure 1 compares.
    for label, options in [
        ("+O2 +P", CompilerOptions(opt_level=2, pbo=True)),
        ("+O4", CompilerOptions(opt_level=4)),
        ("+O4 +P", CompilerOptions(opt_level=4, pbo=True)),
    ]:
        build = Compiler(options).build(SOURCES, profile_db=profile)
        result = build.run()
        assert result.value == base.value, "optimization changed semantics!"
        inlines = (build.hlo_result.inline_stats.performed
                   if build.hlo_result else 0)
        print(
            "build     %-7s: value=%d  cycles=%d  calls=%d  "
            "speedup=%.2fx  inlines=%d"
            % (label, result.value, result.cycles, result.calls,
               base.cycles / result.cycles, inlines)
        )


if __name__ == "__main__":
    main()
