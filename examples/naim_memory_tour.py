#!/usr/bin/env python
"""A tour of the NAIM (not-all-in-memory) machinery.

Demonstrates, on a gcc-sized synthetic application, the three
mechanisms of paper section 4:

1. compaction: a routine's expanded IR vs its relocatable byte form
   (PID-swizzled, derived data dropped);
2. the loader: pools moving between expanded / compact / offloaded
   states under a small LRU cache, with live memory accounting;
3. thresholding: the same compilation under four NAIM levels -- the
   Figure 5 time/space trade-off.

Run: ``python examples/naim_memory_tour.py``
"""

import time

from repro import Compiler, CompilerOptions, NaimConfig, NaimLevel, train
from repro.frontend import compile_sources
from repro.naim import (
    Loader,
    Repository,
    compact_routine,
    expanded_routine_bytes,
    fmt_bytes,
    uncompact_routine,
)
from repro.synth import generate, spec_like_suite


def section(title):
    print("\n== %s ==" % title)


def main() -> None:
    config = next(c for c in spec_like_suite() if c.name == "gcc_like")
    app = generate(config)
    program = compile_sources(app.sources)
    print("application: %s (%d modules, %d lines, %d routines)"
          % (config.name, len(app.sources), app.source_lines(),
             len(program.all_routines())))

    # -- 1. Compaction --------------------------------------------------
    section("compaction (paper 4.2.1-4.2.2)")
    routine = max(program.all_routines(), key=lambda r: r.instr_count())
    routine.predecessors()  # populate derived data, like a real pass
    expanded = expanded_routine_bytes(routine)
    blob = compact_routine(routine, program.symtab)
    print("routine %-12s expanded=%-8s relocatable=%-7s ratio=%.0fx"
          % (routine.name, fmt_bytes(expanded), fmt_bytes(len(blob)),
             expanded / len(blob)))
    restored = uncompact_routine(blob, program.symtab)
    print("round trip: %d blocks -> %d blocks, derived data dropped: %s"
          % (len(routine.blocks), len(restored.blocks),
             len(restored.derived) == 0))

    # -- 2. The loader ---------------------------------------------------
    section("the loader: LRU cache + repository (paper 4.2-4.3)")
    loader = Loader(
        NaimConfig.pinned(NaimLevel.OFFLOAD, cache_pools=8),
        program.symtab,
        repository=Repository(in_memory=True),
    )
    handles = [loader.register_routine(r) for r in program.all_routines()]
    print("registered %d pools: %s resident"
          % (len(handles), fmt_bytes(loader.current_bytes())))
    for handle in handles:
        handle.request_unload()
    print("after release-all:  %s resident, states=%s"
          % (fmt_bytes(loader.current_bytes()), loader.pool_states()))
    for handle in handles[:20]:
        handle.get()  # touch back in
    print("after 20 touches:   %s resident, %s"
          % (fmt_bytes(loader.current_bytes()), loader.stats))

    # -- 3. Thresholded compilation (Figure 5) ------------------------------
    section("NAIM levels during a real +O4 +P build (Figure 5)")
    profile = train(app.sources, [app.make_input(seed=1)])
    for label, level in [
        ("NAIM off", NaimLevel.OFF),
        ("IR compaction", NaimLevel.IR_COMPACT),
        ("+ST compaction", NaimLevel.ST_COMPACT),
        ("offload to disk", NaimLevel.OFFLOAD),
    ]:
        options = CompilerOptions(
            opt_level=4, pbo=True,
            naim=NaimConfig.pinned(level, cache_pools=12),
        )
        started = time.perf_counter()
        build = Compiler(options).build(app.sources, profile_db=profile)
        seconds = time.perf_counter() - started
        stats = build.hlo_result.loader.stats
        print(
            "%-16s build=%5.2fs  hlo_peak=%-8s compact=%-5d fetches=%d"
            % (
                label,
                seconds,
                fmt_bytes(build.hlo_result.peak_bytes),
                stats.compactions,
                stats.repository_fetches,
            )
        )


if __name__ == "__main__":
    main()
