#!/usr/bin/env python
"""Regenerate the paper's data figures at a quick scale.

Thin CLI over :mod:`repro.bench.figures` -- the same harness the
benchmark suite uses, sized for an interactive run (a few minutes).
For the full-scale numbers recorded in EXPERIMENTS.md, use
``python -m repro.bench all``.

Run: ``python examples/figure_tour.py [figure1|figure4|figure5|figure6|history|all]``
"""

import sys

from repro.bench.figures import (
    run_figure1,
    run_figure4,
    run_figure5,
    run_figure6,
    run_history,
)

QUICK = {
    "figure1": lambda: run_figure1(quick=True, mcad_scale=0.3),
    "figure4": lambda: run_figure4(points=4, scale=0.4),
    "figure5": lambda: run_figure5(scale=1.5),
    "figure6": lambda: run_figure6(
        percents=[5.0, 20.0, 60.0, 100.0], scale=0.4
    ),
    "history": lambda: run_history(scale=1.0),
}


def main() -> None:
    which = sys.argv[1] if len(sys.argv) > 1 else "all"
    names = list(QUICK) if which == "all" else [which]
    for name in names:
        if name not in QUICK:
            raise SystemExit(
                "unknown figure %r (choose from %s)" % (name, list(QUICK))
            )
        print(QUICK[name]().render())
        print()


if __name__ == "__main__":
    main()
