#!/usr/bin/env python
"""Selective cross-module optimization on an MCAD-like application.

Reproduces the paper's headline workflow (sections 2 and 5) on a
synthetic stand-in for Mcad1: train on a representative input, then
sweep the selectivity percentage and watch run time saturate while
compile time keeps climbing -- the Figure 6 story.  Finally prints the
chosen operating point: full CMO benefit at a fraction of the compile
cost.

Run: ``python examples/mcad_selective_cmo.py [--scale 0.5]``
"""

import argparse
import time

from repro import Compiler, CompilerOptions, train
from repro.synth import generate, mcad_suite


def build_and_measure(app, options, profile, inputs):
    started = time.perf_counter()
    build = Compiler(options).build(app.sources, profile_db=profile)
    compile_seconds = time.perf_counter() - started
    outcome = build.run(inputs=inputs)
    return build, compile_seconds, outcome


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5,
                        help="mcad1-like workload scale (default 0.5)")
    args = parser.parse_args()

    config = mcad_suite(args.scale)[0]
    app = generate(config)
    print("application: %s (%d modules, %d lines)"
          % (config.name, len(app.sources), app.source_lines()))
    print("scale note : %s\n" % config.scale_note)

    # Train once (the ISV apps trained and benchmarked on the same data).
    inputs = app.make_input(seed=1)
    profile = train(app.sources, [inputs])

    # The PBO-only end of Figure 6's axis.
    _, pbo_seconds, pbo = build_and_measure(
        app, CompilerOptions(opt_level=2, pbo=True), profile, inputs
    )
    print("%-18s compile=%5.2fs  run=%9d cycles  (reference)"
          % ("+O2 +P (0%)", pbo_seconds, pbo.cycles))

    best = None
    for percent in (2, 5, 10, 20, 40, 100):
        options = CompilerOptions(
            opt_level=4, pbo=True, selectivity_percent=float(percent)
        )
        build, seconds, outcome = build_and_measure(
            app, options, profile, inputs
        )
        assert outcome.value == pbo.value, "selectivity broke semantics!"
        plan = build.plan
        speedup = pbo.cycles / outcome.cycles
        print(
            "%-18s compile=%5.2fs  run=%9d cycles  speedup=%.3fx  "
            "(%d/%d modules, %.0f%% of lines in CMO)"
            % (
                "+O4 +P sel=%d%%" % percent,
                seconds,
                outcome.cycles,
                speedup,
                len(plan.cmo_modules),
                len(app.sources),
                100 * plan.line_fraction,
            )
        )
        if best is None or speedup > best[1] * 1.01:
            best = (percent, speedup, seconds)

    percent, speedup, seconds = best
    print(
        "\noperating point: selectivity %d%% reaches %.3fx in %.2fs of "
        "compile time -- the paper's 'full benefit of CMO while limiting "
        "compile time' (section 5)" % (percent, speedup, seconds)
    )


if __name__ == "__main__":
    main()
