#!/usr/bin/env python
"""Automated optimizer-bug isolation (paper section 6.3).

"Run-time behavior differences that appear only when large-scale
interprocedural optimizations are deployed are particularly difficult
to diagnose."  The paper's workflow reduces along two dimensions: the
amount of code exposed to the optimizer, and the number of
optimizations performed.

This example injects a deliberate inliner miscompile (a debug hook of
this reproduction), then:

1. shrinks the CMO module set to a minimal failing subset
   (delta-debugging over modules);
2. binary-searches the inliner's operation limit to name the exact
   inline operation that breaks the program (after Whalley [18]).

Run: ``python examples/bug_isolation.py``
"""

from repro import Compiler, CompilerOptions, HloOptions
from repro.triage import isolate_failing_modules, isolate_inline_operation

SOURCES = {
    "geometry": """
func perimeter(w, h) { return 2 * (w + h); }
func diag_sq(w, h) { return w * w + h * h; }
""",
    "pricing": """
func unit_cost(area) {
    if (area > 50) { return 3; }
    return 5;
}
func fence_cost(w, h) { return perimeter(w, h) * unit_cost(w * h); }
""",
    "report": """
func summarize(w, h) {
    return fence_cost(w, h) * 1000 + diag_sq(w, h);
}
""",
    "main": """
func main() {
    return summarize(9, 7);
}
""",
}

#: Which inline operation the simulated compiler bug corrupts.
BUGGY_INLINE = 2


def main() -> None:
    reference = Compiler(CompilerOptions(opt_level=2)).build(SOURCES)
    expected = reference.run().value
    print("expected output (at +O2): %d" % expected)

    buggy = CompilerOptions(
        opt_level=4,
        hlo=HloOptions(inject_inline_bug_after=BUGGY_INLINE),
    )
    broken = Compiler(buggy).build(SOURCES).run().value
    print("with the buggy optimizer (+O4): %d   <-- miscompiled!" % broken)

    def failure(build):
        try:
            return build.run().value != expected
        except Exception:
            return True

    print("\nstep 1: minimize the CMO module set (delta debugging)")
    module_report = isolate_failing_modules(
        SOURCES, failure, base_options=buggy
    )
    print("  minimal failing CMO set : %r" % module_report.minimal_modules)
    print("  builds tried            : %d" % module_report.builds_tried)

    print("\nstep 2: bisect the inliner's operation limit")
    inline_report = isolate_inline_operation(
        SOURCES, failure, base_options=buggy
    )
    print("  first failing inline op : #%d" % inline_report.failing_inline_index)
    caller, callee = inline_report.suspect_inline
    print("  suspect operation       : inline %s -> %s" % (callee, caller))
    print("  builds tried            : %d" % inline_report.builds_tried)

    assert inline_report.failing_inline_index == BUGGY_INLINE
    print("\nisolated: the injected bug was at inline #%d, exactly where "
          "the bisection points." % BUGGY_INLINE)


if __name__ == "__main__":
    main()
