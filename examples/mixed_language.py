#!/usr/bin/env python
"""Mixed-language cross-module optimization (paper section 3).

"Large programs are often written in more than one source language
(for instance, Mcad2 is a mixture of C, C++, and FORTRAN).  Because HLO
works at the IL level, it can freely optimize mixed-language
applications.  In fact, HLO does not need to know the source language
of a module."

Here a FORTRAN-flavoured (MFL) numerics module and a C-flavoured (MLL)
driver are compiled by different frontends into the same IL, linked,
and cross-module optimized: the hot FORTRAN kernels get inlined into
the C caller's loop.

Run: ``python examples/mixed_language.py``
"""

from repro import Compiler, CompilerOptions, HloOptions, train
from repro.frontend import detect_language

FORTRANISH_NUMERICS = """
! numerics.mfl -- FORTRAN-flavoured kernels
INTEGER EVALS = 0
PRIVATE INTEGER WEIGHTS(8) = 3, 1, 4, 1, 5, 9, 2, 6

FUNCTION WEIGHT_AT(I)
  RETURN WEIGHTS(1 + IAND(I, 7))
END

FUNCTION BLEND(A, B)
  EVALS = EVALS + 1
  IF (A .GT. B) THEN
    RETURN A * 3 + B
  ELSE
    RETURN B * 3 + A
  END IF
END

FUNCTION ACCUMULATE(N)
  INTEGER S
  S = 0
  DO I = 1, N
    S = S + BLEND(WEIGHT_AT(I), MOD(I, 7))
  END DO
  RETURN S
END
"""

CISH_DRIVER = """
// driver.mll -- C-flavoured application driver
func main() {
    var total = 0;
    for (var round = 0; round < 25; round = round + 1) {
        total = total + accumulate(16);
    }
    return total * 10 + evals;
}
"""


def main() -> None:
    sources = {"numerics": FORTRANISH_NUMERICS, "driver": CISH_DRIVER}
    for name, text in sources.items():
        print("module %-9s -> %s frontend" % (name, detect_language(text)))

    baseline = Compiler(CompilerOptions(opt_level=2)).build(sources)
    base = baseline.run()
    print("\n+O2 baseline : value=%d cycles=%d calls=%d"
          % (base.value, base.cycles, base.calls))

    profile = train(sources, [None])
    build = Compiler(
        CompilerOptions(
            opt_level=4,
            pbo=True,
            # Generous size budget: let the whole FORTRAN-ish call tree
            # fold into the C-ish driver loop.
            hlo=HloOptions(inline_callee_max_instrs=120,
                           inline_hot_callee_max_instrs=300,
                           inline_program_growth_factor=4.0),
        )
    ).build(sources, profile_db=profile)
    result = build.run()
    assert result.value == base.value, "cross-language CMO broke semantics!"
    stats = build.hlo_result.inline_stats

    print("+O4 +P       : value=%d cycles=%d calls=%d  speedup=%.2fx"
          % (result.value, result.cycles, result.calls,
             base.cycles / result.cycles))
    print("\ninlines performed: %d (%d cross-module)"
          % (stats.performed, stats.cross_module_count()))
    for caller, callee in stats.performed_list:
        print("  %-12s <- %s" % (caller, callee))
    print("\nHLO never knew which frontend produced which routine: the")
    print("FORTRAN-ish kernels were spliced straight into the C-ish loop.")


if __name__ == "__main__":
    main()
