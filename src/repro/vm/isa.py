"""The virtual target machine ISA.

A small register machine standing in for the paper's PA-8000 target.
LLO lowers IL into this ISA; the linker resolves symbolic operands to
absolute code/data addresses; :mod:`repro.vm.machine` executes the
result functionally while charging cycles from the cost model.

Register convention:

* 16 general-purpose registers ``R0..R15``;
* ``R0`` is the call return-value register (clobbered by every call);
* ``R14``/``R15`` are reserved spill-reload scratch registers;
* ``R1..R13`` are allocatable.

Calling convention: the caller writes outgoing arguments with ``ARG k``,
then ``CALL``.  The machine materializes a fresh frame whose slots
``0..n-1`` hold the arguments; the callee addresses its frame through
``LDS``/``STS`` slot instructions.  Return values travel through ``R0``.
Each frame gets a fresh register file, so the fixed call/return cycle
overhead in the cost model stands in for caller/callee save-restore
traffic (documented substitution, DESIGN.md §2).
"""

from __future__ import annotations

import enum
from typing import Optional

from ..ir.instructions import Opcode

#: Total general-purpose registers.
NUM_REGS = 16
#: Return-value register.
REG_RV = 0
#: Scratch registers reserved for spill reloads.
REG_SCRATCH_A = 14
REG_SCRATCH_B = 15
#: Registers the allocator may hand out.
ALLOCATABLE_REGS = tuple(range(1, 14))


class MOp(enum.Enum):
    """Machine opcodes."""

    LDI = "ldi"  # rd <- imm
    MOVR = "movr"  # rd <- rs1
    ALU3 = "alu3"  # rd <- rs1 (subop) rs2
    ALU2 = "alu2"  # rd <- (subop) rs1
    LDG = "ldg"  # rd <- data[imm]
    STG = "stg"  # data[imm] <- rs1
    LDX = "ldx"  # rd <- data[imm + rs1]  (bounds-checked vs imm2=size)
    STX = "stx"  # data[imm + rs1] <- rs2
    LDS = "lds"  # rd <- frame[imm]
    STS = "sts"  # frame[imm] <- rs1
    ARG = "arg"  # outgoing_arg[imm] <- rs1
    CALL = "call"  # call routine (sym until link, imm = code addr after)
    RET = "ret"  # return; value already in R0
    BT = "bt"  # if rs1 != 0 jump to target
    BF = "bf"  # if rs1 == 0 jump to target
    J = "j"  # unconditional jump
    PROBE = "probe"  # profile counter +1 (imm = probe index after link)
    HALT = "halt"  # stop the machine (image epilogue)


class MInstr:
    """One machine instruction.

    ``sym``/``target`` are symbolic (routine name / block label) before
    linking; the linker rewrites them into absolute values in ``imm``
    and clears the symbolic field.  ``imm2`` carries the array size for
    bounds checking of LDX/STX.
    """

    __slots__ = ("op", "subop", "rd", "rs1", "rs2", "imm", "imm2", "sym", "target")

    def __init__(
        self,
        op: MOp,
        subop: Optional[Opcode] = None,
        rd: Optional[int] = None,
        rs1: Optional[int] = None,
        rs2: Optional[int] = None,
        imm: Optional[int] = None,
        imm2: Optional[int] = None,
        sym: Optional[str] = None,
        target: Optional[str] = None,
    ) -> None:
        self.op = op
        self.subop = subop
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.imm = imm
        self.imm2 = imm2
        self.sym = sym
        self.target = target

    def copy(self) -> "MInstr":
        clone = MInstr(self.op)
        clone.subop = self.subop
        clone.rd = self.rd
        clone.rs1 = self.rs1
        clone.rs2 = self.rs2
        clone.imm = self.imm
        clone.imm2 = self.imm2
        clone.sym = self.sym
        clone.target = self.target
        return clone

    def reads(self):
        """Registers read by this instruction."""
        if self.rs1 is not None:
            yield self.rs1
        if self.rs2 is not None:
            yield self.rs2

    def __repr__(self) -> str:
        fields = []
        if self.subop is not None:
            fields.append(self.subop.value)
        for name in ("rd", "rs1", "rs2"):
            value = getattr(self, name)
            if value is not None:
                fields.append("%s=r%d" % (name, value))
        for name in ("imm", "imm2"):
            value = getattr(self, name)
            if value is not None:
                fields.append("%s=%d" % (name, value))
        for name in ("sym", "target"):
            value = getattr(self, name)
            if value is not None:
                fields.append("%s=%s" % (name, value))
        return "<%s %s>" % (self.op.value, " ".join(fields))
