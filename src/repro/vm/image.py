"""Executable images: fully linked machine code plus a data segment."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .isa import MInstr


class MachineRoutine:
    """One routine's machine code as emitted by LLO (pre-link).

    Branch targets are already resolved to *routine-local* instruction
    offsets (stored in ``imm``); calls and global references are still
    symbolic (``sym``).  ``frame_size`` counts i64 frame slots: the
    first ``n_params`` slots hold incoming arguments, the rest are
    spill slots.
    """

    __slots__ = ("name", "instrs", "n_params", "frame_size", "source_module")

    def __init__(
        self,
        name: str,
        instrs: List[MInstr],
        n_params: int,
        frame_size: int,
        source_module: str = "",
    ) -> None:
        self.name = name
        self.instrs = instrs
        self.n_params = n_params
        self.frame_size = frame_size
        self.source_module = source_module

    def __len__(self) -> int:
        return len(self.instrs)

    def __repr__(self) -> str:
        return "<MachineRoutine %s (%d instrs, frame=%d)>" % (
            self.name,
            len(self.instrs),
            self.frame_size,
        )


class RoutineMeta:
    """Per-routine metadata the machine needs at call time."""

    __slots__ = ("name", "n_params", "frame_size", "addr", "size")

    def __init__(
        self, name: str, n_params: int, frame_size: int, addr: int, size: int
    ) -> None:
        self.name = name
        self.n_params = n_params
        self.frame_size = frame_size
        self.addr = addr
        self.size = size


class ProbeInfo:
    """Where an instrumentation probe lives (for profile correlation)."""

    __slots__ = ("probe_id", "routine", "kind", "key")

    def __init__(self, probe_id: int, routine: str, kind: str, key: Tuple) -> None:
        self.probe_id = probe_id
        self.routine = routine
        #: "edge" or "call" or "entry".
        self.kind = kind
        self.key = key


class Executable:
    """A linked program image.

    ``code`` is the flat instruction array with every operand resolved
    to absolute values; ``data_init`` the initial data segment; address
    maps support diagnostics and the I-cache locality model (layout
    order *is* the address assignment).
    """

    def __init__(self) -> None:
        self.code: List[MInstr] = []
        self.data_init: List[int] = []
        self.entry_addr = 0
        self.routine_meta: Dict[str, RoutineMeta] = {}
        self.meta_by_addr: Dict[int, RoutineMeta] = {}
        self.data_addr: Dict[str, int] = {}
        self.data_size: Dict[str, int] = {}
        #: Probe bookkeeping (instrumented images only).
        self.probes: List[ProbeInfo] = []
        #: Human-readable link order, for layout diagnostics.
        self.layout_order: List[str] = []

    def routine_addr(self, name: str) -> int:
        return self.routine_meta[name].addr

    def code_size(self) -> int:
        return len(self.code)

    def global_value(self, data: List[int], name: str) -> int:
        """Read a global scalar out of a (post-run) data segment."""
        return data[self.data_addr[name]]

    def global_array(self, data: List[int], name: str) -> List[int]:
        base = self.data_addr[name]
        return data[base : base + self.data_size[name]]

    def find_routine_containing(self, addr: int) -> Optional[RoutineMeta]:
        for meta in self.routine_meta.values():
            if meta.addr <= addr < meta.addr + meta.size:
                return meta
        return None

    def __repr__(self) -> str:
        return "<Executable (%d instrs, %d data words, %d routines)>" % (
            len(self.code),
            len(self.data_init),
            len(self.routine_meta),
        )
