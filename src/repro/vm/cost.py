"""The virtual machine's cycle cost model.

The model captures the performance effects the paper's optimizations
target (DESIGN.md §2):

* **call overhead** -- what cross-module inlining removes;
* **taken-branch penalty** -- what profile-guided block layout removes;
* **I-cache misses** -- what Pettis-Hansen procedure clustering and
  layout reduce;
* **load-use stalls** -- what the LLO scheduler hides;
* **memory traffic** -- what register allocation avoids (spill code is
  real LDS/STS instructions, so its cost emerges naturally).

Absolute numbers are loosely PA-8000-flavoured but arbitrary; only the
relative structure matters for reproducing the paper's speedup shapes.
"""

from __future__ import annotations

from ..ir.instructions import Opcode


class CostModel:
    """Cycle costs; construct with keyword overrides for experiments."""

    def __init__(
        self,
        base_cycles: int = 1,
        mul_cycles: int = 3,
        div_cycles: int = 8,
        load_cycles: int = 2,
        store_cycles: int = 2,
        load_use_stall: int = 1,
        taken_branch_penalty: int = 2,
        call_overhead: int = 10,
        ret_overhead: int = 3,
        icache_lines: int = 1024,
        icache_line_words: int = 8,
        icache_miss_penalty: int = 10,
        icache_enabled: bool = True,
    ) -> None:
        self.base_cycles = base_cycles
        self.mul_cycles = mul_cycles
        self.div_cycles = div_cycles
        self.load_cycles = load_cycles
        self.store_cycles = store_cycles
        self.load_use_stall = load_use_stall
        self.taken_branch_penalty = taken_branch_penalty
        self.call_overhead = call_overhead
        self.ret_overhead = ret_overhead
        self.icache_lines = icache_lines
        self.icache_line_words = icache_line_words
        self.icache_miss_penalty = icache_miss_penalty
        self.icache_enabled = icache_enabled

    def alu_cycles(self, subop: Opcode) -> int:
        if subop is Opcode.MUL:
            return self.mul_cycles
        if subop in (Opcode.DIV, Opcode.MOD):
            return self.div_cycles
        return self.base_cycles

    def describe(self) -> str:
        return (
            "CostModel(call=%d, taken_br=%d, icache=%dx%d/miss=%d, "
            "load=%d, stall=%d)"
            % (
                self.call_overhead,
                self.taken_branch_penalty,
                self.icache_lines,
                self.icache_line_words,
                self.icache_miss_penalty,
                self.load_cycles,
                self.load_use_stall,
            )
        )


#: Default model used by the benchmarks.
DEFAULT_COST_MODEL = CostModel()
