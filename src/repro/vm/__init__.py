"""Virtual target machine: ISA, cost model, images, functional simulator."""

from .cost import DEFAULT_COST_MODEL, CostModel
from .image import Executable, MachineRoutine, ProbeInfo, RoutineMeta
from .isa import (
    ALLOCATABLE_REGS,
    NUM_REGS,
    REG_RV,
    REG_SCRATCH_A,
    REG_SCRATCH_B,
    MInstr,
    MOp,
)
from .machine import Machine, MachineError, MachineResult, run_image

__all__ = [
    "DEFAULT_COST_MODEL",
    "CostModel",
    "Executable",
    "MachineRoutine",
    "ProbeInfo",
    "RoutineMeta",
    "ALLOCATABLE_REGS",
    "NUM_REGS",
    "REG_RV",
    "REG_SCRATCH_A",
    "REG_SCRATCH_B",
    "MInstr",
    "MOp",
    "Machine",
    "MachineError",
    "MachineResult",
    "run_image",
]
