"""The functional machine simulator with cycle accounting.

Runs linked :class:`Executable` images.  The simulator is *functional*
-- it computes real values, so end-to-end correctness of LLO and the
linker is testable against the IL interpreter -- and simultaneously
charges cycles from a :class:`CostModel`, including a direct-mapped
I-cache driven by the image's actual code addresses.  That makes block
layout and procedure clustering measurable, which is what Figures 1 and
6 of the paper need.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..ir.instructions import fold_binary, fold_unary, wrap64
from .cost import DEFAULT_COST_MODEL, CostModel
from .image import Executable
from .isa import REG_RV, MOp


class MachineError(Exception):
    """Raised on machine traps (bad address, arity mismatch...)."""


class MachineResult:
    """Outcome of one simulated execution."""

    __slots__ = (
        "value",
        "cycles",
        "instructions",
        "calls",
        "icache_misses",
        "taken_branches",
        "load_use_stalls",
        "probe_counts",
        "data",
    )

    def __init__(self) -> None:
        self.value = 0
        self.cycles = 0
        self.instructions = 0
        self.calls = 0
        self.icache_misses = 0
        self.taken_branches = 0
        self.load_use_stalls = 0
        #: probe index -> count (instrumented runs).
        self.probe_counts: List[int] = []
        #: Final data segment (for output checking).
        self.data: List[int] = []

    def __repr__(self) -> str:
        return (
            "<MachineResult value=%d cycles=%d instrs=%d calls=%d "
            "icache_misses=%d>"
            % (
                self.value,
                self.cycles,
                self.instructions,
                self.calls,
                self.icache_misses,
            )
        )


class _Frame:
    __slots__ = ("regs", "slots", "return_addr", "ret_dst")

    def __init__(self, frame_size: int, return_addr: int) -> None:
        self.regs = [0] * 16
        self.slots = [0] * frame_size
        self.return_addr = return_addr


class Machine:
    """Executes a linked image."""

    def __init__(
        self,
        image: Executable,
        cost_model: Optional[CostModel] = None,
        max_instructions: int = 200_000_000,
        max_depth: int = 4000,
    ) -> None:
        self.image = image
        self.cost = cost_model or DEFAULT_COST_MODEL
        self.max_instructions = max_instructions
        self.max_depth = max_depth
        # Outgoing-argument staging area (written by ARG, consumed by CALL).
        self._arg_buffer: List[int] = [0] * 64
        self._args_written = 0

    def run(
        self,
        inputs: Optional[Dict[str, Sequence[int]]] = None,
    ) -> MachineResult:
        """Run from the image entry point until HALT.

        ``inputs`` maps global array names to initial contents, poked
        into the data segment before execution (the stand-in for input
        files).
        """
        image = self.image
        cost = self.cost
        result = MachineResult()
        data = list(image.data_init)
        if inputs:
            for name, values in inputs.items():
                base = image.data_addr[name]
                size = image.data_size[name]
                if len(values) > size:
                    raise MachineError(
                        "input for %s has %d values, array holds %d"
                        % (name, len(values), size)
                    )
                for offset, value in enumerate(values):
                    data[base + offset] = wrap64(value)
        probe_counts = [0] * len(image.probes)

        # I-cache state: tag per line, direct-mapped.
        icache_enabled = cost.icache_enabled
        lines = cost.icache_lines
        line_words = cost.icache_line_words
        tags = [-1] * lines

        code = image.code
        frames: List[_Frame] = [_Frame(0, -1)]
        frame = frames[0]
        pc = image.entry_addr
        cycles = 0
        instructions = 0
        last_load_reg = -1  # register written by the immediately preceding load

        while True:
            instr = code[pc]
            instructions += 1
            if instructions > self.max_instructions:
                raise MachineError("instruction budget exhausted at pc=%d" % pc)

            # Instruction fetch / I-cache.
            if icache_enabled:
                line_addr = pc // line_words
                index = line_addr % lines
                if tags[index] != line_addr:
                    tags[index] = line_addr
                    cycles += cost.icache_miss_penalty
                    result.icache_misses += 1

            op = instr.op
            regs = frame.regs

            # Load-use stall: consumer immediately after a load.
            if last_load_reg >= 0:
                stalled = False
                for reg in instr.reads():
                    if reg == last_load_reg:
                        stalled = True
                        break
                if stalled:
                    cycles += cost.load_use_stall
                    result.load_use_stalls += 1
                last_load_reg = -1

            if op is MOp.LDI:
                regs[instr.rd] = instr.imm
                cycles += cost.base_cycles
                pc += 1
            elif op is MOp.MOVR:
                regs[instr.rd] = regs[instr.rs1]
                cycles += cost.base_cycles
                pc += 1
            elif op is MOp.ALU3:
                regs[instr.rd] = fold_binary(instr.subop, regs[instr.rs1], regs[instr.rs2])
                cycles += cost.alu_cycles(instr.subop)
                pc += 1
            elif op is MOp.ALU2:
                regs[instr.rd] = fold_unary(instr.subop, regs[instr.rs1])
                cycles += cost.base_cycles
                pc += 1
            elif op is MOp.LDG:
                regs[instr.rd] = data[instr.imm]
                cycles += cost.load_cycles
                last_load_reg = instr.rd
                pc += 1
            elif op is MOp.STG:
                data[instr.imm] = regs[instr.rs1]
                cycles += cost.store_cycles
                pc += 1
            elif op is MOp.LDX:
                index = regs[instr.rs1]
                if not 0 <= index < instr.imm2:
                    raise MachineError(
                        "array load out of range at pc=%d (index %d, size %d)"
                        % (pc, index, instr.imm2)
                    )
                regs[instr.rd] = data[instr.imm + index]
                cycles += cost.load_cycles
                last_load_reg = instr.rd
                pc += 1
            elif op is MOp.STX:
                index = regs[instr.rs1]
                if not 0 <= index < instr.imm2:
                    raise MachineError(
                        "array store out of range at pc=%d (index %d, size %d)"
                        % (pc, index, instr.imm2)
                    )
                data[instr.imm + index] = regs[instr.rs2]
                cycles += cost.store_cycles
                pc += 1
            elif op is MOp.LDS:
                regs[instr.rd] = frame.slots[instr.imm]
                cycles += cost.load_cycles
                last_load_reg = instr.rd
                pc += 1
            elif op is MOp.STS:
                frame.slots[instr.imm] = regs[instr.rs1]
                cycles += cost.store_cycles
                pc += 1
            elif op is MOp.ARG:
                self._arg_buffer[instr.imm] = regs[instr.rs1]
                self._args_written = max(self._args_written, instr.imm + 1)
                cycles += cost.base_cycles
                pc += 1
            elif op is MOp.CALL:
                meta = self.image.meta_by_addr.get(instr.imm)
                if meta is None:
                    raise MachineError("call to non-routine address %d" % instr.imm)
                if self._args_written != meta.n_params:
                    raise MachineError(
                        "interface mismatch calling %s: %d args passed, %d expected"
                        % (meta.name, self._args_written, meta.n_params)
                    )
                if len(frames) >= self.max_depth:
                    raise MachineError("call stack overflow at %s" % meta.name)
                callee = _Frame(meta.frame_size, pc + 1)
                callee.slots[: meta.n_params] = self._arg_buffer[: meta.n_params]
                frames.append(callee)
                frame = callee
                self._args_written = 0
                cycles += cost.call_overhead
                result.calls += 1
                pc = instr.imm
            elif op is MOp.RET:
                value = regs[REG_RV]
                frames.pop()
                if not frames:
                    raise MachineError("RET with empty call stack")
                return_addr = frame.return_addr
                frame = frames[-1]
                frame.regs[REG_RV] = value
                self._args_written = 0
                cycles += cost.ret_overhead
                pc = return_addr
            elif op is MOp.BT:
                if regs[instr.rs1]:
                    pc = instr.imm
                    cycles += cost.base_cycles + cost.taken_branch_penalty
                    result.taken_branches += 1
                else:
                    cycles += cost.base_cycles
                    pc += 1
            elif op is MOp.BF:
                if not regs[instr.rs1]:
                    pc = instr.imm
                    cycles += cost.base_cycles + cost.taken_branch_penalty
                    result.taken_branches += 1
                else:
                    cycles += cost.base_cycles
                    pc += 1
            elif op is MOp.J:
                pc = instr.imm
                cycles += cost.base_cycles + cost.taken_branch_penalty
                result.taken_branches += 1
            elif op is MOp.PROBE:
                probe_counts[instr.imm] += 1
                cycles += cost.base_cycles
                pc += 1
            elif op is MOp.HALT:
                result.value = frame.regs[REG_RV]
                result.cycles = cycles
                result.instructions = instructions
                result.probe_counts = probe_counts
                result.data = data
                return result
            else:  # pragma: no cover
                raise MachineError("unhandled machine op %s" % op)

def run_image(
    image: Executable,
    inputs: Optional[Dict[str, Sequence[int]]] = None,
    cost_model: Optional[CostModel] = None,
    max_instructions: int = 200_000_000,
) -> MachineResult:
    """One-shot convenience wrapper around :class:`Machine`."""
    return Machine(image, cost_model, max_instructions=max_instructions).run(inputs)
