"""IL interpreter: the system's reference semantics."""

from .interpreter import DEFAULT_MAX_STEPS, Interpreter, run_program
from .state import GlobalMemory, RunResult, TrapError

__all__ = [
    "DEFAULT_MAX_STEPS",
    "Interpreter",
    "run_program",
    "GlobalMemory",
    "RunResult",
    "TrapError",
]
