"""The IL interpreter: the reference semantics for the whole system.

Every other executable representation (the optimizer's constant folder,
the virtual machine) must agree with this interpreter; property tests
assert exactly that.  It is also how instrumented (+I) builds are run on
training inputs to produce profile databases when the user wants
profiles without going through the VM.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, Sequence

from ..ir.instructions import (
    BINARY_OPS,
    Opcode,
    fold_binary,
    fold_unary,
    wrap64,
)
from ..ir.program import ENTRY_NAME, Program
from ..ir.routine import Routine
from .state import GlobalMemory, RunResult, TrapError

#: Default dynamic-step budget; keeps property tests total.
DEFAULT_MAX_STEPS = 50_000_000


class Interpreter:
    """Executes IL programs with checked, total semantics."""

    def __init__(
        self,
        program: Program,
        max_steps: int = DEFAULT_MAX_STEPS,
        max_depth: int = 2000,
    ) -> None:
        self.program = program
        self.max_steps = max_steps
        self.max_depth = max_depth
        self._routines: Dict[str, Routine] = {}
        for routine in program.all_routines():
            self._routines[routine.name] = routine
        self._steps = 0
        self._calls = 0

    # -- Entry points ---------------------------------------------------------

    def run(
        self,
        entry: str = ENTRY_NAME,
        args: Sequence[int] = (),
        memory: Optional[GlobalMemory] = None,
        inputs: Optional[Dict[str, List[int]]] = None,
    ) -> RunResult:
        """Execute ``entry(args...)`` and return the result.

        ``inputs`` maps global array names to values poked into memory
        before the run (the harness's stand-in for program input files).
        """
        if memory is None:
            memory = GlobalMemory.for_program(self.program)
        if inputs:
            for sym, values in inputs.items():
                memory.set_array(sym, list(values))
        self._steps = 0
        self._calls = 0
        probe_counts: Dict[int, int] = {}
        # The interpreter recurses in Python for IL calls; make sure the
        # Python stack can hold max_depth IL frames.
        old_limit = sys.getrecursionlimit()
        needed = self.max_depth * 3 + 200
        if needed > old_limit:
            sys.setrecursionlimit(needed)
        try:
            value = self._call(
                entry, [wrap64(a) for a in args], memory, probe_counts, 0
            )
        finally:
            if needed > old_limit:
                sys.setrecursionlimit(old_limit)
        return RunResult(value, self._steps, self._calls, probe_counts)

    # -- Core loop ------------------------------------------------------------

    def _call(
        self,
        name: str,
        args: List[int],
        memory: GlobalMemory,
        probes: Dict[int, int],
        depth: int,
    ) -> int:
        if depth > self.max_depth:
            raise TrapError("call depth exceeded at %s" % name)
        routine = self._routines.get(name)
        if routine is None:
            raise TrapError("call to undefined routine %s" % name)
        if len(args) != routine.n_params:
            raise TrapError(
                "%s called with %d args, expects %d"
                % (name, len(args), routine.n_params)
            )
        self._calls += 1

        regs: List[int] = [0] * routine.next_reg
        regs[: len(args)] = args
        blocks = {block.label: block for block in routine.blocks}
        block = routine.blocks[0]

        while True:
            for instr in block.instrs:
                self._steps += 1
                if self._steps > self.max_steps:
                    raise TrapError("step budget exhausted in %s" % name)
                op = instr.op
                if op is Opcode.CONST:
                    regs[instr.dst] = wrap64(instr.imm)
                elif op in BINARY_OPS:
                    regs[instr.dst] = fold_binary(op, regs[instr.a], regs[instr.b])
                elif op is Opcode.MOV or op is Opcode.NEG or op is Opcode.NOT:
                    regs[instr.dst] = fold_unary(op, regs[instr.a])
                elif op is Opcode.LOADG:
                    regs[instr.dst] = memory.load(instr.sym)
                elif op is Opcode.STOREG:
                    memory.store(instr.sym, regs[instr.a])
                elif op is Opcode.LOADE:
                    regs[instr.dst] = memory.load_elem(instr.sym, regs[instr.a])
                elif op is Opcode.STOREE:
                    memory.store_elem(instr.sym, regs[instr.a], regs[instr.b])
                elif op is Opcode.CALL:
                    result = self._call(
                        instr.sym,
                        [regs[r] for r in instr.args],
                        memory,
                        probes,
                        depth + 1,
                    )
                    if instr.dst is not None:
                        regs[instr.dst] = result
                elif op is Opcode.PROBE:
                    probes[instr.imm] = probes.get(instr.imm, 0) + 1
                elif op is Opcode.RET:
                    return regs[instr.a] if instr.a is not None else 0
                elif op is Opcode.BR:
                    target = instr.targets[0] if regs[instr.a] else instr.targets[1]
                    block = blocks[target]
                    break
                elif op is Opcode.JMP:
                    block = blocks[instr.targets[0]]
                    break
                else:  # pragma: no cover - all opcodes handled above
                    raise TrapError("unhandled opcode %s" % op)
            else:
                raise TrapError(
                    "fell off the end of block %s in %s" % (block.label, name)
                )


def run_program(
    program: Program,
    args: Sequence[int] = (),
    inputs: Optional[Dict[str, List[int]]] = None,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> RunResult:
    """One-shot convenience wrapper around :class:`Interpreter`."""
    return Interpreter(program, max_steps=max_steps).run(args=args, inputs=inputs)
