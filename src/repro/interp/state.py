"""Interpreter runtime state: global memory and run results."""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.program import Program
from ..ir.symbols import ProgramSymbolTable


class GlobalMemory:
    """Global variable storage for the IL interpreter.

    Each global symbol maps to a list of i64 cells (length 1 for
    scalars).  Out-of-range array indices raise :class:`TrapError` --
    the interpreter has checked semantics, unlike the VM, which mirrors
    the paper's observation that large programs "take liberties with
    global storage" that only optimizers expose.
    """

    def __init__(self, symtab: ProgramSymbolTable) -> None:
        self.cells: Dict[str, List[int]] = {}
        for name in symtab.all_global_names():
            var = symtab.lookup_global(name)
            self.cells[name] = list(var.init)

    @classmethod
    def for_program(cls, program: Program) -> "GlobalMemory":
        return cls(program.symtab)

    def load(self, sym: str) -> int:
        return self.cells[sym][0]

    def store(self, sym: str, value: int) -> None:
        self.cells[sym][0] = value

    def load_elem(self, sym: str, index: int) -> int:
        cells = self.cells[sym]
        if not 0 <= index < len(cells):
            raise TrapError(
                "array index %d out of range for %s[%d]" % (index, sym, len(cells))
            )
        return cells[index]

    def store_elem(self, sym: str, index: int, value: int) -> None:
        cells = self.cells[sym]
        if not 0 <= index < len(cells):
            raise TrapError(
                "array index %d out of range for %s[%d]" % (index, sym, len(cells))
            )
        cells[index] = value

    def set_array(self, sym: str, values: List[int]) -> None:
        """Overwrite a global array (harness input injection)."""
        cells = self.cells[sym]
        if len(values) > len(cells):
            raise TrapError(
                "input of %d values does not fit %s[%d]"
                % (len(values), sym, len(cells))
            )
        for index, value in enumerate(values):
            cells[index] = value


class TrapError(Exception):
    """Raised on a runtime trap (bad index, step budget exhausted...)."""


class RunResult:
    """Outcome of one interpreted execution."""

    __slots__ = ("value", "steps", "calls", "probe_counts")

    def __init__(
        self,
        value: int,
        steps: int,
        calls: int,
        probe_counts: Optional[Dict[int, int]] = None,
    ) -> None:
        #: Return value of the entry routine.
        self.value = value
        #: Dynamic IL instructions executed.
        self.steps = steps
        #: Dynamic call count.
        self.calls = calls
        #: Probe id -> hit count (instrumented runs only).
        self.probe_counts = probe_counts if probe_counts is not None else {}

    def __repr__(self) -> str:
        return "<RunResult value=%d steps=%d calls=%d probes=%d>" % (
            self.value,
            self.steps,
            self.calls,
            len(self.probe_counts),
        )
