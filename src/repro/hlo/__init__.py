"""HLO: the high-level (interprocedural, cross-module) optimizer."""

from .driver import CmoUnit, HighLevelOptimizer, HloResult, standard_pipeline
from .options import HloOptions
from .passes import OptContext, PassPipeline, PassStats, RoutinePass
from .profile_view import ProfileView

__all__ = [
    "CmoUnit",
    "HighLevelOptimizer",
    "HloResult",
    "standard_pipeline",
    "HloOptions",
    "OptContext",
    "PassPipeline",
    "PassStats",
    "RoutinePass",
    "ProfileView",
]
