"""Per-routine profile views used inside the optimizer.

The :class:`ProfileDatabase` is immutable input; transforms change the
CFG, so the optimizer works on a mutable *view* of the counts that the
transforms keep consistent (inlining scales the callee's counts into
the caller, block merging keeps the survivor's count, etc.).

When no dynamic profile exists the view falls back to static estimates
from loop nesting depth -- the paper's non-PBO mode, where "heuristics
drive the compiler to thoroughly optimize all routines".
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..ir.routine import Routine
from ..profiles.database import RoutineProfile
from .analysis.loops import loop_depths

#: Static weight assumed per loop-nesting level when profiles are absent.
STATIC_LOOP_WEIGHT = 10


class ProfileView:
    """Mutable block/edge counts for one routine under optimization."""

    def __init__(
        self,
        routine_name: str,
        block_counts: Optional[Dict[str, int]] = None,
        edge_counts: Optional[Dict[Tuple[str, str], int]] = None,
        is_static_estimate: bool = False,
        stale: bool = False,
    ) -> None:
        self.routine_name = routine_name
        self.block_counts: Dict[str, int] = dict(block_counts or {})
        self.edge_counts: Dict[Tuple[str, str], int] = dict(edge_counts or {})
        #: True when counts are loop-depth guesses, not measurements.
        self.is_static_estimate = is_static_estimate
        self.stale = stale

    # -- Constructors -----------------------------------------------------------

    @staticmethod
    def from_profile(profile: RoutineProfile) -> "ProfileView":
        return ProfileView(
            profile.name,
            block_counts=profile.block_counts,
            edge_counts=profile.edge_counts,
            stale=profile.stale,
        )

    @staticmethod
    def static_estimate(routine: Routine) -> "ProfileView":
        depths = loop_depths(routine)
        counts = {
            label: STATIC_LOOP_WEIGHT ** min(depth, 6)
            for label, depth in depths.items()
        }
        return ProfileView(routine.name, counts, is_static_estimate=True)

    # -- Queries ------------------------------------------------------------------

    def count(self, label: str) -> int:
        return self.block_counts.get(label, 0)

    def edge(self, from_label: str, to_label: str) -> int:
        exact = self.edge_counts.get((from_label, to_label))
        if exact is not None:
            return exact
        # Fallback: bound by the endpoint counts.
        return min(self.count(from_label), self.count(to_label))

    def entry_count(self, routine: Routine) -> int:
        return self.count(routine.entry.label)

    def hottest_blocks(self, limit: int = 5):
        return sorted(
            self.block_counts.items(), key=lambda item: (-item[1], item[0])
        )[:limit]

    # -- Maintenance by transforms -----------------------------------------------

    def rename_block(self, old: str, new: str) -> None:
        if old in self.block_counts:
            self.block_counts[new] = self.block_counts.pop(old)
        for (f, t), count in list(self.edge_counts.items()):
            nf = new if f == old else f
            nt = new if t == old else t
            if (nf, nt) != (f, t):
                del self.edge_counts[(f, t)]
                self.edge_counts[(nf, nt)] = count

    def drop_block(self, label: str) -> None:
        self.block_counts.pop(label, None)
        for key in [k for k in self.edge_counts if label in k]:
            del self.edge_counts[key]

    def set_count(self, label: str, count: int) -> None:
        self.block_counts[label] = count

    def set_edge(self, from_label: str, to_label: str, count: int) -> None:
        self.edge_counts[(from_label, to_label)] = count

    def merge_blocks(self, survivor: str, absorbed: str) -> None:
        """``absorbed`` was appended to ``survivor`` (straight-line merge)."""
        self.drop_block(absorbed)

    def splice_scaled(
        self,
        callee_view: "ProfileView",
        label_map: Dict[str, str],
        site_weight: int,
        callee_entry: int,
    ) -> None:
        """Fold an inlined callee's counts into this view.

        Each callee block count is scaled by site_weight/callee_entry
        (how often this particular site accounted for the callee's
        executions).
        """
        for old_label, new_label in label_map.items():
            raw = callee_view.count(old_label)
            if callee_entry > 0:
                scaled = (raw * site_weight) // callee_entry
            else:
                scaled = 0
            self.block_counts[new_label] = scaled
        for (f, t), count in callee_view.edge_counts.items():
            if f in label_map and t in label_map:
                if callee_entry > 0:
                    scaled = (count * site_weight) // callee_entry
                else:
                    scaled = 0
                self.edge_counts[(label_map[f], label_map[t])] = scaled

    def __repr__(self) -> str:
        kind = "static" if self.is_static_estimate else "measured"
        return "<ProfileView %s (%s, %d blocks)>" % (
            self.routine_name,
            kind,
            len(self.block_counts),
        )
