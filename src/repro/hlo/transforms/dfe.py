"""Dead-function elimination (link-time, whole program).

With every module visible, routines unreachable from ``main`` through
the call graph can be deleted outright -- dropping their pools from the
loader and their code from the final image.
"""

from __future__ import annotations

from typing import List, Set

from ...ir.program import ENTRY_NAME, Program


def reachable_routines(program: Program, roots=None) -> Set[str]:
    """Routine names reachable from the roots (default: ``main``)."""
    graph = program.callgraph()
    if roots is None:
        roots = [ENTRY_NAME] if ENTRY_NAME in graph.nodes else []
    seen: Set[str] = set()
    stack = [name for name in roots if name in graph.nodes]
    seen.update(stack)
    while stack:
        current = stack.pop()
        for callee in graph.nodes[current].callees():
            if callee in graph.nodes and callee not in seen:
                seen.add(callee)
                stack.append(callee)
    return seen


def eliminate_dead_functions(
    program: Program, roots=None, removal_log=None, keep=None
) -> List[str]:
    """Delete unreachable routines; returns the removed names.

    ``removal_log`` (a dict) receives module -> removed names, which
    the incremental engine records as dead-import elisions.

    ``keep`` short-circuits the reachability computation with a
    pre-computed live set (the summary-only WPA phase derives it from
    the facts graph without building a body-scanning call graph); the
    caller is then responsible for the no-entry library guard.
    """
    if keep is None:
        graph = program.callgraph()
        if roots is None and ENTRY_NAME not in graph.nodes:
            return []  # no entry: a library; keep everything
        keep = reachable_routines(program, roots)
    removed: List[str] = []
    for module in program.module_list():
        dead = [name for name in module.routines if name not in keep]
        for name in dead:
            del module.routines[name]
            module.symtab.routine_names.remove(name)
            removed.append(name)
        if dead and removal_log is not None:
            removal_log[module.name] = dead
    if removed:
        program.invalidate()
    return removed
