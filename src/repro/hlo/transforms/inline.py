"""Cross-module, profile-guided inlining (paper §3, §5; Ayers et al.,
"Aggressive inlining", PLDI'97).

The engine works bottom-up over the call graph so callee bodies are in
their final, already-optimized form when spliced.  With profiles, hot
call sites -- ranked by dynamic call count -- get priority and larger
size allowances; without profiles every small callee is fair game,
which reproduces the paper's observation that pure CMO "thoroughly
optimizes all routines" and blows up compile time and memory.

NAIM cooperation: callee bodies are fetched through a resolver callback
(the driver wires it to loader handles), and per-caller work is ordered
by callee module so "cross-module inlines from the same pair of modules
are processed one after another" (§4.3), maximizing loader-cache reuse.

An optional *operation limit* caps the number of inlines performed --
the paper's §6.3 bug-isolation hook, used by :mod:`repro.triage`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ...ir.basic_block import BasicBlock
from ...ir.callgraph import CallGraph
from ...ir.instructions import Instr, Opcode
from ...ir.routine import Routine
from ..passes import OptContext
from ..profile_view import ProfileView

#: Resolver: routine name -> Routine (or None if unavailable).
Resolver = Callable[[str], Optional[Routine]]


class InlineStats:
    """Observable inliner activity."""

    def __init__(self) -> None:
        self.performed = 0
        self.rejected_size = 0
        self.rejected_growth = 0
        self.rejected_recursive = 0
        self.rejected_cold = 0
        self.hit_operation_limit = False
        #: Every inline performed, in order: (caller, callee).
        self.performed_list: List[Tuple[str, str]] = []
        #: (caller_module, callee_module) -> inline count.
        self.module_pairs: Dict[Tuple[str, str], int] = {}
        #: Loader-locality trace: callee modules in execution order.
        self.callee_module_trace: List[str] = []
        #: Summary consumption: caller module -> callee routines whose
        #: bodies it spliced in (the incremental engine's inline edges).
        self.consumed_bodies: Dict[str, set] = {}

    def record(self, caller_module: str, callee_module: str,
               caller: str = "", callee: str = "") -> None:
        self.performed += 1
        self.performed_list.append((caller, callee))
        key = (caller_module, callee_module)
        self.module_pairs[key] = self.module_pairs.get(key, 0) + 1
        self.callee_module_trace.append(callee_module)
        if callee:
            self.consumed_bodies.setdefault(caller_module, set()).add(callee)

    def cross_module_count(self) -> int:
        return sum(
            count for (cm, km), count in self.module_pairs.items() if cm != km
        )

    def __repr__(self) -> str:
        return "<InlineStats performed=%d cross_module=%d>" % (
            self.performed,
            self.cross_module_count(),
        )


def _inject_bug(caller: Routine, cont_label: str) -> None:
    """Deliberately miscompile the most recent inline (test/triage aid).

    Corrupts the freshly spliced callee body -- swapping the targets of
    its first conditional branch, or failing that perturbing its first
    constant / flipping an ADD -- simulating the class of inliner bugs
    the paper's §6.3 isolation workflow hunts.  Enabled only via
    ``HloOptions.inject_inline_bug_after``.
    """
    prefix = cont_label[: -len("cont")]
    body_blocks = [
        block
        for block in caller.blocks
        if block.label.startswith(prefix) and block.label != cont_label
    ]
    for block in body_blocks:
        term = block.terminator
        if term is not None and term.op is Opcode.BR:
            term.targets = (term.targets[1], term.targets[0])
            caller.invalidate()
            return
    for block in body_blocks:
        for instr in block.instrs:
            if instr.op is Opcode.CONST:
                instr.imm += 1
                caller.invalidate()
                return
            if instr.op is Opcode.ADD:
                instr.op = Opcode.SUB
                caller.invalidate()
                return


def splice_call(
    caller: Routine,
    block_label: str,
    instr_index: int,
    callee: Routine,
    caller_view: Optional[ProfileView] = None,
    callee_view: Optional[ProfileView] = None,
    site_weight: int = 0,
) -> str:
    """Inline one call site; returns the continuation block's label.

    The caller block is split at the call; the callee body is cloned
    with renamed registers/labels; parameter binding becomes MOVs;
    every RET becomes a jump to the continuation.  Probe instructions
    in the callee are dropped (profiles are collected on uninlined
    builds).
    """
    block = caller.block(block_label)
    call = block.instrs[instr_index]
    if call.op is not Opcode.CALL or call.sym != callee.name:
        raise ValueError(
            "no call to %s at %s:%s[%d]"
            % (callee.name, caller.name, block_label, instr_index)
        )

    serial = int(caller.annotations.get("inline_serial", 0))
    caller.annotations["inline_serial"] = serial + 1
    prefix = "il%d_" % serial

    reg_offset = caller.next_reg
    caller.next_reg += callee.next_reg

    label_map = {b.label: prefix + b.label for b in callee.blocks}
    cont_label = prefix + "cont"

    # Continuation block: the remainder of the split block.
    cont = BasicBlock(cont_label, block.instrs[instr_index + 1 :])

    # Rebuild the head of the split block: param binding + jump to body.
    head = block.instrs[:instr_index]
    for param_index in range(callee.n_params):
        head.append(
            Instr(
                Opcode.MOV,
                dst=reg_offset + param_index,
                a=call.args[param_index],
            )
        )
    entry_label = label_map[callee.entry.label]
    head.append(Instr(Opcode.JMP, targets=(entry_label,)))
    block.instrs = head

    # Clone the callee body.
    cloned: List[BasicBlock] = []
    for callee_block in callee.blocks:
        new_block = BasicBlock(label_map[callee_block.label])
        for instr in callee_block.instrs:
            if instr.op is Opcode.PROBE:
                continue
            copy = instr.copy()
            if copy.dst is not None:
                copy.dst += reg_offset
            if copy.a is not None:
                copy.a += reg_offset
            if copy.b is not None:
                copy.b += reg_offset
            if copy.args:
                copy.args = tuple(r + reg_offset for r in copy.args)
            if copy.op is Opcode.RET:
                if call.dst is not None:
                    if copy.a is not None:
                        new_block.instrs.append(
                            Instr(Opcode.MOV, dst=call.dst, a=copy.a)
                        )
                    else:
                        new_block.instrs.append(
                            Instr(Opcode.CONST, dst=call.dst, imm=0)
                        )
                new_block.instrs.append(Instr(Opcode.JMP, targets=(cont_label,)))
                continue
            if copy.targets:
                copy.targets = tuple(label_map[t] for t in copy.targets)
            new_block.instrs.append(copy)
        cloned.append(new_block)

    # Insert the cloned body and continuation right after the split block.
    position = next(
        i for i, b in enumerate(caller.blocks) if b.label == block_label
    )
    caller.blocks[position + 1 : position + 1] = cloned + [cont]
    caller.invalidate()

    # Profile bookkeeping.
    if caller_view is not None:
        site_count = site_weight or caller_view.count(block_label)
        if callee_view is not None:
            callee_entry = callee_view.count(callee.entry.label)
            caller_view.splice_scaled(
                callee_view, label_map, site_count, callee_entry
            )
        else:
            for new_label in label_map.values():
                caller_view.set_count(new_label, site_count)
        caller_view.set_count(cont_label, caller_view.count(block_label))
        caller_view.set_edge(block_label, entry_label, site_count)

    history = caller.annotations.get("inlined_from", "")
    caller.annotations["inlined_from"] = (
        "%s,%s" % (history, callee.name) if history else callee.name
    )
    return cont_label


class InlineCandidate:
    """One call site the planner may inline."""

    __slots__ = ("caller", "callee", "weight", "hot")

    def __init__(self, caller: str, callee: str, weight: int, hot: bool) -> None:
        self.caller = caller
        self.callee = callee
        self.weight = weight
        self.hot = hot

    def __repr__(self) -> str:
        return "<InlineCandidate %s->%s w=%d%s>" % (
            self.caller,
            self.callee,
            self.weight,
            " hot" if self.hot else "",
        )


class InlineEngine:
    """Plans and performs inlining over a set of routines."""

    def __init__(
        self,
        ctx: OptContext,
        callgraph: CallGraph,
        resolve: Resolver,
        has_profiles: bool,
        pin=None,
        release=None,
    ) -> None:
        self.ctx = ctx
        self.callgraph = callgraph
        self.resolve = resolve
        self.has_profiles = has_profiles
        #: pin(name)/release(name): NAIM hooks so the caller being
        #: mutated is never evicted mid-splice, and finished callers
        #: are handed back to the loader promptly.
        self.pin = pin or (lambda name: None)
        self.release = release or (lambda name: None)
        self.stats = InlineStats()
        self._sizes: Dict[str, int] = {}
        self._original_program_size = 0
        self._program_size = 0

    # -- Sizing helpers ---------------------------------------------------------

    def _size_of(self, name: str) -> int:
        size = self._sizes.get(name)
        if size is None:
            routine = self.resolve(name)
            size = routine.instr_count() if routine is not None else 1 << 30
            self._sizes[name] = size
        return size

    def _set_size(self, name: str, size: int) -> None:
        self._program_size += size - self._sizes.get(name, size)
        self._sizes[name] = size

    # -- Planning --------------------------------------------------------------

    def _hot_weight_cutoff(self) -> int:
        """Smallest weight still inside the hot fraction of call volume."""
        if not self.has_profiles:
            return 0
        weights = sorted(
            (site.weight for site in self.callgraph.all_sites()), reverse=True
        )
        total = sum(weights)
        if total == 0:
            return 1
        budget = total * self.ctx.options.inline_hot_site_fraction
        running = 0
        cutoff = weights[0] if weights else 1
        for weight in weights:
            running += weight
            cutoff = weight
            if running >= budget:
                break
        return max(cutoff, 1)

    def plan_for_caller(
        self, caller_name: str, hot_cutoff: int
    ) -> List[InlineCandidate]:
        """Decide which of a caller's sites to inline, in splice order."""
        options = self.ctx.options
        node = self.callgraph.nodes.get(caller_name)
        if node is None:
            return []
        candidates: List[InlineCandidate] = []
        for site in node.call_sites:
            callee = site.callee
            if callee == caller_name:
                self.stats.rejected_recursive += 1
                continue
            if callee not in self.callgraph.nodes:
                continue  # external / unavailable
            if self.callgraph.is_recursive(callee):
                self.stats.rejected_recursive += 1
                continue
            weight = site.weight
            hot = self.has_profiles and weight >= hot_cutoff
            if self.has_profiles and weight < options.inline_min_site_weight:
                self.stats.rejected_cold += 1
                continue
            callee_size = self._size_of(callee)
            limit = (
                options.inline_hot_callee_max_instrs
                if hot
                else options.inline_callee_max_instrs
            )
            if callee_size > limit:
                self.stats.rejected_size += 1
                continue
            candidates.append(InlineCandidate(caller_name, callee, weight, hot))
        # Loader locality: group by callee module, heavier modules first;
        # deterministic tiebreaks throughout (paper §6.2).
        if options.inline_schedule_by_module_pair:
            module_weight: Dict[str, int] = {}
            for cand in candidates:
                module = self.callgraph.nodes[cand.callee].module_name
                module_weight[module] = module_weight.get(module, 0) + max(
                    cand.weight, 1
                )
            candidates.sort(
                key=lambda c: (
                    -module_weight[self.callgraph.nodes[c.callee].module_name],
                    self.callgraph.nodes[c.callee].module_name,
                    -c.weight,
                    c.callee,
                )
            )
        else:
            # Pure benefit order: stable sort keeps equal-weight sites in
            # discovery (program) order -- the no-locality baseline.
            candidates.sort(key=lambda c: -c.weight)
        return candidates

    # -- Execution ----------------------------------------------------------------

    def run(self, caller_names: Optional[List[str]] = None) -> InlineStats:
        """Inline over the whole call graph (or the given callers)."""
        options = self.ctx.options
        order = self.callgraph.topo_order_bottom_up()
        if caller_names is not None:
            selected = set(caller_names)
            order = [name for name in order if name in selected]

        self._original_program_size = sum(
            self._size_of(name) for name in self.callgraph.nodes
        )
        self._program_size = self._original_program_size
        program_budget = int(
            self._original_program_size * options.inline_program_growth_factor
        )
        hot_cutoff = self._hot_weight_cutoff()

        for caller_name in order:
            plan = self.plan_for_caller(caller_name, hot_cutoff)
            if not plan:
                continue
            caller = self.resolve(caller_name)
            if caller is None:
                continue
            self.pin(caller_name)
            try:
                self._execute_plan(caller, plan, program_budget)
            finally:
                self.release(caller_name)
            if self.stats.hit_operation_limit:
                break
        return self.stats

    def _execute_plan(
        self,
        caller: Routine,
        plan: List[InlineCandidate],
        program_budget: int,
    ) -> None:
        """Splice candidates in plan order (module-pair grouped).

        Only *original* caller blocks and continuation blocks are
        scanned for sites, never cloned callee bodies -- each planned
        candidate corresponds to one pre-existing call site.
        """
        options = self.ctx.options
        caller_view = self.ctx.view_for(caller)
        caller_limit = max(
            options.inline_caller_max_instrs,
            int(self._size_of(caller.name) * options.inline_routine_growth_factor),
        )
        scannable = {block.label for block in caller.blocks}

        for cand in plan:
            if (
                options.inline_operation_limit is not None
                and self.stats.performed >= options.inline_operation_limit
            ):
                self.stats.hit_operation_limit = True
                return
            callee = self.resolve(cand.callee)
            if callee is None:
                continue
            callee_size = callee.instr_count()
            if (
                caller.instr_count() + callee_size > caller_limit
                or self._program_size + callee_size > program_budget
            ):
                self.stats.rejected_growth += 1
                continue
            site = self._find_site(caller, cand.callee, scannable)
            if site is None:
                continue  # an earlier transform removed the call
            block_label, instr_index = site
            call = caller.block(block_label).instrs[instr_index]
            if len(call.args) != callee.n_params:
                # Mismatched interface (paper section 6.3): leave the call
                # for the runtime checker rather than splice garbage.
                continue
            callee_view = self.ctx.views.get(callee.name)
            cont_label = splice_call(
                caller,
                block_label,
                instr_index,
                callee,
                caller_view=caller_view,
                callee_view=callee_view,
                site_weight=cand.weight,
            )
            scannable.add(cont_label)
            if (
                options.inject_inline_bug_after is not None
                and self.stats.performed + 1
                == options.inject_inline_bug_after
            ):
                _inject_bug(caller, cont_label)
            self.stats.record(
                caller.module_name, callee.module_name,
                caller=caller.name, callee=callee.name,
            )
            self._set_size(caller.name, caller.instr_count())
        self._set_size(caller.name, caller.instr_count())

    @staticmethod
    def _find_site(
        caller: Routine, callee_name: str, scannable
    ) -> Optional[Tuple[str, int]]:
        """First remaining call to ``callee_name`` outside cloned bodies."""
        for block in caller.blocks:
            if block.label not in scannable:
                continue
            for index, instr in enumerate(block.instrs):
                if instr.op is Opcode.CALL and instr.sym == callee_name:
                    return (block.label, index)
        return None
