"""Dead-code elimination driven by liveness.

Removes instructions whose result register is dead and which have no
side effects.  Calls are removable only when the callee is provably
pure (mod/ref analysis) -- the interprocedural DCE the paper's CMO
enables across module boundaries.
"""

from __future__ import annotations

from ...ir.instructions import Opcode
from ...ir.routine import Routine
from ..analysis.liveness import live_regs_after
from ..passes import OptContext, RoutinePass


class DeadCodeElimination(RoutinePass):
    name = "dce"

    def run(self, routine: Routine, ctx: OptContext) -> bool:
        if not ctx.options.dce_enabled:
            return False
        modref = ctx.modref
        changed = False
        for block in routine.blocks:
            after = live_regs_after(routine, block.label)
            kept = []
            block_changed = False
            for index, instr in enumerate(block.instrs):
                if instr.is_terminator():
                    kept.append(instr)
                    continue
                dst = instr.dst
                removable = False
                if instr.op is Opcode.MOV and instr.dst == instr.a:
                    removable = True
                elif dst is not None and dst not in after[index]:
                    if not instr.has_side_effects():
                        removable = True
                    elif (
                        instr.op is Opcode.CALL
                        and modref is not None
                        and modref.for_routine(instr.sym).is_pure()
                    ):
                        removable = True
                elif (
                    dst is None
                    and instr.op is Opcode.CALL
                    and modref is not None
                    and modref.for_routine(instr.sym).is_pure()
                ):
                    # Pure call whose (absent) result nobody reads.
                    removable = True
                if removable:
                    block_changed = True
                    changed = True
                else:
                    kept.append(instr)
            if block_changed:
                block.instrs = kept
        if changed:
            routine.invalidate()
        return changed
