"""Constant and copy propagation with algebraic simplification.

A forward dataflow over the CFG computes, for every block entry, a
lattice value per virtual register (TOP / CONST c / BOTTOM); the rewrite
walk then folds instructions, propagates copies locally and applies
algebraic identities.  Semantics (wraparound, total division, shift
masking) come from :func:`repro.ir.fold_binary`, the system's single
source of arithmetic truth.

Also consumes interprocedural facts published in the context:

* ``ctx.readonly_globals`` -- loads of never-written globals fold to
  their initializers (a cross-module win from mod/ref analysis);
* ``ctx.const_returns`` -- calls to pure routines with known constant
  results fold away entirely.
"""

from __future__ import annotations

from typing import Dict, Optional

from ...ir.instructions import (
    BINARY_OPS,
    Instr,
    Opcode,
    fold_binary,
    fold_unary,
)
from ...ir.routine import Routine
from ..analysis.cfg import reverse_postorder
from ..passes import OptContext, RoutinePass

# Lattice: None = TOP (no info yet); _BOT = conflicting; int = constant.
_BOT = object()


def _meet(a, b):
    if a is None:
        return b
    if b is None:
        return a
    if a is _BOT or b is _BOT or a != b:
        return _BOT
    return a


class _BlockEnv:
    """Register -> lattice value during the rewrite walk of one block."""

    __slots__ = ("values",)

    def __init__(self, values: Dict[int, object]) -> None:
        self.values = values

    def const_of(self, reg: int) -> Optional[int]:
        value = self.values.get(reg, _BOT)
        return value if isinstance(value, int) else None

    def set(self, reg: int, value) -> None:
        self.values[reg] = value


def _transfer_block(
    routine: Routine, label: str, in_values: Dict[int, object], ctx: OptContext
) -> Dict[int, object]:
    """Abstractly execute a block, returning the out-state."""
    values = dict(in_values)
    for instr in routine.block(label).instrs:
        dst = instr.dst
        op = instr.op
        if op is Opcode.CONST:
            values[dst] = instr.imm
        elif op is Opcode.MOV:
            values[dst] = values.get(instr.a, _BOT)
        elif op in (Opcode.NEG, Opcode.NOT):
            a = values.get(instr.a, _BOT)
            values[dst] = fold_unary(op, a) if isinstance(a, int) else _BOT
        elif op in BINARY_OPS:
            a = values.get(instr.a, _BOT)
            b = values.get(instr.b, _BOT)
            if isinstance(a, int) and isinstance(b, int):
                values[dst] = fold_binary(op, a, b)
            else:
                values[dst] = _BOT
        elif op is Opcode.LOADG:
            values[dst] = _readonly_value(instr.sym, ctx)
        elif op is Opcode.CALL:
            if dst is not None:
                values[dst] = _const_return_value(instr.sym, ctx)
        elif dst is not None:
            values[dst] = _BOT
    return values


def _readonly_value(sym: str, ctx: OptContext):
    if sym in ctx.readonly_globals and ctx.symtab.has_global(sym):
        var = ctx.symtab.lookup_global(sym)
        if not var.is_array:
            return var.init[0]
    return _BOT


def _const_return_value(callee: str, ctx: OptContext):
    value = ctx.const_returns.get(callee)
    return value if value is not None else _BOT


def compute_block_inputs(
    routine: Routine, ctx: OptContext
) -> Dict[str, Dict[int, object]]:
    """Fixed-point dataflow: per-block entry lattice states."""
    rpo = reverse_postorder(routine)
    preds = routine.predecessors()
    entry_label = routine.entry.label
    in_states: Dict[str, Dict[int, object]] = {label: {} for label in rpo}
    # Entry: parameters (and everything else) unknown.
    in_states[entry_label] = {reg: _BOT for reg in range(routine.next_reg)}

    out_states: Dict[str, Dict[int, object]] = {}
    changed = True
    iterations = 0
    while changed and iterations < 50:
        changed = False
        iterations += 1
        for label in rpo:
            if label != entry_label:
                merged: Dict[int, object] = {}
                first = True
                for pred in preds[label]:
                    pred_out = out_states.get(pred)
                    if pred_out is None:
                        continue
                    if first:
                        merged = dict(pred_out)
                        first = False
                    else:
                        for reg in list(merged):
                            merged[reg] = _meet(merged[reg], pred_out.get(reg))
                        for reg in pred_out:
                            if reg not in merged:
                                merged[reg] = pred_out[reg]
                if merged != in_states[label]:
                    in_states[label] = merged
                    changed = True
            new_out = _transfer_block(routine, label, in_states[label], ctx)
            if out_states.get(label) != new_out:
                out_states[label] = new_out
                changed = True
    if changed:
        # Iteration bound hit before the fixed point: fall back to
        # "no information" rather than risk an unsound rewrite.
        return {
            label: {reg: _BOT for reg in range(routine.next_reg)}
            for label in rpo
        }
    return in_states


def _algebraic(instr: Instr, env: _BlockEnv) -> Optional[Instr]:
    """Identity rewrites when one operand is a known constant."""
    op = instr.op
    if op not in BINARY_OPS:
        return None
    a_const = env.const_of(instr.a)
    b_const = env.const_of(instr.b)
    dst = instr.dst
    # x + 0, x - 0, x | 0, x ^ 0, x << 0, x >> 0
    if b_const == 0 and op in (Opcode.ADD, Opcode.SUB, Opcode.OR, Opcode.XOR,
                               Opcode.SHL, Opcode.SHR):
        return Instr(Opcode.MOV, dst=dst, a=instr.a)
    if a_const == 0 and op in (Opcode.ADD, Opcode.OR, Opcode.XOR):
        return Instr(Opcode.MOV, dst=dst, a=instr.b)
    # x * 1, x / 1
    if b_const == 1 and op in (Opcode.MUL, Opcode.DIV):
        return Instr(Opcode.MOV, dst=dst, a=instr.a)
    if a_const == 1 and op is Opcode.MUL:
        return Instr(Opcode.MOV, dst=dst, a=instr.b)
    # x * 0, 0 * x, x & 0, 0 & x, 0 / x, 0 % x
    if (b_const == 0 and op in (Opcode.MUL, Opcode.AND)) or (
        a_const == 0 and op in (Opcode.MUL, Opcode.AND, Opcode.DIV, Opcode.MOD)
    ):
        return Instr(Opcode.CONST, dst=dst, imm=0)
    # x - x, x ^ x
    if instr.a == instr.b and op in (Opcode.SUB, Opcode.XOR):
        return Instr(Opcode.CONST, dst=dst, imm=0)
    # x == x, x <= x, x >= x / x != x, x < x, x > x
    if instr.a == instr.b and op in (Opcode.EQ, Opcode.LE, Opcode.GE):
        return Instr(Opcode.CONST, dst=dst, imm=1)
    if instr.a == instr.b and op in (Opcode.NE, Opcode.LT, Opcode.GT):
        return Instr(Opcode.CONST, dst=dst, imm=0)
    return None


class ConstantPropagation(RoutinePass):
    """The main scalar folding phase."""

    name = "constprop"

    def run(self, routine: Routine, ctx: OptContext) -> bool:
        if not ctx.options.constprop_enabled:
            return False
        in_states = compute_block_inputs(routine, ctx)
        modref = ctx.modref
        changed = False

        for block in routine.blocks:
            if block.label not in in_states:
                continue  # unreachable; simplify will drop it
            env = _BlockEnv(dict(in_states[block.label]))
            copies: Dict[int, int] = {}  # local copy propagation: dst -> src

            def kill_copies(reg: int) -> None:
                copies.pop(reg, None)
                for dst_reg in [d for d, s in copies.items() if s == reg]:
                    del copies[dst_reg]

            for index, instr in enumerate(block.instrs):
                # Local copy propagation on uses.
                if copies:
                    remap = {
                        reg: copies[reg]
                        for reg in instr.uses()
                        if reg in copies
                    }
                    if remap:
                        instr.replace_uses(remap)
                        changed = True

                op = instr.op
                dst = instr.dst
                new_instr: Optional[Instr] = None

                if op in BINARY_OPS:
                    a = env.const_of(instr.a)
                    b = env.const_of(instr.b)
                    if a is not None and b is not None:
                        new_instr = Instr(
                            Opcode.CONST, dst=dst, imm=fold_binary(op, a, b)
                        )
                    else:
                        new_instr = _algebraic(instr, env)
                elif op in (Opcode.NEG, Opcode.NOT):
                    a = env.const_of(instr.a)
                    if a is not None:
                        new_instr = Instr(
                            Opcode.CONST, dst=dst, imm=fold_unary(op, a)
                        )
                elif op is Opcode.MOV:
                    a = env.const_of(instr.a)
                    if a is not None:
                        new_instr = Instr(Opcode.CONST, dst=dst, imm=a)
                elif op is Opcode.LOADG:
                    value = _readonly_value(instr.sym, ctx)
                    if isinstance(value, int):
                        new_instr = Instr(Opcode.CONST, dst=dst, imm=value)
                elif op is Opcode.CALL:
                    value = _const_return_value(instr.sym, ctx)
                    if (
                        isinstance(value, int)
                        and dst is not None
                        and modref is not None
                        and modref.for_routine(instr.sym).is_pure()
                    ):
                        new_instr = Instr(Opcode.CONST, dst=dst, imm=value)
                elif op is Opcode.BR:
                    cond = env.const_of(instr.a)
                    if cond is not None:
                        target = instr.targets[0] if cond else instr.targets[1]
                        new_instr = Instr(Opcode.JMP, targets=(target,))

                if new_instr is not None:
                    block.instrs[index] = new_instr
                    instr = new_instr
                    changed = True

                # Update local copy map and abstract env.
                if instr.op is Opcode.MOV:
                    kill_copies(instr.dst)
                    source = copies.get(instr.a, instr.a)
                    if source != instr.dst:
                        copies[instr.dst] = source
                elif instr.dst is not None:
                    kill_copies(instr.dst)

                # Abstract step (mirrors _transfer_block, one instr).
                if instr.op is Opcode.CONST:
                    env.set(instr.dst, instr.imm)
                elif instr.op is Opcode.MOV:
                    env.set(instr.dst, env.values.get(instr.a, _BOT))
                elif instr.op in (Opcode.NEG, Opcode.NOT):
                    a = env.const_of(instr.a)
                    env.set(
                        instr.dst,
                        fold_unary(instr.op, a) if a is not None else _BOT,
                    )
                elif instr.op in BINARY_OPS:
                    a = env.const_of(instr.a)
                    b = env.const_of(instr.b)
                    env.set(
                        instr.dst,
                        fold_binary(instr.op, a, b)
                        if a is not None and b is not None
                        else _BOT,
                    )
                elif instr.op is Opcode.LOADG:
                    env.set(instr.dst, _readonly_value(instr.sym, ctx))
                elif instr.op is Opcode.CALL and instr.dst is not None:
                    env.set(instr.dst, _const_return_value(instr.sym, ctx))
                elif instr.dst is not None:
                    env.set(instr.dst, _BOT)

        if changed:
            routine.invalidate()
        return changed
