"""CFG simplification: unreachable-block removal, jump threading and
straight-line block merging."""

from __future__ import annotations

from typing import Dict, Set

from ...ir.instructions import Instr, Opcode
from ...ir.routine import Routine
from ..analysis.cfg import reachable_labels
from ..passes import OptContext, RoutinePass


def remove_unreachable_blocks(routine: Routine, ctx: OptContext) -> bool:
    reachable = reachable_labels(routine)
    dead = {block.label for block in routine.blocks} - reachable
    if not dead:
        return False
    view = ctx.view_for(routine)
    for label in dead:
        view.drop_block(label)
    routine.remove_blocks(dead)
    return True


def thread_trivial_jumps(routine: Routine, ctx: OptContext) -> bool:
    """Retarget edges that go through a block containing only a jump."""
    trivial: Dict[str, str] = {}
    for block in routine.blocks:
        if len(block.instrs) == 1 and block.instrs[0].op is Opcode.JMP:
            trivial[block.label] = block.instrs[0].targets[0]

    # Collapse chains (A->B->C), guarding against jump cycles.
    def final_target(label: str) -> str:
        seen: Set[str] = set()
        while label in trivial and label not in seen:
            seen.add(label)
            label = trivial[label]
        return label

    changed = False
    for block in routine.blocks:
        term = block.terminator
        if term is None or term.op not in (Opcode.BR, Opcode.JMP):
            continue
        new_targets = tuple(final_target(t) for t in term.targets)
        # Avoid threading a block's jump to itself into a self-loop that
        # changes semantics (only identical rewrites are skipped).
        if new_targets != term.targets:
            term.targets = new_targets
            changed = True
    if changed:
        routine.invalidate()
    return changed


def merge_block_chains(routine: Routine, ctx: OptContext) -> bool:
    """Merge B into A when A ends ``jmp B`` and B has A as its only pred."""
    changed = False
    view = ctx.view_for(routine)
    while True:
        preds = routine.predecessors()
        merged = False
        for block in routine.blocks:
            term = block.terminator
            if term is None or term.op is not Opcode.JMP:
                continue
            target_label = term.targets[0]
            if target_label == block.label:
                continue
            if preds[target_label] != [block.label]:
                continue
            if target_label == routine.entry.label:
                continue
            target = routine.block(target_label)
            block.instrs.pop()  # drop the JMP
            block.instrs.extend(target.instrs)
            target.instrs = []
            routine.remove_blocks({target_label})
            view.merge_blocks(block.label, target_label)
            merged = True
            changed = True
            break
        if not merged:
            return changed


class SimplifyCfg(RoutinePass):
    """The combined CFG cleanup phase."""

    name = "simplify"

    def run(self, routine: Routine, ctx: OptContext) -> bool:
        if not ctx.options.simplify_enabled:
            return False
        changed = False
        if thread_trivial_jumps(routine, ctx):
            routine.invalidate()
            changed = True
        if remove_unreachable_blocks(routine, ctx):
            changed = True
        if merge_block_chains(routine, ctx):
            routine.invalidate()
            changed = True
        # Degenerate conditional branches become jumps.
        for block in routine.blocks:
            term = block.terminator
            if (
                term is not None
                and term.op is Opcode.BR
                and term.targets[0] == term.targets[1]
            ):
                block.instrs[-1] = Instr(Opcode.JMP, targets=(term.targets[0],))
                changed = True
        if changed:
            routine.invalidate()
        return changed
