"""Loop-invariant code motion (the paper's "locality and
schedule-enhancing loop transformations" slot, §3).

Pure register arithmetic whose operands are loop-invariant is hoisted
to a freshly created preheader.  Loads of globals are hoisted too when
mod/ref analysis proves nothing in the loop (including calls) can write
the symbol.

Safety conditions in this non-SSA IL (each checked explicitly):

1. the instruction is pure (no side effects) -- arithmetic is total in
   this IL (x/0 == 0), so speculative execution on the zero-trip path
   cannot trap;
2. its destination register has exactly one definition inside the loop;
3. the destination is **not live into the loop header**: that single
   fact rules out both uses-before-def within the loop (they would be
   live around the back edge) and post-loop uses of the pre-loop value
   on the zero-trip path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ...ir.basic_block import BasicBlock
from ...ir.instructions import BINARY_OPS, Instr, Opcode
from ...ir.routine import Routine
from ..analysis.liveness import liveness
from ..analysis.loops import Loop, find_loops
from ..passes import OptContext, RoutinePass

_PURE_OPS = BINARY_OPS | {Opcode.CONST, Opcode.MOV, Opcode.NEG, Opcode.NOT}


def _loop_definitions(routine: Routine, loop: Loop) -> Dict[int, int]:
    """Map register -> number of definitions inside the loop."""
    counts: Dict[int, int] = {}
    for label in loop.body:
        for instr in routine.block(label).instrs:
            if instr.dst is not None:
                counts[instr.dst] = counts.get(instr.dst, 0) + 1
    return counts


def _loop_may_write(routine: Routine, loop: Loop, ctx: OptContext,
                    sym: str) -> bool:
    """Can anything in the loop store to global ``sym``?"""
    for label in loop.body:
        for instr in routine.block(label).instrs:
            op = instr.op
            if op in (Opcode.STOREG, Opcode.STOREE) and instr.sym == sym:
                return True
            if op is Opcode.CALL:
                if ctx.modref is None:
                    return True
                if ctx.modref.for_routine(instr.sym).writes(sym):
                    return True
    return False


def _ensure_preheader(routine: Routine, loop: Loop) -> Optional[BasicBlock]:
    """A block that runs exactly once before the loop is entered.

    Entry edges (from outside the loop into the header) are redirected
    through a new block.  Returns None when the header is unreachable
    from outside (degenerate)."""
    preds = routine.predecessors()
    entry_preds = [
        p for p in preds.get(loop.header, []) if p not in loop.body
    ]
    if not entry_preds:
        return None
    # Reuse an existing preheader: a single entry pred that only jumps
    # to the header.
    if len(entry_preds) == 1:
        candidate = routine.block(entry_preds[0])
        term = candidate.terminator
        if (
            term is not None
            and term.op is Opcode.JMP
            and len(candidate.instrs) >= 1
        ):
            return candidate

    preheader = routine.new_block("ph_%s" % loop.header)
    preheader.set_terminator(Instr(Opcode.JMP, targets=(loop.header,)))
    for pred_label in entry_preds:
        routine.block(pred_label).retarget(loop.header, preheader.label)
    routine.invalidate()
    return preheader



_EXPENSIVE_COST = {
    Opcode.MUL: 3,
    Opcode.DIV: 8,
    Opcode.MOD: 8,
    Opcode.LOADG: 2,
}


class LoopInvariantCodeMotion(RoutinePass):
    name = "licm"

    def run(self, routine: Routine, ctx: OptContext) -> bool:
        if not ctx.options.licm_enabled:
            return False
        changed = False
        # One loop per sweep, innermost first (find_loops sorts by body
        # size ascending); loop structure is recomputed after every
        # hoist because preheader insertion changes the CFG.
        for _ in range(16):
            hoisted = False
            for loop in find_loops(routine):
                if self._hoist_from_loop(routine, loop, ctx):
                    changed = True
                    hoisted = True
                    routine.invalidate()
                    break
            if not hoisted:
                break
        return changed

    def _hoist_from_loop(
        self, routine: Routine, loop: Loop, ctx: OptContext
    ) -> bool:
        live_in_header: Set[int] = liveness(routine).live_in.get(
            loop.header, set()
        )
        def_counts = _loop_definitions(routine, loop)

        # Invariant registers grow as we commit to hoisting their defs.
        invariant_defs: List[Tuple[str, int]] = []  # (label, index)
        invariant_regs: Set[int] = set()
        planned = True
        while planned:
            planned = False
            for label in sorted(loop.body):
                block = routine.block(label)
                for index, instr in enumerate(block.instrs):
                    if (label, index) in invariant_defs:
                        continue
                    if not self._is_hoistable(
                        instr, routine, loop, ctx, def_counts,
                        live_in_header, invariant_regs,
                    ):
                        continue
                    invariant_defs.append((label, index))
                    invariant_regs.add(instr.dst)
                    planned = True

        invariant_defs = self._prune_for_pressure(
            routine, loop, ctx, invariant_defs
        )
        if not invariant_defs:
            return False
        preheader = _ensure_preheader(routine, loop)
        if preheader is None:
            return False

        # Extract in deterministic program order, preserving dependences.
        ordered: List[Instr] = []
        for label in [b.label for b in routine.blocks]:
            if label not in loop.body:
                continue
            block = routine.block(label)
            taken = {
                index for (l, index) in invariant_defs if l == label
            }
            if not taken:
                continue
            kept = []
            for index, instr in enumerate(block.instrs):
                if index in taken:
                    ordered.append(instr)
                else:
                    kept.append(instr)
            block.instrs = kept
        # Insert before the preheader's terminator; a dependence-safe
        # order is recomputed by scheduling defs before uses.
        ordered = _dependency_order(ordered)
        insert_at = len(preheader.instrs) - 1
        preheader.instrs[insert_at:insert_at] = ordered

        # Profile view: the preheader runs once per loop entry.
        view = ctx.view_for(routine)
        entry_weight = view.count(loop.header)
        back_weight = sum(
            view.edge(latch, loop.header) for latch, _ in loop.back_edges
        )
        view.set_count(preheader.label, max(entry_weight - back_weight, 1))
        return True


    def _prune_for_pressure(
        self,
        routine: Routine,
        loop: Loop,
        ctx: OptContext,
        invariant_defs: List[Tuple[str, int]],
    ) -> List[Tuple[str, int]]:
        """Keep only hoists that pay for their register pressure.

        Every hoisted value that the remaining loop body still reads
        becomes loop-carried: it occupies a register (or spills) for the
        whole loop.  Recomputing a cheap op each iteration is cheaper
        than a spill, so only *expensive* operations (MUL/DIV/MOD and
        global loads) are worth exporting, the number of exported
        values is capped, and cheap instructions are hoisted only when
        they feed a kept expensive one.
        """
        by_pos = {
            (label, index): routine.block(label).instrs[index]
            for (label, index) in invariant_defs
        }
        candidate_regs = {instr.dst for instr in by_pos.values()}

        # Producers: candidate position defining each register.
        producer = {instr.dst: pos for pos, instr in by_pos.items()}

        # Roots: expensive candidates, ranked costliest first.
        roots = sorted(
            (pos for pos, instr in by_pos.items()
             if instr.op in _EXPENSIVE_COST),
            key=lambda pos: (-_EXPENSIVE_COST[by_pos[pos].op], pos),
        )
        max_exported = ctx.options.licm_max_exported
        roots = roots[:max_exported]
        if not roots:
            return []

        # Closure: a kept instruction drags in the candidates feeding it.
        kept = set()
        stack = list(roots)
        while stack:
            pos = stack.pop()
            if pos in kept:
                continue
            kept.add(pos)
            for reg in by_pos[pos].uses():
                feeder = producer.get(reg)
                if feeder is not None and feeder not in kept:
                    stack.append(feeder)
        return [pos for pos in invariant_defs if pos in kept]

    def _is_hoistable(
        self,
        instr: Instr,
        routine: Routine,
        loop: Loop,
        ctx: OptContext,
        def_counts: Dict[int, int],
        live_in_header: Set[int],
        invariant_regs: Set[int],
    ) -> bool:
        if instr.dst is None:
            return False
        if def_counts.get(instr.dst, 0) != 1:
            return False
        if instr.dst in live_in_header:
            return False
        if instr.op in _PURE_OPS:
            pass
        elif instr.op is Opcode.LOADG:
            if _loop_may_write(routine, loop, ctx, instr.sym):
                return False
        else:
            return False
        for reg in instr.uses():
            defined_in_loop = def_counts.get(reg, 0) > 0
            if defined_in_loop and reg not in invariant_regs:
                return False
        return True


def _dependency_order(instrs: List[Instr]) -> List[Instr]:
    """Topologically order hoisted instructions (defs before uses)."""
    remaining = list(instrs)
    ordered: List[Instr] = []
    defined: Set[int] = set()
    all_defs = {i.dst for i in instrs}
    progress = True
    while remaining and progress:
        progress = False
        for instr in list(remaining):
            if all(
                reg not in all_defs or reg in defined
                for reg in instr.uses()
            ):
                ordered.append(instr)
                defined.add(instr.dst)
                remaining.remove(instr)
                progress = True
    ordered.extend(remaining)  # cycles impossible; belt and braces
    return ordered
