"""Procedure cloning (named HLO transformation, paper §3).

When a call site passes literal constants but *other* sites disagree
(so plain interprocedural constant propagation cannot bind the
parameter), a specialized copy of the callee is created with the
constants materialized at its entry; the matching sites are retargeted
to the clone.  Follow-up constant propagation then specializes the
clone's body.

Clones are named ``<callee>::cl<N>``; they are module-static to the
callee's defining module.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ...ir.instructions import Instr, Opcode
from ...ir.module import Module
from ...ir.program import ENTRY_NAME, Program
from ...ir.routine import Routine
from ..passes import OptContext
from .ipcp import _const_def_in_block


class CloneDecision:
    """One planned specialization."""

    __slots__ = ("callee", "bindings", "sites", "weight")

    def __init__(
        self,
        callee: str,
        bindings: Tuple[Tuple[int, int], ...],
        sites: List[Tuple[str, str, int]],
        weight: int,
    ) -> None:
        self.callee = callee
        #: ((param_index, constant), ...) sorted by param index.
        self.bindings = bindings
        #: (caller, block_label, instr_index) sites to retarget.
        self.sites = sites
        self.weight = weight

    def __repr__(self) -> str:
        return "<CloneDecision %s %r (%d sites, w=%d)>" % (
            self.callee,
            self.bindings,
            len(self.sites),
            self.weight,
        )


def _site_constant_bindings(
    caller: Routine, block_label: str, index: int
) -> Tuple[Tuple[int, int], ...]:
    """Constant (param, value) pairs a specific call site passes."""
    call = caller.block(block_label).instrs[index]
    bindings = []
    for param_index, arg_reg in enumerate(call.args):
        value = _const_def_in_block(caller, block_label, index, arg_reg)
        if value is not None:
            bindings.append((param_index, value))
    return tuple(bindings)


def plan_clones(
    ctx: OptContext,
    callers: Iterable[Routine],
    resolve: Callable[[str], Optional[Routine]],
) -> List[CloneDecision]:
    """Group call sites by (callee, constant signature) worth cloning."""
    options = ctx.options
    if not options.clone_enabled:
        return []
    groups: Dict[Tuple[str, Tuple[Tuple[int, int], ...]], CloneDecision] = {}
    total_sites: Dict[str, int] = {}
    for caller in callers:
        view = ctx.views.get(caller.name)
        for block_label, index, callee_name in caller.call_sites():
            if callee_name == caller.name or callee_name == ENTRY_NAME:
                continue
            total_sites[callee_name] = total_sites.get(callee_name, 0) + 1
            callee = resolve(callee_name)
            if callee is None or callee.n_params == 0:
                continue
            if callee.instr_count() > options.clone_callee_max_instrs:
                continue
            bindings = _site_constant_bindings(caller, block_label, index)
            if len(bindings) < options.clone_min_const_args:
                continue
            key = (callee_name, bindings)
            weight = view.count(block_label) if view is not None else 0
            decision = groups.get(key)
            if decision is None:
                decision = CloneDecision(callee_name, bindings, [], 0)
                groups[key] = decision
            decision.sites.append((caller.name, block_label, index))
            decision.weight += weight
    # Cloning pays off only when call sites *disagree*: if one signature
    # covers every observed site of a callee, interprocedural constant
    # propagation already binds those parameters in place.
    worthwhile = [
        decision
        for decision in groups.values()
        if len(decision.sites) < total_sites.get(decision.callee, 0)
    ]
    # Deterministic order: heaviest first, then name/signature.
    return sorted(
        worthwhile,
        key=lambda d: (-d.weight, d.callee, d.bindings),
    )


def make_clone(callee: Routine, bindings, clone_name: str) -> Routine:
    """Specialized copy of ``callee`` with constants bound at entry."""
    clone = callee.copy(new_name=clone_name)
    clone.exported = False
    clone.annotations["cloned_from"] = callee.name
    entry = clone.entry
    for offset, (param_index, value) in enumerate(bindings):
        entry.instrs.insert(
            offset, Instr(Opcode.CONST, dst=param_index, imm=value)
        )
    clone.invalidate()
    return clone


def apply_clones(
    ctx: OptContext,
    program: Program,
    decisions: List[CloneDecision],
    resolve: Callable[[str], Optional[Routine]],
    max_clones: int = 64,
) -> List[Routine]:
    """Create clone routines and retarget their call sites.

    Returns the new routines (already added to their modules; the
    caller must re-register pools / rebuild the call graph).
    """
    created: List[Routine] = []
    serial = 0
    for decision in decisions:
        if len(created) >= max_clones:
            break
        callee = resolve(decision.callee)
        if callee is None:
            continue
        module: Optional[Module] = program.modules.get(callee.module_name)
        if module is None:
            continue
        clone_name = "%s::cl%d" % (decision.callee, serial)
        serial += 1
        clone = make_clone(callee, decision.bindings, clone_name)
        module.add_routine(clone)
        created.append(clone)
        ctx.stats.bump("clone")
        # Clone inherits the callee's profile shape.
        callee_view = ctx.views.get(decision.callee)
        if callee_view is not None:
            from ..profile_view import ProfileView

            ctx.views[clone_name] = ProfileView(
                clone_name,
                block_counts=callee_view.block_counts,
                edge_counts=callee_view.edge_counts,
                is_static_estimate=callee_view.is_static_estimate,
            )
        for caller_name, block_label, index in decision.sites:
            caller = resolve(caller_name)
            if caller is None:
                continue
            call = caller.block(block_label).instrs[index]
            if call.op is Opcode.CALL and call.sym == decision.callee:
                call.sym = clone_name
                caller.invalidate()
    if created:
        program.invalidate()
    return created
