"""HLO transformation phases."""

from .branch_elim import BranchElimination
from .clone import CloneDecision, apply_clones, make_clone, plan_clones
from .constprop import ConstantPropagation
from .dce import DeadCodeElimination
from .dfe import eliminate_dead_functions, reachable_routines
from .inline import InlineEngine, InlineStats, splice_call
from .licm import LoopInvariantCodeMotion
from .ipcp import (
    apply_param_constants,
    constant_return_value,
    gather_param_constants,
    publish_interprocedural_facts,
)
from .memopt import MemoryForwarding
from .simplify import SimplifyCfg

__all__ = [
    "BranchElimination",
    "CloneDecision",
    "apply_clones",
    "make_clone",
    "plan_clones",
    "ConstantPropagation",
    "DeadCodeElimination",
    "eliminate_dead_functions",
    "reachable_routines",
    "InlineEngine",
    "InlineStats",
    "splice_call",
    "apply_param_constants",
    "constant_return_value",
    "gather_param_constants",
    "publish_interprocedural_facts",
    "MemoryForwarding",
    "LoopInvariantCodeMotion",
    "SimplifyCfg",
]
