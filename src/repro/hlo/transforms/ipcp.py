"""Interprocedural constant propagation (closed-world, link-time).

Three whole-program facts are computed and published into the
:class:`OptContext` for the scalar passes to exploit:

* **read-only globals**: scalars no routine in the CMO set ever writes
  fold to their static initializers (requires mod/ref analysis with no
  unknown callees);
* **constant parameters**: when every call site of a routine passes the
  same literal constant for a parameter, the constant is materialized
  at the routine entry (valid because the linker sees every caller --
  the paper's whole-program premise; ``main`` is exempt since the OS
  calls it);
* **constant returns**: routines that provably return one literal value
  are recorded so callers can fold calls to pure ones.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from ...ir.instructions import Instr, Opcode
from ...ir.program import ENTRY_NAME
from ...ir.routine import Routine
from ..passes import OptContext

#: Lattice marker for "conflicting values observed".
_CONFLICT = object()


def _const_def_in_block(routine: Routine, block_label: str, upto: int,
                        reg: int) -> Optional[int]:
    """Value of ``reg`` at ``block[upto]`` if set by a CONST in-block."""
    value: Optional[int] = None
    for instr in routine.block(block_label).instrs[:upto]:
        if instr.dst == reg:
            value = instr.imm if instr.op is Opcode.CONST else None
    return value


def gather_param_constants(
    routines: Iterable[Routine],
    resolve: Callable[[str], Optional[Routine]],
) -> Dict[str, List[Optional[int]]]:
    """Map routine name -> per-parameter constant (None = not constant).

    A parameter is constant when *every* call site passes the same
    literal (a CONST definition visible in the site's own block).
    """
    facts: Dict[str, list] = {}
    for caller in routines:
        for block_label, index, callee_name in caller.call_sites():
            callee = resolve(callee_name)
            if callee is None:
                continue
            call = caller.block(block_label).instrs[index]
            slots = facts.setdefault(callee_name, [None] * callee.n_params)
            for param_index, arg_reg in enumerate(call.args):
                if param_index >= len(slots):
                    continue
                observed = _const_def_in_block(
                    caller, block_label, index, arg_reg
                )
                current = slots[param_index]
                if observed is None:
                    slots[param_index] = _CONFLICT
                elif current is None:
                    slots[param_index] = observed
                elif current is not _CONFLICT and current != observed:
                    slots[param_index] = _CONFLICT
    return {
        name: [v if isinstance(v, int) else None for v in slots]
        for name, slots in facts.items()
    }


def apply_param_constants(
    routine: Routine, constants: List[Optional[int]]
) -> int:
    """Materialize known-constant parameters at the routine entry."""
    bindings = [
        (index, value)
        for index, value in enumerate(constants[: routine.n_params])
        if value is not None
    ]
    if not bindings:
        return 0
    entry = routine.entry
    for offset, (param_index, value) in enumerate(bindings):
        entry.instrs.insert(
            offset, Instr(Opcode.CONST, dst=param_index, imm=value)
        )
    routine.invalidate()
    return len(bindings)


def constant_return_value(routine: Routine) -> Optional[int]:
    """The single literal this routine always returns, if provable.

    Conservative: each RET must return a register set by an in-block
    CONST (or return nothing, which is the literal 0).
    """
    result: Optional[int] = None
    found_any = False
    for block in routine.blocks:
        term = block.terminator
        if term is None or term.op is not Opcode.RET:
            continue
        found_any = True
        if term.a is None:
            value: Optional[int] = 0
        else:
            value = _const_def_in_block(
                routine, block.label, len(block.instrs) - 1, term.a
            )
        if value is None:
            return None
        if result is None:
            result = value
        elif result != value:
            return None
    return result if found_any else None


def publish_interprocedural_facts(
    ctx: OptContext,
    routine_names: List[str],
    resolve: Callable[[str], Optional[Routine]],
    all_global_names: Iterable[str],
    externally_callable: "frozenset[str]" = frozenset(),
    externally_visible_globals: "frozenset[str]" = frozenset(),
    fact_log: Optional[Dict[str, List[Optional[int]]]] = None,
) -> Dict[str, int]:
    """Fill ctx.readonly_globals / ctx.const_returns; bind const params.

    ``resolve`` is called one routine at a time so the NAIM loader can
    keep memory bounded.  Under *coarse selectivity* not every module is
    in the CMO set, so facts that depend on seeing every caller/writer
    are suppressed for ``externally_callable`` routines and
    ``externally_visible_globals`` symbols (referenced by non-CMO
    objects).  Returns {routine_name: n params bound}.

    ``fact_log`` (a dict) receives routine -> the per-parameter
    constants materialized into it -- the lattice facts the routine's
    module consumed from its callers, recorded for the incremental
    engine's dependency edges.
    """
    bound: Dict[str, int] = {}
    if not ctx.options.ipcp_enabled:
        return bound

    if ctx.options.readonly_global_promotion and ctx.modref is not None:
        ctx.readonly_globals = (
            ctx.modref.never_written_globals(all_global_names)
            - set(externally_visible_globals)
        )

    def routines():
        for name in routine_names:
            routine = resolve(name)
            if routine is not None:
                yield routine

    param_facts = gather_param_constants(routines(), resolve)
    for name in routine_names:
        if name == ENTRY_NAME or name in externally_callable:
            continue
        constants = param_facts.get(name)
        if constants:
            routine = resolve(name)
            if routine is None:
                continue
            count = apply_param_constants(routine, constants)
            if count:
                bound[name] = count
                ctx.stats.bump("ipcp_params", count)
                if fact_log is not None:
                    fact_log[name] = list(constants)

    for name in routine_names:
        routine = resolve(name)
        if routine is None:
            continue
        value = constant_return_value(routine)
        if value is not None:
            ctx.const_returns[name] = value
    return bound
