"""Memory disambiguation: global load/store forwarding within blocks.

Module boundaries normally hide "information about aliasing effects on
routine arguments and global variables" (paper §1); with the whole CMO
set visible, mod/ref analysis tells us exactly which calls can touch
which globals, so loads can be forwarded across calls that provably
leave the global alone.

Transformations (per basic block, one forward walk):

* store-to-load forwarding: ``storeg @g, r; ...; x = loadg @g`` becomes
  ``x = mov r`` when nothing in between may write ``g``;
* redundant load elimination: a second ``loadg @g`` reuses the first
  loaded value under the same condition;
* dead store elimination: a ``storeg @g`` overwritten by a later store
  to ``g`` in the same block, with no possible intervening read, is
  dropped.

Arrays are handled at whole-array granularity (any LOADE/STOREE of a
symbol counts as a read/write of the whole symbol).
"""

from __future__ import annotations

from typing import Dict, Set

from ...ir.instructions import Instr, Opcode
from ...ir.routine import Routine
from ..passes import OptContext, RoutinePass


class MemoryForwarding(RoutinePass):
    name = "memopt"

    def run(self, routine: Routine, ctx: OptContext) -> bool:
        modref = ctx.modref
        changed = False
        for block in routine.blocks:
            # sym -> register currently holding the global's value.
            known: Dict[str, int] = {}
            # sym -> index of a store with no observed reader yet.
            pending_store: Dict[str, int] = {}
            dead_indices: Set[int] = set()

            for index, instr in enumerate(block.instrs):
                original_op = instr.op
                original_sym = instr.sym

                # Forward a load from a register already holding the value.
                if original_op is Opcode.LOADG:
                    held = known.get(original_sym)
                    if held is not None:
                        instr = Instr(Opcode.MOV, dst=instr.dst, a=held)
                        block.instrs[index] = instr
                        changed = True

                # Any register definition invalidates facts about the old
                # value that register held.
                dst = instr.dst
                if dst is not None:
                    stale = [s for s, reg in known.items() if reg == dst]
                    for sym in stale:
                        del known[sym]

                if original_op is Opcode.STOREG:
                    previous = pending_store.get(original_sym)
                    if previous is not None:
                        dead_indices.add(previous)
                        changed = True
                    pending_store[original_sym] = index
                    known[original_sym] = instr.a
                elif original_op is Opcode.LOADG:
                    # Whether forwarded (MOV) or a real load, dst now holds
                    # the global's value; a real load also observes any
                    # pending store (keep it).
                    known[original_sym] = dst
                    pending_store.pop(original_sym, None)
                elif original_op in (Opcode.LOADE, Opcode.STOREE):
                    known.pop(original_sym, None)
                    pending_store.pop(original_sym, None)
                elif original_op is Opcode.CALL:
                    if modref is None:
                        known.clear()
                        pending_store.clear()
                    else:
                        info = modref.for_routine(instr.sym)
                        if info.unknown:
                            known.clear()
                            pending_store.clear()
                        else:
                            for sym in [s for s in known if s in info.mod]:
                                del known[sym]
                            for sym in [
                                s
                                for s in pending_store
                                if s in info.mod or s in info.ref
                            ]:
                                del pending_store[sym]

            if dead_indices:
                block.instrs = [
                    ins
                    for idx, ins in enumerate(block.instrs)
                    if idx not in dead_indices
                ]
        if changed:
            routine.invalidate()
        return changed
