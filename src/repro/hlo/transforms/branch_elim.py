"""Redundant branch elimination (named HLO transformation, paper §3).

Covers the branch shapes the constant folder does not:

* branches on a condition that a dominating block already tested and
  whose value is therefore known on this path (dominated branch
  correlation, restricted to identical condition registers with no
  intervening redefinition -- detected via a simple dominator walk);
* branch-to-branch: a conditional branch whose target block consists of
  a single conditional branch on the same register.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ...ir.instructions import Instr, Opcode
from ...ir.routine import Routine
from ..analysis.dominators import immediate_dominators
from ..passes import OptContext, RoutinePass


def _reg_redefined(routine: Routine, label: str, reg: int) -> bool:
    """Does block ``label`` (re)define ``reg``?"""
    for instr in routine.block(label).instrs:
        if instr.dst == reg:
            return True
    return False


class BranchElimination(RoutinePass):
    name = "branch_elim"

    def run(self, routine: Routine, ctx: OptContext) -> bool:
        if not ctx.options.branch_elim_enabled:
            return False
        changed = False
        changed |= self._branch_to_branch(routine)
        changed |= self._dominated_branches(routine)
        if changed:
            routine.invalidate()
        return changed

    # -- Branch-to-branch threading ------------------------------------------------

    def _branch_to_branch(self, routine: Routine) -> bool:
        """If BR r -> T where T is just ``br r, X, Y``, jump straight on.

        Only legal when T defines nothing (a bare branch block): on the
        true edge the condition is known true, so control continues at
        X; likewise for the false edge.
        """
        bare_branches: Dict[str, Tuple[int, str, str]] = {}
        for block in routine.blocks:
            if len(block.instrs) == 1 and block.instrs[0].op is Opcode.BR:
                term = block.instrs[0]
                bare_branches[block.label] = (term.a, term.targets[0],
                                              term.targets[1])
        if not bare_branches:
            return False
        changed = False
        for block in routine.blocks:
            term = block.terminator
            if term is None or term.op is not Opcode.BR:
                continue
            true_target, false_target = term.targets
            if true_target in bare_branches and true_target != block.label:
                reg, next_true, _ = bare_branches[true_target]
                if reg == term.a and next_true != true_target:
                    term.targets = (next_true, false_target)
                    changed = True
            true_target, false_target = term.targets
            if false_target in bare_branches and false_target != block.label:
                reg, _, next_false = bare_branches[false_target]
                if reg == term.a and next_false != false_target:
                    term.targets = (true_target, next_false)
                    changed = True
        return changed

    # -- Dominated identical branches -------------------------------------------------

    def _dominated_branches(self, routine: Routine) -> bool:
        """Fold ``br r`` when an idom chain block branched on ``r`` and
        this block lies purely on one outcome's edge."""
        idom = immediate_dominators(routine)
        preds = routine.predecessors()
        changed = False
        for block in routine.blocks:
            term = block.terminator
            if term is None or term.op is not Opcode.BR:
                continue
            known = self._known_condition(routine, idom, preds, block.label,
                                          term.a)
            if known is None:
                continue
            target = term.targets[0] if known else term.targets[1]
            block.instrs[-1] = Instr(Opcode.JMP, targets=(target,))
            changed = True
        return changed

    def _known_condition(
        self,
        routine: Routine,
        idom: Dict[str, Optional[str]],
        preds: Dict[str, list],
        label: str,
        reg: int,
    ) -> Optional[bool]:
        """Walk the dominator chain looking for a branch that pins ``reg``.

        The value is known only when every step from the dominating
        branch down to ``label`` is a single-predecessor chain on one
        branch outcome and no block in between redefines ``reg``.
        """
        if _reg_redefined(routine, label, reg):
            return None  # the condition is recomputed in this block
        current = label
        steps = 0
        while steps < 64:
            steps += 1
            parent = idom.get(current)
            if parent is None or parent == current:
                return None
            # The chain property: current must be parent's unique-pred child.
            if preds.get(current) != [parent]:
                return None
            if current != label and _reg_redefined(routine, current, reg):
                return None
            parent_term = routine.block(parent).terminator
            if (
                parent_term is not None
                and parent_term.op is Opcode.BR
                and parent_term.a == reg
            ):
                if parent_term.targets[0] == current and (
                    parent_term.targets[1] != current
                ):
                    return True
                if parent_term.targets[1] == current and (
                    parent_term.targets[0] != current
                ):
                    return False
                return None
            if _reg_redefined(routine, parent, reg):
                return None
            current = parent
        return None
