"""The HLO phase framework (paper §3: "HLO optimizes code through a
series of transformation phases").

A :class:`RoutinePass` transforms one routine; :class:`PassPipeline`
iterates a pass list to a fixed point (bounded).  The shared
:class:`OptContext` carries the global objects every phase may consult:
the program symbol table, mod/ref analysis, profile views and options.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..ir.routine import Routine
from ..ir.symbols import ProgramSymbolTable
from ..ir.verifier import assert_valid_routine
from .analysis.modref import ModRefAnalysis
from .options import HloOptions
from .profile_view import ProfileView


class PassStats:
    """Counts of transformations applied, per pass name."""

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}

    def bump(self, pass_name: str, amount: int = 1) -> None:
        if amount:
            self.counts[pass_name] = self.counts.get(pass_name, 0) + amount

    def get(self, pass_name: str) -> int:
        return self.counts.get(pass_name, 0)

    def merge(self, other: "PassStats") -> None:
        """Fold another context's counters into this one (partition
        workers run with private stats, folded back in order)."""
        for pass_name, count in other.counts.items():
            self.bump(pass_name, count)

    def __repr__(self) -> str:
        inner = ", ".join(
            "%s=%d" % (name, count) for name, count in sorted(self.counts.items())
        )
        return "<PassStats %s>" % inner


class OptContext:
    """Shared state for one HLO run."""

    def __init__(
        self,
        symtab: ProgramSymbolTable,
        options: Optional[HloOptions] = None,
        modref: Optional[ModRefAnalysis] = None,
    ) -> None:
        self.symtab = symtab
        self.options = options or HloOptions()
        self.modref = modref
        self.views: Dict[str, ProfileView] = {}
        self.stats = PassStats()
        #: Set of globals proven read-only program-wide (ipcp fills it).
        self.readonly_globals = set()
        #: Routine-name -> known constant return value (ipcp fills it).
        self.const_returns: Dict[str, int] = {}

    def view_for(self, routine: Routine) -> ProfileView:
        view = self.views.get(routine.name)
        if view is None:
            view = ProfileView.static_estimate(routine)
            self.views[routine.name] = view
        return view

    def has_measured_profile(self, routine: Routine) -> bool:
        view = self.views.get(routine.name)
        return view is not None and not view.is_static_estimate


class RoutinePass:
    """Base class for per-routine transformation phases."""

    name = "pass"

    def run(self, routine: Routine, ctx: OptContext) -> bool:
        """Transform ``routine``; return True when anything changed."""
        raise NotImplementedError


class PassPipeline:
    """Runs a fixed list of passes repeatedly until quiescent."""

    def __init__(self, passes) -> None:
        self.passes = list(passes)

    def run_routine(self, routine: Routine, ctx: OptContext) -> int:
        """Optimize one routine; returns total change count."""
        total_changes = 0
        for _ in range(ctx.options.max_pass_iterations):
            changed = False
            for phase in self.passes:
                if phase.run(routine, ctx):
                    changed = True
                    total_changes += 1
                    ctx.stats.bump(phase.name)
                    routine.invalidate()
                    if ctx.options.checked:
                        assert_valid_routine(routine)
            if not changed:
                break
        return total_changes
