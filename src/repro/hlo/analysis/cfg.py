"""CFG utilities: reachability, ordering, edge queries.

All results are *derived data* -- computed on demand, cached in the
routine's :class:`DerivedCache`, and recomputed from scratch after any
mutation (paper §4.1).
"""

from __future__ import annotations

from typing import Dict, List, Set

from ...ir.routine import Routine


def reachable_labels(routine: Routine) -> Set[str]:
    """Labels of blocks reachable from the entry block."""

    def compute() -> Set[str]:
        seen: Set[str] = set()
        stack = [routine.entry.label]
        while stack:
            label = stack.pop()
            if label in seen:
                continue
            seen.add(label)
            for succ in routine.block(label).successors():
                if succ not in seen:
                    stack.append(succ)
        return seen

    return routine.derived.get("reachable", compute)


def reverse_postorder(routine: Routine) -> List[str]:
    """Block labels in reverse postorder from the entry (forward analyses)."""

    def compute() -> List[str]:
        visited: Set[str] = set()
        postorder: List[str] = []
        # Iterative DFS with explicit successor iterators.
        stack = [(routine.entry.label, iter(routine.entry.successors()))]
        visited.add(routine.entry.label)
        while stack:
            label, successor_iter = stack[-1]
            advanced = False
            for succ in successor_iter:
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, iter(routine.block(succ).successors())))
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                postorder.append(label)
        postorder.reverse()
        return postorder

    return routine.derived.get("rpo", compute)


def predecessor_map(routine: Routine) -> Dict[str, List[str]]:
    """Alias for :meth:`Routine.predecessors` (kept for symmetry)."""
    return routine.predecessors()
