"""Dominator analysis (Cooper-Harvey-Kennedy iterative algorithm)."""

from __future__ import annotations

from typing import Dict, List, Optional

from ...ir.routine import Routine
from .cfg import reverse_postorder


def immediate_dominators(routine: Routine) -> Dict[str, Optional[str]]:
    """Map block label -> immediate dominator label (entry -> None).

    Unreachable blocks are absent from the result.
    """

    def compute() -> Dict[str, Optional[str]]:
        rpo = reverse_postorder(routine)
        index = {label: i for i, label in enumerate(rpo)}
        preds = routine.predecessors()
        entry = routine.entry.label
        idom: Dict[str, Optional[str]] = {entry: entry}

        def intersect(a: str, b: str) -> str:
            while a != b:
                while index[a] > index[b]:
                    a = idom[a]  # type: ignore[assignment]
                while index[b] > index[a]:
                    b = idom[b]  # type: ignore[assignment]
            return a

        changed = True
        while changed:
            changed = False
            for label in rpo:
                if label == entry:
                    continue
                candidates = [
                    p for p in preds[label] if p in idom and p in index
                ]
                if not candidates:
                    continue
                new_idom = candidates[0]
                for other in candidates[1:]:
                    new_idom = intersect(new_idom, other)
                if idom.get(label) != new_idom:
                    idom[label] = new_idom
                    changed = True
        result = dict(idom)
        result[entry] = None
        return result

    return routine.derived.get("idom", compute)


def dominates(routine: Routine, a: str, b: str) -> bool:
    """True when block ``a`` dominates block ``b``."""
    idom = immediate_dominators(routine)
    current: Optional[str] = b
    while current is not None:
        if current == a:
            return True
        current = idom.get(current)
    return False


def dominator_tree_children(routine: Routine) -> Dict[str, List[str]]:
    """Map label -> labels it immediately dominates."""
    idom = immediate_dominators(routine)
    children: Dict[str, List[str]] = {label: [] for label in idom}
    for label, parent in idom.items():
        if parent is not None:
            children[parent].append(label)
    return children
