"""Natural-loop detection from back edges and dominators."""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ...ir.routine import Routine
from .cfg import reachable_labels
from .dominators import dominates


class Loop:
    """One natural loop: header plus body block labels."""

    __slots__ = ("header", "body", "back_edges")

    def __init__(self, header: str) -> None:
        self.header = header
        #: All labels in the loop, including the header.
        self.body: Set[str] = {header}
        #: (latch, header) edges forming the loop.
        self.back_edges: List[Tuple[str, str]] = []

    def depth_key(self) -> Tuple[int, str]:
        return (len(self.body), self.header)

    def __repr__(self) -> str:
        return "<Loop header=%s blocks=%d>" % (self.header, len(self.body))


def find_loops(routine: Routine) -> List[Loop]:
    """All natural loops, merged by shared header, cached as derived data."""

    def compute() -> List[Loop]:
        reachable = reachable_labels(routine)
        preds = routine.predecessors()
        loops: Dict[str, Loop] = {}
        for block in routine.blocks:
            if block.label not in reachable:
                continue
            for succ in block.successors():
                if succ in reachable and dominates(routine, succ, block.label):
                    loop = loops.setdefault(succ, Loop(succ))
                    loop.back_edges.append((block.label, succ))
                    # Collect the loop body: nodes reaching the latch
                    # without passing through the header.
                    stack = [block.label]
                    while stack:
                        label = stack.pop()
                        if label in loop.body:
                            continue
                        loop.body.add(label)
                        stack.extend(
                            p for p in preds[label] if p in reachable
                        )
        return sorted(loops.values(), key=Loop.depth_key)

    return routine.derived.get("loops", compute)


def loop_depths(routine: Routine) -> Dict[str, int]:
    """Map block label -> loop nesting depth (0 outside any loop).

    Static profile estimation uses this when no dynamic profile exists.
    """

    def compute() -> Dict[str, int]:
        depths = {block.label: 0 for block in routine.blocks}
        for loop in find_loops(routine):
            for label in loop.body:
                depths[label] += 1
        return depths

    return routine.derived.get("loop_depths", compute)
