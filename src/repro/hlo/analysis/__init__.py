"""HLO analyses (derived data: recomputed, never incrementally updated)."""

from .cfg import predecessor_map, reachable_labels, reverse_postorder
from .dominators import dominates, dominator_tree_children, immediate_dominators
from .liveness import LivenessInfo, block_use_def, live_regs_after, liveness
from .loops import Loop, find_loops, loop_depths
from .modref import ModRefAnalysis, ModRefInfo, direct_modref

__all__ = [
    "predecessor_map",
    "reachable_labels",
    "reverse_postorder",
    "dominates",
    "dominator_tree_children",
    "immediate_dominators",
    "LivenessInfo",
    "block_use_def",
    "live_regs_after",
    "liveness",
    "Loop",
    "find_loops",
    "loop_depths",
    "ModRefAnalysis",
    "ModRefInfo",
    "direct_modref",
]
