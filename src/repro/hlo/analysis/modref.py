"""Interprocedural mod/ref analysis of global variables.

For every routine we compute the sets of globals it may read (*ref*)
and write (*mod*), both directly and transitively through calls.  This
is the "information about global or module private variable usage"
the paper says must be gathered from *all* routines in the CMO set,
even ones not selected for optimization -- which is why selective HLO
still scans everything once (§5).

Unknown callees (outside the analyzed set) are treated as writing and
reading everything (``unknown = True``), keeping the analysis sound
under separate compilation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from ...ir.instructions import Opcode
from ...ir.routine import Routine


class ModRefInfo:
    """Per-routine global usage facts."""

    __slots__ = ("mod", "ref", "unknown", "has_calls")

    def __init__(self) -> None:
        #: Globals possibly written.
        self.mod: Set[str] = set()
        #: Globals possibly read.
        self.ref: Set[str] = set()
        #: True when effects cannot be bounded (unknown callee).
        self.unknown = False
        self.has_calls = False

    def writes(self, sym: str) -> bool:
        return self.unknown or sym in self.mod

    def reads(self, sym: str) -> bool:
        return self.unknown or sym in self.ref

    def is_pure(self) -> bool:
        """No global writes anywhere in the call tree."""
        return not self.unknown and not self.mod

    def __repr__(self) -> str:
        if self.unknown:
            return "<ModRef unknown>"
        return "<ModRef mod=%d ref=%d>" % (len(self.mod), len(self.ref))


def direct_modref(routine: Routine) -> ModRefInfo:
    """Globals touched by the routine's own instructions."""
    info = ModRefInfo()
    for _, _, instr in routine.iter_instrs():
        if instr.op in (Opcode.LOADG, Opcode.LOADE):
            info.ref.add(instr.sym)
        elif instr.op in (Opcode.STOREG, Opcode.STOREE):
            info.mod.add(instr.sym)
        elif instr.op is Opcode.CALL:
            info.has_calls = True
    return info


class ModRefAnalysis:
    """Whole-program mod/ref solved to a fixed point over the call graph."""

    def __init__(self) -> None:
        self.info: Dict[str, ModRefInfo] = {}

    @staticmethod
    def analyze(routines: Iterable[Routine]) -> "ModRefAnalysis":
        direct: Dict[str, ModRefInfo] = {}
        callees: Dict[str, List[str]] = {}
        for routine in routines:
            direct[routine.name] = direct_modref(routine)
            callees[routine.name] = routine.callees()
        return ModRefAnalysis.from_direct(direct, callees)

    @staticmethod
    def from_direct(
        direct: Dict[str, ModRefInfo], callees: Dict[str, List[str]]
    ) -> "ModRefAnalysis":
        """Fixed point from pre-collected direct facts.

        The NAIM driver uses this form: direct facts are gathered one
        routine at a time (touch, scan, unload) so the whole program is
        never expanded at once.
        """
        analysis = ModRefAnalysis()
        # Transitive closure must not mutate the caller's direct facts.
        for name, info in direct.items():
            merged = ModRefInfo()
            merged.mod = set(info.mod)
            merged.ref = set(info.ref)
            merged.unknown = info.unknown
            merged.has_calls = info.has_calls
            analysis.info[name] = merged

        changed = True
        while changed:
            changed = False
            for name, info in analysis.info.items():
                if info.unknown:
                    continue
                for callee in callees.get(name, []):
                    callee_info = analysis.info.get(callee)
                    if callee_info is None or callee_info.unknown:
                        info.unknown = True
                        changed = True
                        break
                    before = (len(info.mod), len(info.ref))
                    info.mod |= callee_info.mod
                    info.ref |= callee_info.ref
                    if (len(info.mod), len(info.ref)) != before:
                        changed = True
        return analysis

    # -- Queries ------------------------------------------------------------

    def for_routine(self, name: str) -> ModRefInfo:
        info = self.info.get(name)
        if info is None:
            info = ModRefInfo()
            info.unknown = True
        return info

    def call_may_write(self, callee: str, sym: str) -> bool:
        return self.for_routine(callee).writes(sym)

    def never_written_globals(self, all_globals: Iterable[str]) -> Set[str]:
        """Globals no analyzed routine ever writes (promotable to consts).

        Returns the empty set when any routine has unknown effects.
        """
        written: Set[str] = set()
        for info in self.info.values():
            if info.unknown:
                return set()
            written |= info.mod
        return {sym for sym in all_globals if sym not in written}

    def pure_routines(self) -> Set[str]:
        return {name for name, info in self.info.items() if info.is_pure()}
