"""Virtual-register liveness analysis (backward dataflow)."""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ...ir.routine import Routine
from .cfg import reverse_postorder


class LivenessInfo:
    """Per-block live-in/live-out register sets."""

    __slots__ = ("live_in", "live_out", "use", "defs")

    def __init__(
        self,
        live_in: Dict[str, Set[int]],
        live_out: Dict[str, Set[int]],
        use: Dict[str, Set[int]],
        defs: Dict[str, Set[int]],
    ) -> None:
        self.live_in = live_in
        self.live_out = live_out
        self.use = use
        self.defs = defs


def block_use_def(routine: Routine) -> Tuple[Dict[str, Set[int]], Dict[str, Set[int]]]:
    """Upward-exposed uses and definitions per block."""
    use: Dict[str, Set[int]] = {}
    defs: Dict[str, Set[int]] = {}
    for block in routine.blocks:
        block_use: Set[int] = set()
        block_def: Set[int] = set()
        for instr in block.instrs:
            for reg in instr.uses():
                if reg not in block_def:
                    block_use.add(reg)
            dst = instr.defines()
            if dst is not None:
                block_def.add(dst)
        use[block.label] = block_use
        defs[block.label] = block_def
    return use, defs


def liveness(routine: Routine) -> LivenessInfo:
    """Compute (and cache) live-in/out sets for every block."""

    def compute() -> LivenessInfo:
        use, defs = block_use_def(routine)
        live_in: Dict[str, Set[int]] = {b.label: set() for b in routine.blocks}
        live_out: Dict[str, Set[int]] = {b.label: set() for b in routine.blocks}
        order = list(reversed(reverse_postorder(routine)))
        # Include unreachable blocks so the verifier-facing passes see them.
        order.extend(
            block.label for block in routine.blocks if block.label not in set(order)
        )
        changed = True
        while changed:
            changed = False
            for label in order:
                block = routine.block(label)
                out: Set[int] = set()
                for succ in block.successors():
                    out |= live_in[succ]
                new_in = use[label] | (out - defs[label])
                if out != live_out[label] or new_in != live_in[label]:
                    live_out[label] = out
                    live_in[label] = new_in
                    changed = True
        return LivenessInfo(live_in, live_out, use, defs)

    return routine.derived.get("liveness", compute)


def live_regs_after(routine: Routine, label: str) -> List[Set[int]]:
    """Registers live *after* each instruction of block ``label``.

    Returned list is parallel to the block's instruction list.  Used by
    dead-code elimination and the register allocator.
    """
    info = liveness(routine)
    block = routine.block(label)
    live = set(info.live_out[label])
    after: List[Set[int]] = [set() for _ in block.instrs]
    for index in range(len(block.instrs) - 1, -1, -1):
        after[index] = set(live)
        instr = block.instrs[index]
        dst = instr.defines()
        if dst is not None:
            live.discard(dst)
        for reg in instr.uses():
            live.add(reg)
    return after
