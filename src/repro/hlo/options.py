"""HLO tuning knobs.

Defaults match the behaviour the paper describes: with profiles (PBO),
effort concentrates on hot call sites; without profiles the inliner is
driven by size heuristics alone and "thoroughly optimizes all routines",
with the blow-up consequences §5 reports.
"""

from __future__ import annotations

from typing import Optional


class HloOptions:
    """Optimization policy for one HLO invocation."""

    def __init__(
        self,
        # -- Inlining ------------------------------------------------------
        inline_callee_max_instrs: int = 48,
        inline_hot_callee_max_instrs: int = 150,
        inline_caller_max_instrs: int = 1500,
        inline_routine_growth_factor: float = 3.0,
        inline_program_growth_factor: float = 2.2,
        inline_hot_site_fraction: float = 0.7,
        inline_min_site_weight: int = 1,
        inline_operation_limit: Optional[int] = None,
        inline_schedule_by_module_pair: bool = True,
        inject_inline_bug_after: Optional[int] = None,
        # -- Cloning -------------------------------------------------------
        clone_enabled: bool = True,
        clone_callee_max_instrs: int = 60,
        clone_min_const_args: int = 1,
        # -- Scalar passes ---------------------------------------------------
        constprop_enabled: bool = True,
        licm_enabled: bool = True,
        licm_max_exported: int = 4,
        dce_enabled: bool = True,
        branch_elim_enabled: bool = True,
        simplify_enabled: bool = True,
        ipcp_enabled: bool = True,
        dead_function_elim_enabled: bool = True,
        readonly_global_promotion: bool = True,
        # -- Pipeline ----------------------------------------------------------
        max_pass_iterations: int = 4,
        checked: bool = False,
    ) -> None:
        self.inline_callee_max_instrs = inline_callee_max_instrs
        self.inline_hot_callee_max_instrs = inline_hot_callee_max_instrs
        self.inline_caller_max_instrs = inline_caller_max_instrs
        self.inline_routine_growth_factor = inline_routine_growth_factor
        self.inline_program_growth_factor = inline_program_growth_factor
        #: Fraction of total dynamic call weight the inliner tries to
        #: cover when profiles are present (hot-site selection).
        self.inline_hot_site_fraction = inline_hot_site_fraction
        self.inline_min_site_weight = inline_min_site_weight
        #: Hard cap on the number of inline operations (bug triage,
        #: paper §6.3 "controllable operation limits").
        self.inline_operation_limit = inline_operation_limit
        #: Group cross-module inlines by module pair for loader locality
        #: (paper §4.3).
        self.inline_schedule_by_module_pair = inline_schedule_by_module_pair
        #: Testing aid: miscompile the N-th inline (see repro.triage).
        self.inject_inline_bug_after = inject_inline_bug_after

        self.clone_enabled = clone_enabled
        self.clone_callee_max_instrs = clone_callee_max_instrs
        self.clone_min_const_args = clone_min_const_args

        self.constprop_enabled = constprop_enabled
        self.licm_enabled = licm_enabled
        #: Cap on loop-carried values LICM may create per loop (register
        #: pressure guard; recomputing cheap ops beats spilling).
        self.licm_max_exported = licm_max_exported
        self.dce_enabled = dce_enabled
        self.branch_elim_enabled = branch_elim_enabled
        self.simplify_enabled = simplify_enabled
        self.ipcp_enabled = ipcp_enabled
        self.dead_function_elim_enabled = dead_function_elim_enabled
        self.readonly_global_promotion = readonly_global_promotion

        self.max_pass_iterations = max_pass_iterations
        #: Run the IR verifier after every pass (debug builds).
        self.checked = checked

    def copy(self, **overrides) -> "HloOptions":
        clone = HloOptions()
        clone.__dict__.update(self.__dict__)
        clone.__dict__.update(overrides)
        return clone
