"""Summary-only whole-program analysis (the thin link).

Under ``--wpa-mode summary`` the driver's phases 0-4.5 never touch an
expanded routine body: every cross-module decision -- dead-function
elimination, IPCP seeds, cloning candidates, the inline plan -- is
computed from the enriched :class:`~repro.incr.summary.RoutineFacts`
graph, and the body mutations those decisions imply are recorded in a
:class:`WpaPlan`.  The plan is *replayed* against real bodies at the
start of phase 5 (serially, or inside each partition worker), which is
what keeps summary-mode images byte-identical to materializing WPA:
the decisions are provably the same (each simulation mirrors its
transform's exact acceptance tests and size arithmetic), and the
replay runs the very same mutation code (``apply_param_constants``,
``make_clone``, ``splice_call``) the materializing driver runs.

The payoff is the paper's Figure 4 claim pushed to its limit: WPA time
and peak modeled memory scale with the summary graph, so the
coordinator can run 10-50x larger programs without its memory moving.

Size arithmetic (exact, not estimated): splicing callee C into a call
site grows the caller by::

    n_params(C) + instrs(C) - probes(C) + (rets(C) if call has a dst)

because the splice adds one MOV per parameter plus a JMP (replacing
the CALL, net +n_params), copies the body minus PROBEs, and rewrites
each RET into a JMP plus -- only when the call assigns a result -- one
MOV/CONST.  ``probes`` and ``rets`` are invariant under C's own prior
inlining (spliced-in bodies arrive probe-free with RETs already
rewritten), so the recurrence stays exact as bodies grow.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..incr.summary import (
    RoutineFacts,
    apply_entry_bindings,
    facts_constant_return,
    modref_fingerprint,
    view_fingerprint,
)
from ..ir.callgraph import CallGraph, CallGraphNode, CallSite
from ..ir.instructions import Instr, Opcode
from ..ir.program import ENTRY_NAME
from .passes import OptContext
from .profile_view import ProfileView
from .transforms.clone import CloneDecision, make_clone
from .transforms.inline import InlineEngine, _inject_bug, splice_call
from .transforms.ipcp import _CONFLICT


# -- The recorded plan ---------------------------------------------------------


class CloneOp:
    """One clone creation plus the site retargets that aim at it."""

    __slots__ = ("clone", "origin", "bindings", "retargets")

    def __init__(self, clone: str, origin: str,
                 bindings: Tuple[Tuple[int, int], ...],
                 retargets: List[Tuple[str, str, int]]) -> None:
        self.clone = clone
        self.origin = origin
        self.bindings = bindings
        #: (caller, block_label, instr_index) with post-IPCP indexes.
        self.retargets = retargets


class SpliceOp:
    """One inline splice; list position is the global ordinal."""

    __slots__ = ("caller", "callee", "weight")

    def __init__(self, caller: str, callee: str, weight: int) -> None:
        self.caller = caller
        self.callee = callee
        self.weight = weight


class WpaPlan:
    """Deterministic record of every body mutation thin WPA decided.

    Replay order is fixed: all IPCP entry bindings, then clone
    creations interleaved with their retargets (a later clone's origin
    may already have been retargeted), then splices in global ordinal
    order (grouped by caller, callees bottom-up -- so a callee's body
    is always final before it is spliced upward).
    """

    def __init__(self) -> None:
        #: [(routine, [(param_index, value), ...])] in apply order.
        self.bindings: List[Tuple[str, List[Tuple[int, int]]]] = []
        self.clones: List[CloneOp] = []
        self.splices: List[SpliceOp] = []

    def is_empty(self) -> bool:
        return not (self.bindings or self.clones or self.splices)

    # -- Wire form (travels in the partition context blob) ---------------------

    def to_dict(self) -> dict:
        return {
            "bindings": [
                [name, [[i, v] for i, v in binds]]
                for name, binds in self.bindings
            ],
            "clones": [
                [op.clone, op.origin,
                 [[i, v] for i, v in op.bindings],
                 [[caller, label, index]
                  for caller, label, index in op.retargets]]
                for op in self.clones
            ],
            "splices": [
                [op.caller, op.callee, op.weight] for op in self.splices
            ],
        }

    @staticmethod
    def from_dict(data: dict) -> "WpaPlan":
        plan = WpaPlan()
        plan.bindings = [
            (name, [(int(i), int(v)) for i, v in binds])
            for name, binds in data.get("bindings", [])
        ]
        plan.clones = [
            CloneOp(clone, origin,
                    tuple((int(i), int(v)) for i, v in bindings),
                    [(caller, label, int(index))
                     for caller, label, index in retargets])
            for clone, origin, bindings, retargets in data.get("clones", [])
        ]
        plan.splices = [
            SpliceOp(caller, callee, int(weight))
            for caller, callee, weight in data.get("splices", [])
        ]
        return plan

    def import_closure(self) -> Callable[[str], Set[str]]:
        """Returns need(routine): the callee bodies its replay touches.

        A splice needs the callee's body *and* whatever that callee's
        own replay needs (its body must be final first); a clone needs
        its origin's body plus its own splice needs; retargets need
        nothing (they rewrite an instruction in place).
        """
        splice_needs: Dict[str, List[str]] = {}
        for op in self.splices:
            splice_needs.setdefault(op.caller, []).append(op.callee)
        clone_origin = {op.clone: op.origin for op in self.clones}
        memo: Dict[str, Set[str]] = {}

        def need(name: str) -> Set[str]:
            cached = memo.get(name)
            if cached is not None:
                return cached
            result: Set[str] = set()
            memo[name] = result  # cycle guard (recursion never splices)
            origin = clone_origin.get(name)
            if origin is not None:
                result.add(origin)
                result |= need(origin)
            for callee in splice_needs.get(name, ()):
                result.add(callee)
                result |= need(callee)
            return result

        return need

    def imports_for(self, routines) -> List[str]:
        """Sorted import list for one partition's routine set."""
        local = set(routines)
        need = self.import_closure()
        imports: Set[str] = set()
        for name in routines:
            imports |= need(name)
        return sorted(imports - local)


# -- Thin stand-in bodies ------------------------------------------------------


class ThinBody:
    """A :class:`RoutineFacts` wearing the slice of the Routine
    interface the inline engine consumes."""

    __slots__ = ("facts",)

    def __init__(self, facts: RoutineFacts) -> None:
        self.facts = facts

    @property
    def name(self) -> str:
        return self.facts.name

    @property
    def module_name(self) -> str:
        return self.facts.module

    @property
    def n_params(self) -> int:
        return self.facts.n_params

    def instr_count(self) -> int:
        return self.facts.instr_count

    def find_site(self, callee: str):
        """First remaining site calling ``callee``.

        The facts site list *is* the flat scannable order: a real
        splice keeps earlier sites in place (head of the split block),
        preserves later ones (continuation), and contributes no
        scannable sites from the cloned body -- so dropping the
        consumed entry keeps both orders in lockstep.
        """
        for site in self.facts.sites:
            if site.callee == callee:
                return site
        return None

    def splice(self, site, callee: "ThinBody") -> None:
        """Consume one site and grow by the exact splice delta."""
        facts = callee.facts
        delta = facts.n_params + facts.instr_count - facts.probe_count
        if site.has_dst:
            delta += facts.ret_count
        self.facts.sites.remove(site)
        self.facts.instr_count += delta


class ThinInlineEngine(InlineEngine):
    """The inline engine's planner run against thin bodies.

    Planning (candidate filters, hot cutoff, module-pair scheduling,
    growth budgets) is inherited unchanged; only ``_execute_plan`` is
    overridden -- instead of splicing IR it consumes summary sites,
    advances the exact size recurrence, and appends the splice to the
    plan for later replay.
    """

    def __init__(self, ctx, callgraph, resolve, has_profiles,
                 plan: WpaPlan) -> None:
        super().__init__(ctx, callgraph, resolve, has_profiles)
        self.plan = plan

    def _execute_plan(self, caller, plan, program_budget) -> None:
        options = self.ctx.options
        caller_limit = max(
            options.inline_caller_max_instrs,
            int(self._size_of(caller.name)
                * options.inline_routine_growth_factor),
        )
        for cand in plan:
            if (
                options.inline_operation_limit is not None
                and self.stats.performed >= options.inline_operation_limit
            ):
                self.stats.hit_operation_limit = True
                return
            callee = self.resolve(cand.callee)
            if callee is None:
                continue
            callee_size = callee.instr_count()
            if (
                caller.instr_count() + callee_size > caller_limit
                or self._program_size + callee_size > program_budget
            ):
                self.stats.rejected_growth += 1
                continue
            site = caller.find_site(cand.callee)
            if site is None:
                continue  # an earlier splice consumed the call
            if len(site.args) != callee.n_params:
                # Mismatched interface: the materializing engine leaves
                # the call in place without consuming the site.
                continue
            caller.splice(site, callee)
            self.plan.splices.append(
                SpliceOp(caller.name, cand.callee, cand.weight)
            )
            # inject_inline_bug_after needs no recording: replay derives
            # the injection point from the same global splice ordinal.
            self.stats.record(
                caller.module_name, callee.module_name,
                caller=caller.name, callee=cand.callee,
            )
            self._set_size(caller.name, caller.instr_count())
        self._set_size(caller.name, caller.instr_count())


# -- Facts-level simulations of the whole-program passes -----------------------


def thin_reachable(facts_by_name: Dict[str, RoutineFacts]) -> Optional[Set[str]]:
    """Routines reachable from ``main`` over summary call edges.

    Returns None for a library (no entry routine), mirroring the
    materializing DFE's keep-everything guard.
    """
    if ENTRY_NAME not in facts_by_name:
        return None
    seen: Set[str] = {ENTRY_NAME}
    stack = [ENTRY_NAME]
    while stack:
        for callee in facts_by_name[stack.pop()].callees():
            if callee in facts_by_name and callee not in seen:
                seen.add(callee)
                stack.append(callee)
    return seen


def build_thin_callgraph(
    names: List[str],
    facts_by_name: Dict[str, RoutineFacts],
) -> CallGraph:
    """The call graph, two-pass, from facts (same node and site order
    as :meth:`CmoUnit.build_callgraph` scanning real bodies)."""
    graph = CallGraph()
    for name in names:
        graph.nodes[name] = CallGraphNode(name, facts_by_name[name].module)
    for name in names:
        node = graph.nodes[name]
        for site in facts_by_name[name].sites:
            node.call_sites.append(
                CallSite(name, site.block_label, site.index, site.callee)
            )
            target = graph.nodes.get(site.callee)
            if target is not None and name not in target.caller_names:
                target.caller_names.append(name)
    return graph


def thin_publish_interprocedural_facts(
    ctx: OptContext,
    routine_names: List[str],
    facts_by_name: Dict[str, RoutineFacts],
    all_global_names,
    externally_callable: frozenset,
    externally_visible_globals: frozenset,
    plan: WpaPlan,
) -> Dict[str, int]:
    """IPCP over facts: publish readonly globals / const returns, decide
    entry bindings, record them in the plan, and mutate the facts the
    way ``apply_param_constants`` would mutate the bodies."""
    bound: Dict[str, int] = {}
    if not ctx.options.ipcp_enabled:
        return bound

    if ctx.options.readonly_global_promotion and ctx.modref is not None:
        ctx.readonly_globals = (
            ctx.modref.never_written_globals(all_global_names)
            - set(externally_visible_globals)
        )

    # Gather: the same lattice walk as gather_param_constants, with the
    # per-argument constness read from the site facts.
    slots_by: Dict[str, list] = {}
    for name in routine_names:
        caller = facts_by_name.get(name)
        if caller is None:
            continue
        for site in caller.sites:
            callee = facts_by_name.get(site.callee)
            if callee is None:
                continue
            slots = slots_by.setdefault(site.callee,
                                        [None] * callee.n_params)
            for param_index, (_reg, observed, _has_def) in enumerate(
                    site.args):
                if param_index >= len(slots):
                    continue
                current = slots[param_index]
                if observed is None:
                    slots[param_index] = _CONFLICT
                elif current is None:
                    slots[param_index] = observed
                elif current is not _CONFLICT and current != observed:
                    slots[param_index] = _CONFLICT
    param_facts = {
        name: [v if isinstance(v, int) else None for v in slots]
        for name, slots in slots_by.items()
    }

    # Apply: decide bindings per routine, in routine order.
    for name in routine_names:
        if name == ENTRY_NAME or name in externally_callable:
            continue
        constants = param_facts.get(name)
        if constants:
            facts = facts_by_name.get(name)
            if facts is None:
                continue
            binds = [
                (index, value)
                for index, value in enumerate(constants[:facts.n_params])
                if value is not None
            ]
            if binds:
                bound[name] = len(binds)
                ctx.stats.bump("ipcp_params", len(binds))
                plan.bindings.append((name, binds))
                apply_entry_bindings(facts, binds)

    # Constant returns, over the post-binding facts.
    for name in routine_names:
        facts = facts_by_name.get(name)
        if facts is None:
            continue
        value = facts_constant_return(facts)
        if value is not None:
            ctx.const_returns[name] = value
    return bound


def thin_plan_clones(
    ctx: OptContext,
    caller_order: List[str],
    facts_by_name: Dict[str, RoutineFacts],
) -> List[CloneDecision]:
    """``plan_clones`` over post-IPCP facts (same grouping, filters,
    weights and deterministic ordering)."""
    options = ctx.options
    if not options.clone_enabled:
        return []
    groups: Dict[Tuple[str, tuple], CloneDecision] = {}
    total_sites: Dict[str, int] = {}
    for caller_name in caller_order:
        caller = facts_by_name.get(caller_name)
        if caller is None:
            continue
        view = ctx.views.get(caller_name)
        for site in caller.sites:
            if site.callee == caller_name or site.callee == ENTRY_NAME:
                continue
            total_sites[site.callee] = total_sites.get(site.callee, 0) + 1
            callee = facts_by_name.get(site.callee)
            if callee is None or callee.n_params == 0:
                continue
            if callee.instr_count > options.clone_callee_max_instrs:
                continue
            bindings = tuple(
                (param_index, value)
                for param_index, (_reg, value, _hd) in enumerate(site.args)
                if value is not None
            )
            if len(bindings) < options.clone_min_const_args:
                continue
            key = (site.callee, bindings)
            weight = view.count(site.block_label) if view is not None else 0
            decision = groups.get(key)
            if decision is None:
                decision = CloneDecision(site.callee, bindings, [], 0)
                groups[key] = decision
            decision.sites.append(
                (caller_name, site.block_label, site.index)
            )
            decision.weight += weight
    worthwhile = [
        decision
        for decision in groups.values()
        if len(decision.sites) < total_sites.get(decision.callee, 0)
    ]
    return sorted(
        worthwhile,
        key=lambda d: (-d.weight, d.callee, d.bindings),
    )


def thin_apply_clones(
    ctx: OptContext,
    unit,
    program,
    decisions: List[CloneDecision],
    facts_by_name: Dict[str, RoutineFacts],
    plan: WpaPlan,
    max_clones: int = 64,
) -> List[str]:
    """Mirror the driver's clone application without bodies.

    Real side effects happen exactly as in materializing mode -- module
    and program symbol-table entries, profile-view and mod/ref copies,
    pass-stat bumps -- while the body work (copying the origin,
    retargeting call instructions) lands in the plan.  The clone's
    facts are copied from the origin's *current* facts, so retargets
    applied to the origin by earlier decisions in this loop are
    inherited, matching the materializing interleave.
    """
    created: List[str] = []
    serial = 0
    for decision in decisions:
        if len(created) >= max_clones:
            break
        callee = facts_by_name.get(decision.callee)
        if callee is None:
            continue
        module = program.modules.get(callee.module)
        if module is None:
            continue
        clone_name = "%s::cl%d" % (decision.callee, serial)
        serial += 1
        clone_facts = callee.copy(new_name=clone_name)
        clone_facts.exported = False
        apply_entry_bindings(clone_facts, list(decision.bindings))
        facts_by_name[clone_name] = clone_facts

        symtab_obj = unit.symtab_handles[module.name].get()
        symtab_obj.add_routine(clone_name)
        ctx.symtab.define_routine(clone_name, module.name)
        unit.symtab_handles[module.name].request_unload()
        # Placeholder handle: keeps the clone in the unit's canonical
        # name order; replay registers the real body in its place.
        unit.routine_handles[clone_name] = None
        unit.routine_module[clone_name] = module.name
        created.append(clone_name)
        ctx.stats.bump("clone")
        callee_view = ctx.views.get(decision.callee)
        if callee_view is not None:
            ctx.views[clone_name] = ProfileView(
                clone_name,
                block_counts=callee_view.block_counts,
                edge_counts=callee_view.edge_counts,
                is_static_estimate=callee_view.is_static_estimate,
            )
        clone_facts.view = ctx.views.get(clone_name)
        if ctx.modref is not None:
            ctx.modref.info[clone_name] = ctx.modref.for_routine(
                decision.callee
            )
        retargets: List[Tuple[str, str, int]] = []
        for caller_name, block_label, index in decision.sites:
            caller = facts_by_name.get(caller_name)
            if caller is None:
                continue
            for site in caller.sites:
                if (site.block_label == block_label
                        and site.index == index
                        and site.callee == decision.callee):
                    site.callee = clone_name
                    retargets.append((caller_name, block_label, index))
                    break
        plan.clones.append(
            CloneOp(clone_name, decision.callee, decision.bindings,
                    retargets)
        )
    return created


# -- Thin reuse keys (incremental, phase 4.5) ---------------------------------


def compute_thin_module_keys(
    unit,
    ctx,
    facts_by_name: Dict[str, RoutineFacts],
    orig_hashes: Dict[str, str],
    plan: WpaPlan,
    selected: Set[str],
    clones: Set[str],
    options_fp: str,
    summary_format: int,
):
    """Per-module reuse keys equivalent to ``compute_module_keys``
    without post-inline bodies.

    Each routine gets an *evolution hash* E(r) covering everything that
    determines its post-replay body and profile view: the original body
    hash (or, for clones, the origin's evolution plus the creation
    point and bindings), IPCP bindings, retargets, ordered splices with
    the callee's own E, and the initial view.  Keys are prefixed
    ``thin|`` so they can never collide with materializing-mode keys --
    switching ``--wpa-mode`` re-optimizes rather than risking a stale
    splice.  Returns ``(keys, consumed)`` like the materializing
    helper, with consumed callee/global sets computed by residual
    closure over the plan (spliced bodies contribute their own residual
    calls and globals).
    """
    from ..incr.summary import ConsumedFacts

    bindings_of = {name: binds for name, binds in plan.bindings}
    splices_of: Dict[str, List[SpliceOp]] = {}
    for op in plan.splices:
        splices_of.setdefault(op.caller, []).append(op)
    clone_ops = {op.clone: op for op in plan.clones}
    # Retargets on each caller, in plan order, with the global clone
    # sequence number (a clone's facts inherit only retargets recorded
    # before its creation).
    retargets_of: Dict[str, List[Tuple[int, str, int, str]]] = {}
    clone_seq: Dict[str, int] = {}
    for seq, op in enumerate(plan.clones):
        clone_seq[op.clone] = seq
        for caller, label, index in op.retargets:
            retargets_of.setdefault(caller, []).append(
                (seq, label, index, op.clone)
            )

    evo_memo: Dict[str, str] = {}

    def evolution(name: str) -> str:
        cached = evo_memo.get(name)
        if cached is not None:
            return cached
        digest = hashlib.sha256()
        clone_op = clone_ops.get(name)
        if clone_op is not None:
            digest.update(
                ("cl|%s|%s|%d|%r|" % (
                    clone_op.origin, evolution(clone_op.origin),
                    clone_seq[name], clone_op.bindings,
                )).encode("utf-8")
            )
        else:
            digest.update(
                ("o|%s|" % orig_hashes.get(name, "-")).encode("utf-8")
            )
        digest.update(
            ("b:%r;" % bindings_of.get(name, [])).encode("utf-8")
        )
        for seq, label, index, new_callee in retargets_of.get(name, ()):
            digest.update(
                ("t:%d/%s/%d=%s;" % (seq, label, index, new_callee))
                .encode("utf-8")
            )
        for op in splices_of.get(name, ()):
            digest.update(
                ("i:%s/%s/%d;" % (op.callee, evolution(op.callee),
                                  op.weight)).encode("utf-8")
            )
        facts = facts_by_name.get(name)
        digest.update(
            view_fingerprint(facts.view if facts is not None else None)
            .encode("utf-8")
        )
        value = digest.hexdigest()[:16]
        evo_memo[name] = value
        return value

    residual_memo: Dict[str, Tuple[Set[str], Set[str]]] = {}

    def residual(name: str) -> Tuple[Set[str], Set[str]]:
        cached = residual_memo.get(name)
        if cached is not None:
            return cached
        facts = facts_by_name[name]
        callees = {site.callee for site in facts.sites}
        globals_ = set(facts.referenced_globals)
        residual_memo[name] = (callees, globals_)  # cycle guard
        for op in splices_of.get(name, ()):
            sub_callees, sub_globals = residual(op.callee)
            callees |= sub_callees
            globals_ |= sub_globals
        residual_memo[name] = (callees, globals_)
        return residual_memo[name]

    routines_of: Dict[str, List[str]] = {}
    for name in unit.routine_names():
        routines_of.setdefault(unit.routine_module[name], []).append(name)
    in_unit = set(unit.routine_names())

    keys: Dict[str, str] = {}
    consumed: Dict[str, "ConsumedFacts"] = {}
    for module_name, names in routines_of.items():
        digest = hashlib.sha256()
        digest.update(("thin|v%d|" % summary_format).encode("utf-8"))
        digest.update(options_fp.encode("utf-8"))
        digest.update(("|%s|" % module_name).encode("utf-8"))
        facts = ConsumedFacts(module_name)
        for name in names:
            optimized = name in selected or name in clones
            digest.update(
                ("r:%s/%d=%s;" % (name, int(optimized), evolution(name)))
                .encode("utf-8")
            )
            sub_callees, sub_globals = residual(name)
            facts.callees.update(sub_callees)
            facts.globals.update(sub_globals)
        for callee in sorted(facts.callees):
            modref = (
                modref_fingerprint(ctx.modref.for_routine(callee))
                if ctx.modref is not None else "-"
            )
            digest.update(
                ("c:%s/%s/%r/%d;" % (
                    callee, modref, ctx.const_returns.get(callee),
                    int(callee in in_unit),
                )).encode("utf-8")
            )
        for global_name in sorted(facts.globals):
            readonly = global_name in ctx.readonly_globals
            if ctx.symtab.has_global(global_name):
                var = ctx.symtab.lookup_global(global_name)
                shape = "%d/%r" % (var.size, var.init)
            else:
                shape = "extern"
            digest.update(
                ("g:%s/%d/%s;" % (global_name, int(readonly), shape))
                .encode("utf-8")
            )
        keys[module_name] = digest.hexdigest()
        consumed[module_name] = facts
    return keys, consumed


# -- Replay --------------------------------------------------------------------


def replay_plan(
    plan: WpaPlan,
    scope: Set[str],
    resolve,
    views: Dict[str, ProfileView],
    options,
    adopt_clone,
    pin=None,
    release=None,
    unload=None,
) -> None:
    """Apply the recorded mutations to the real bodies in ``scope``.

    Serially ``scope`` is every unit routine; a partition worker passes
    its locals plus the partition's import list.  Determinism: replay
    applied to any scope closed under the plan's import relation
    produces, for each routine in scope, the exact body and view the
    materializing driver produces -- bindings and retargets are
    per-routine, and splices touch only the caller while reading a
    callee whose own replay (earlier in global order) has finished.

    ``adopt_clone(routine)`` must register a created clone body so a
    later ``resolve`` finds it; ``pin``/``release``/``unload`` are the
    loader hooks the materializing inline/IPCP phases use (optional).
    """
    pin = pin or (lambda name: None)
    release = release or (lambda name: None)
    unload = unload or (lambda name: None)

    # 1. IPCP entry bindings.
    for name, binds in plan.bindings:
        if name not in scope:
            continue
        routine = resolve(name)
        if routine is None:
            continue
        entry = routine.entry
        for offset, (param_index, value) in enumerate(binds):
            entry.instrs.insert(
                offset, Instr(Opcode.CONST, dst=param_index, imm=value)
            )
        routine.invalidate()
        unload(name)

    # 2. Clones and their retargets, interleaved in decision order.
    for op in plan.clones:
        if op.clone in scope:
            origin = resolve(op.origin)
            if origin is not None:
                adopt_clone(make_clone(origin, op.bindings, op.clone))
                unload(op.origin)
        for caller_name, block_label, index in op.retargets:
            if caller_name not in scope:
                continue
            caller = resolve(caller_name)
            if caller is None:
                continue
            call = caller.block(block_label).instrs[index]
            if call.op is Opcode.CALL and call.sym == op.origin:
                call.sym = op.clone
                caller.invalidate()

    # 3. Splices in global ordinal order.  The order is grouped by
    # caller (the engine executes one caller's plan at a time), so the
    # caller is pinned across its run of consecutive splices.
    scannable: Dict[str, set] = {}
    current: Optional[str] = None
    caller_obj = None
    try:
        for ordinal, op in enumerate(plan.splices):
            if op.caller not in scope:
                continue
            if op.caller != current:
                if current is not None:
                    release(current)
                caller_obj = resolve(op.caller)
                current = op.caller
                if caller_obj is None:
                    continue
                pin(current)
                scannable[current] = {
                    block.label for block in caller_obj.blocks
                }
            if caller_obj is None:
                continue
            callee = resolve(op.callee)
            if callee is None:
                continue
            site = InlineEngine._find_site(
                caller_obj, op.callee, scannable[current]
            )
            if site is None:
                continue
            block_label, instr_index = site
            caller_view = views.get(op.caller)
            if caller_view is None:
                caller_view = ProfileView.static_estimate(caller_obj)
                views[op.caller] = caller_view
            cont_label = splice_call(
                caller_obj,
                block_label,
                instr_index,
                callee,
                caller_view=caller_view,
                callee_view=views.get(op.callee),
                site_weight=op.weight,
            )
            scannable[current].add(cont_label)
            if (
                options.inject_inline_bug_after is not None
                and options.inject_inline_bug_after == ordinal + 1
            ):
                _inject_bug(caller_obj, cont_label)
            unload(op.callee)
    finally:
        if current is not None and caller_obj is not None:
            release(current)
