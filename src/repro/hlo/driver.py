"""The high-level optimizer driver.

Orchestrates one CMO compilation: pools are registered with the NAIM
loader, every routine is scanned once ("a minimum amount of analysis
... to ensure that all information available about data accesses is
known", §5), interprocedural facts are published, then inlining,
cloning and the scalar pipeline run over the *selected* routines while
everything else stays unloaded.

The :class:`CmoUnit` is the authoritative container during optimization
-- global objects (program symbol table, call graph) hold only
:class:`Handle` references downward, per Figure 3's object discipline.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional, Set

from ..ir.callgraph import CallGraph
from ..ir.module import Module
from ..ir.program import Program
from ..ir.routine import Routine
from ..naim.config import NaimConfig
from ..naim.loader import Loader
from ..naim.memory import MemoryAccountant, callgraph_bytes, program_symtab_bytes
from ..naim.pools import Handle
from ..naim.repository import Repository
from ..profiles.correlate import correlate
from ..profiles.database import ProfileDatabase
from .analysis.modref import ModRefAnalysis, direct_modref
from .options import HloOptions
from .passes import OptContext, PassPipeline
from .profile_view import ProfileView
from .transforms.branch_elim import BranchElimination
from .transforms.clone import make_clone, plan_clones
from .transforms.constprop import ConstantPropagation
from .transforms.dce import DeadCodeElimination
from .transforms.dfe import eliminate_dead_functions
from .transforms.inline import InlineEngine, InlineStats
from .transforms.ipcp import publish_interprocedural_facts
from .transforms.licm import LoopInvariantCodeMotion
from .transforms.memopt import MemoryForwarding
from .transforms.simplify import SimplifyCfg

#: Accepted --wpa-mode values ("auto" resolves to "summary").
VALID_WPA_MODES = ("auto", "materialize", "summary")


def standard_pipeline() -> PassPipeline:
    """The scalar optimization pipeline run on each selected routine."""
    return PassPipeline(
        [
            SimplifyCfg(),
            ConstantPropagation(),
            MemoryForwarding(),
            LoopInvariantCodeMotion(),
            BranchElimination(),
            DeadCodeElimination(),
        ]
    )


class CmoUnit:
    """The set of routines being cross-module optimized, behind handles."""

    def __init__(self, loader: Loader) -> None:
        self.loader = loader
        self.routine_handles: Dict[str, Handle] = {}
        self.symtab_handles: Dict[str, Handle] = {}
        #: routine name -> defining module (stable ordering preserved).
        self.routine_module: Dict[str, str] = {}

    # -- Registration ------------------------------------------------------------

    def add_module(self, module: Module) -> None:
        self.symtab_handles[module.name] = self.loader.register_symtab(
            module.symtab
        )
        for routine in module.routine_list():
            self.add_routine(routine)

    def add_routine(self, routine: Routine) -> Handle:
        handle = self.loader.register_routine(routine)
        self.routine_handles[routine.name] = handle
        self.routine_module[routine.name] = routine.module_name
        return handle

    # -- Access -----------------------------------------------------------------

    def routine(self, name: str) -> Optional[Routine]:
        handle = self.routine_handles.get(name)
        return handle.get() if handle is not None else None

    def handle(self, name: str) -> Optional[Handle]:
        return self.routine_handles.get(name)

    def routine_names(self) -> List[str]:
        return list(self.routine_handles)

    def unload(self, name: str) -> None:
        handle = self.routine_handles.get(name)
        if handle is not None:
            handle.request_unload()

    def each_routine(self) -> Iterator[Routine]:
        """Touch routines one at a time, requesting unload after each."""
        for name in self.routine_names():
            routine = self.routine(name)
            if routine is None:
                continue
            yield routine
            self.unload(name)

    def build_callgraph(self) -> CallGraph:
        """Rebuild the call graph by scanning every routine once."""
        graph = CallGraph()
        from ..ir.callgraph import CallGraphNode, CallSite

        for name in self.routine_names():
            graph.nodes[name] = CallGraphNode(name, self.routine_module[name])
        for routine in self.each_routine():
            node = graph.nodes[routine.name]
            for block_label, index, callee in routine.call_sites():
                node.call_sites.append(
                    CallSite(routine.name, block_label, index, callee)
                )
                target = graph.nodes.get(callee)
                if target is not None and routine.name not in target.caller_names:
                    target.caller_names.append(routine.name)
        return graph

    def materialize(self, program: Program) -> Program:
        """Write optimized routines back into the Program's modules."""
        for name, handle in self.routine_handles.items():
            module = program.modules.get(self.routine_module[name])
            if module is None:
                continue
            routine = handle.get()
            module.routines[name] = routine
            if name not in module.symtab.routine_names:
                module.symtab.routine_names.append(name)
            handle.request_unload()
        program.invalidate()
        return program


class HloResult:
    """Everything downstream stages need from an HLO run."""

    def __init__(
        self,
        program: Program,
        unit: CmoUnit,
        ctx: OptContext,
        inline_stats: InlineStats,
        selected: Set[str],
        removed_functions: List[str],
        clones: List[str],
    ) -> None:
        self.program = program
        self.unit = unit
        self.ctx = ctx
        self.inline_stats = inline_stats
        self.selected = selected
        self.removed_functions = removed_functions
        self.clones = clones
        #: Peak modeled bytes observed during the HLO phase.
        self.peak_bytes = 0
        #: Modules whose scalar pipeline + codegen are served from the
        #: incremental cache (empty without an incremental session).
        self.reused_modules: Set[str] = set()
        #: Wall-clock seconds per driver phase ("wpa" = serial
        #: whole-program phases 0-4.5, "scalar" = phase 5 when run
        #: serially by :meth:`HighLevelOptimizer.run_scalar_phase`),
        #: plus per-pass WPA splits ("wpa.dfe", "wpa.callgraph",
        #: "wpa.ipcp", "wpa.clone", "wpa.inline", ...).
        self.phase_seconds: Dict[str, float] = {}
        #: Which WPA implementation ran ("materialize" or "summary").
        self.wpa_mode = "materialize"
        #: Peak modeled bytes at the end of the WPA phases (before any
        #: scalar work): the number the summary-only mode keeps flat.
        self.wpa_peak_bytes = 0
        #: Summary-mode only -- the recorded body-mutation plan to
        #: replay in phase 5 (serially or inside partition workers).
        self.plan = None
        #: Summary-mode only -- routine name -> RoutineFacts (final,
        #: post-simulation state).
        self.thin_facts: Optional[Dict[str, object]] = None
        #: Structured events (e.g. summary-cache fallbacks).
        self.events: List[Dict[str, object]] = []
        self._plan_replayed = False

    def scalar_worklist(self) -> List[str]:
        """Routines phase 5 must process, in canonical unit order.

        Selectivity (unselected non-clones) and incremental reuse
        (modules with cached codegen) are already applied; this is the
        exact work a partitioned backend has to cover, and the order
        downstream splicing must preserve.
        """
        clone_set = set(self.clones)
        names: List[str] = []
        for name in self.unit.routine_names():
            if name not in self.selected and name not in clone_set:
                continue
            if self.unit.routine_module.get(name) in self.reused_modules:
                continue
            names.append(name)
        return names

    @property
    def views(self) -> Dict[str, ProfileView]:
        return self.ctx.views

    @property
    def loader(self) -> Loader:
        return self.unit.loader

    @property
    def accountant(self) -> MemoryAccountant:
        return self.unit.loader.accountant

    def __repr__(self) -> str:
        return "<HloResult inlines=%d clones=%d removed=%d selected=%d>" % (
            self.inline_stats.performed,
            len(self.clones),
            len(self.removed_functions),
            len(self.selected),
        )


class HighLevelOptimizer:
    """Runs CMO over a program (or a subset of its routines)."""

    def __init__(
        self,
        program: Program,
        options: Optional[HloOptions] = None,
        profile_db: Optional[ProfileDatabase] = None,
        naim_config: Optional[NaimConfig] = None,
        repository: Optional[Repository] = None,
        accountant: Optional[MemoryAccountant] = None,
        externally_callable: Optional[Set[str]] = None,
        externally_visible_globals: Optional[Set[str]] = None,
        incr_session=None,
        wpa_mode: str = "summary",
    ) -> None:
        self.program = program
        self.options = options or HloOptions()
        self.profile_db = profile_db
        self.naim_config = naim_config or NaimConfig()
        self.repository = repository
        self.accountant = accountant or MemoryAccountant()
        #: Routines callable from outside the CMO set (selective mode).
        self.externally_callable = set(externally_callable or ())
        self.externally_visible_globals = set(externally_visible_globals or ())
        #: Incremental-CMO session (:class:`repro.incr.IncrLinkSession`).
        #: When present, the driver records summary consumption and
        #: skips the scalar pipeline for modules whose post-inline
        #: reuse key matches a cached codegen blob.
        self.incr_session = incr_session
        if wpa_mode not in VALID_WPA_MODES:
            raise ValueError("unknown wpa_mode %r" % (wpa_mode,))
        #: "summary" runs the thin whole-program phase (decisions from
        #: facts, body mutations replayed in phase 5); "materialize"
        #: runs the classic body-walking WPA.  Both produce
        #: byte-identical images.
        self.wpa_mode = "summary" if wpa_mode == "auto" else wpa_mode

    # -- Main entry ---------------------------------------------------------------

    def optimize(
        self,
        selected_routines: Optional[Set[str]] = None,
        materialize: bool = True,
        run_scalar: bool = True,
    ) -> HloResult:
        """Run the full HLO phase sequence.

        ``selected_routines`` is the fine-grained selectivity set: only
        these are inlined into and scalar-optimized; None means all.

        ``run_scalar=False`` stops after the serial whole-program
        phases (the WPA half of a WHOPR-style split): the caller owns
        phase 5 -- either via :meth:`run_scalar_phase` or a partitioned
        parallel backend -- and ``materialize`` is deferred with it.
        """
        if self.wpa_mode == "summary":
            result = self._optimize_thin(selected_routines)
        else:
            result = self._optimize_materialized(selected_routines)
        if run_scalar:
            self.run_scalar_phase(result, materialize=materialize)
        return result

    @staticmethod
    def _lap(timings: Dict[str, float], key: str, since: float) -> float:
        now = time.perf_counter()
        timings[key] = timings.get(key, 0.0) + (now - since)
        return now

    def _optimize_materialized(
        self, selected_routines: Optional[Set[str]]
    ) -> HloResult:
        """The classic WPA: phases 0-4.5 over expanded bodies."""
        program = self.program
        options = self.options
        wpa_start = time.perf_counter()
        timings: Dict[str, float] = {}
        tick = wpa_start

        incr = self.incr_session

        # Phase 0: dead-function elimination on the whole-program view.
        removed: List[str] = []
        if options.dead_function_elim_enabled and not self.externally_callable:
            removal_log: Dict[str, List[str]] = {}
            removed = eliminate_dead_functions(program,
                                               removal_log=removal_log)
            if incr is not None and removal_log:
                incr.record_dfe(removal_log)
        tick = self._lap(timings, "wpa.dfe", tick)

        symtab = program.symtab
        loader = Loader(
            self.naim_config, symtab, self.accountant, self.repository
        )
        unit = CmoUnit(loader)
        ctx = OptContext(symtab, options)
        accountant = loader.accountant

        # Global (always-resident) objects are accounted directly.
        accountant.set_usage("global", "program_symtab",
                             program_symtab_bytes(symtab))
        callgraph = program.callgraph(rebuild=True)
        accountant.set_usage("global", "callgraph", callgraph_bytes(callgraph))

        # Phase 1: register + scan, one module at a time.  "As the code
        # and data are read in, a minimum amount of analysis ... is done"
        # (§5); each routine is unloaded right after its scan, so peak
        # memory tracks the loader's working set, never the whole
        # program.
        direct: Dict[str, object] = {}
        callees: Dict[str, List[str]] = {}
        for module in program.module_list():
            unit.add_module(module)
            for routine in module.routine_list():
                direct[routine.name] = direct_modref(routine)
                callees[routine.name] = routine.callees()
                ctx.views[routine.name] = self._initial_view(routine)
                unit.unload(routine.name)
            unit.symtab_handles[module.name].request_unload()
        ctx.modref = ModRefAnalysis.from_direct(direct, callees)
        accountant.mark("scanned")

        # Attach call-site weights for inline ranking.  Weights come from
        # the per-routine views (measured or static): a call executes as
        # often as its containing block, and views stay correct across
        # transforms (cloning, inlining) where raw database keys do not.
        self._attach_view_weights(callgraph, ctx)
        tick = self._lap(timings, "wpa.callgraph", tick)

        all_names = unit.routine_names()
        if selected_routines is None:
            selected = set(all_names)
        else:
            selected = set(selected_routines) & set(all_names)

        # Phase 2: interprocedural constant facts.
        bound = publish_interprocedural_facts(
            ctx,
            all_names,
            unit.routine,
            symtab.all_global_names(),
            externally_callable=frozenset(self.externally_callable),
            externally_visible_globals=frozenset(
                self.externally_visible_globals
            ),
        )
        for name in all_names:
            unit.unload(name)
        if incr is not None and bound:
            incr.record_ipcp_edges(bound, callgraph, unit.routine_module)
        accountant.mark("ipcp")
        tick = self._lap(timings, "wpa.ipcp", tick)

        # Phase 3: procedure cloning (selected callers only).
        clones = self._run_cloning(unit, ctx, program, callgraph, selected)
        if clones:
            callgraph = unit.build_callgraph()
            self._attach_view_weights(callgraph, ctx)
            accountant.set_usage("global", "callgraph",
                                 callgraph_bytes(callgraph))
        accountant.mark("cloned")
        tick = self._lap(timings, "wpa.clone", tick)

        # Phase 4: inlining over selected callers.
        def _pin(name: str) -> None:
            handle = unit.handle(name)
            if handle is not None:
                loader.pin(handle)

        def _release(name: str) -> None:
            handle = unit.handle(name)
            if handle is not None:
                loader.unpin(handle)
                loader.reaccount(handle)
                handle.request_unload()

        engine = InlineEngine(
            ctx,
            callgraph,
            unit.routine,
            has_profiles=self.profile_db is not None,
            pin=_pin,
            release=_release,
        )
        inline_order = sorted(selected | set(clones))
        inline_stats = engine.run(inline_order)
        accountant.mark("inlined")
        tick = self._lap(timings, "wpa.inline", tick)

        # Phase 4.5 (incremental only): fingerprint each module's exact
        # post-inline state -- bodies, views, consumed interprocedural
        # facts -- and splice in cached codegen for key matches.  The
        # whole-program phases above always re-run (they are the thin
        # link); only the per-module phases below are skippable.
        reused_modules: Set[str] = set()
        if incr is not None:
            from ..incr.summary import compute_module_keys

            incr.record_inline_edges(inline_stats, unit.routine_module)
            keys, consumed = compute_module_keys(
                unit, ctx, selected, set(clones), incr.options_fp
            )
            incr.record_consumption(consumed, unit.routine_module, symtab)
            reused_modules = incr.decide_reuse(keys)
            accountant.mark("summarized")
            tick = self._lap(timings, "wpa.summarize", tick)

        result = HloResult(
            program=program,
            unit=unit,
            ctx=ctx,
            inline_stats=inline_stats,
            selected=selected,
            removed_functions=removed,
            clones=clones,
        )
        result.wpa_mode = "materialize"
        result.peak_bytes = accountant.peak
        result.wpa_peak_bytes = accountant.peak
        result.reused_modules = reused_modules
        result.phase_seconds.update(timings)
        result.phase_seconds["wpa"] = time.perf_counter() - wpa_start
        return result

    def _optimize_thin(
        self, selected_routines: Optional[Set[str]]
    ) -> HloResult:
        """Summary-only WPA: phases 0-4.5 from routine facts alone.

        Every cross-module decision is simulated against the enriched
        summary graph with the exact acceptance tests and size
        arithmetic of the materializing passes, so the decisions --
        and therefore the final images -- are identical; the body
        mutations they imply are recorded on a :class:`WpaPlan` and
        replayed at phase-5 start (serially, or inside each partition
        worker).  Bodies are retired to compact/offloaded state right
        after the one extraction scan, so the whole-program peak is
        bounded by summaries plus the loader working set, independent
        of program size.
        """
        from ..incr.summary import (
            SUMMARY_FORMAT,
            RoutineFacts,
            extract_routine_facts,
        )
        from ..naim.memory import routine_facts_bytes
        from . import thin as thin_wpa
        from .analysis.modref import ModRefInfo

        program = self.program
        options = self.options
        wpa_start = time.perf_counter()
        timings: Dict[str, float] = {}
        tick = wpa_start
        incr = self.incr_session
        events: List[Dict[str, object]] = []

        # Facts extraction -- the one body scan, standing in for the
        # materializing phase-1 scan.  With an incremental session, an
        # unchanged module's facts come from the cache after a
        # fingerprint check against its current summary; any miss or
        # mismatch falls back to scanning that module, with an event.
        facts_by_name: Dict[str, RoutineFacts] = {}
        use_cache = incr is not None and self.profile_db is None
        changed = set(incr.changed_modules) if incr is not None else set()
        for module in program.module_list():
            routines = module.routine_list()
            cached_by_name: Dict[str, RoutineFacts] = {}
            if use_cache and not incr.first_build \
                    and module.name not in changed:
                loaded, reason = incr.load_facts(module.name)
                if loaded is None:
                    events.append({
                        "event": "summary-fallback",
                        "module": module.name,
                        "reason": reason,
                    })
                else:
                    for data in loaded:
                        facts = RoutineFacts.from_dict(data)
                        cached_by_name[facts.name] = facts
            for routine in routines:
                facts = cached_by_name.get(routine.name)
                if facts is None:
                    facts = extract_routine_facts(
                        routine, view=self._initial_view(routine)
                    )
                facts_by_name[routine.name] = facts
            if use_cache:
                incr.record_facts(
                    module.name,
                    [facts_by_name[r.name].to_dict() for r in routines],
                )
        summary_cost = sum(
            routine_facts_bytes(facts) for facts in facts_by_name.values()
        )
        tick = self._lap(timings, "wpa.scan", tick)

        # Phase 0: DFE with the keep set computed on the facts graph.
        removed: List[str] = []
        if options.dead_function_elim_enabled and not self.externally_callable:
            keep = thin_wpa.thin_reachable(facts_by_name)
            if keep is not None:
                removal_log: Dict[str, List[str]] = {}
                removed = eliminate_dead_functions(
                    program, removal_log=removal_log, keep=keep
                )
                for name in removed:
                    facts_by_name.pop(name, None)
                if incr is not None and removal_log:
                    incr.record_dfe(removal_log)
        tick = self._lap(timings, "wpa.dfe", tick)

        symtab = program.symtab
        loader = Loader(
            self.naim_config, symtab, self.accountant, self.repository
        )
        unit = CmoUnit(loader)
        ctx = OptContext(symtab, options)
        accountant = loader.accountant
        accountant.set_usage("global", "program_symtab",
                             program_symtab_bytes(symtab))
        accountant.set_usage("global", "summaries", summary_cost)

        # Phase 1: register every pool, then retire it immediately --
        # the facts already hold everything the thin phases read, so
        # nothing keeps bodies expanded and the WPA working set stays
        # flat in the number of routine bodies.
        direct: Dict[str, object] = {}
        callees: Dict[str, List[str]] = {}
        for module in program.module_list():
            unit.symtab_handles[module.name] = loader.register_symtab(
                module.symtab
            )
            for routine in module.routine_list():
                handle = unit.add_routine(routine)
                facts = facts_by_name[routine.name]
                info = ModRefInfo()
                info.mod = set(facts.mod)
                info.ref = set(facts.ref)
                info.has_calls = facts.has_calls
                direct[routine.name] = info
                callees[routine.name] = facts.callees()
                ctx.views[routine.name] = facts.view
                loader.evict(handle)
            unit.symtab_handles[module.name].request_unload()
        ctx.modref = ModRefAnalysis.from_direct(direct, callees)
        accountant.mark("scanned")

        all_names = unit.routine_names()
        callgraph = thin_wpa.build_thin_callgraph(all_names, facts_by_name)
        accountant.set_usage("global", "callgraph", callgraph_bytes(callgraph))
        self._attach_view_weights(callgraph, ctx)
        tick = self._lap(timings, "wpa.callgraph", tick)

        if selected_routines is None:
            selected = set(all_names)
        else:
            selected = set(selected_routines) & set(all_names)

        # Phase 2: interprocedural constant facts (plan records the
        # entry bindings; the facts mutate the way the bodies would).
        plan = thin_wpa.WpaPlan()
        bound = thin_wpa.thin_publish_interprocedural_facts(
            ctx,
            all_names,
            facts_by_name,
            symtab.all_global_names(),
            frozenset(self.externally_callable),
            frozenset(self.externally_visible_globals),
            plan,
        )
        if incr is not None and bound:
            incr.record_ipcp_edges(bound, callgraph, unit.routine_module)
        accountant.mark("ipcp")
        tick = self._lap(timings, "wpa.ipcp", tick)

        # Phase 3: cloning (plan + placeholder handles + retargets).
        caller_order = [name for name in all_names if name in selected]
        decisions = thin_wpa.thin_plan_clones(ctx, caller_order, facts_by_name)
        clones = thin_wpa.thin_apply_clones(
            ctx, unit, program, decisions, facts_by_name, plan
        )
        if clones:
            callgraph = thin_wpa.build_thin_callgraph(
                unit.routine_names(), facts_by_name
            )
            self._attach_view_weights(callgraph, ctx)
            accountant.set_usage("global", "callgraph",
                                 callgraph_bytes(callgraph))
        accountant.mark("cloned")
        tick = self._lap(timings, "wpa.clone", tick)

        # Phase 4: the inline plan over thin bodies.
        bodies: Dict[str, thin_wpa.ThinBody] = {}

        def thin_resolve(name: str):
            body = bodies.get(name)
            if body is None:
                facts = facts_by_name.get(name)
                if facts is None:
                    return None
                body = thin_wpa.ThinBody(facts)
                bodies[name] = body
            return body

        engine = thin_wpa.ThinInlineEngine(
            ctx,
            callgraph,
            thin_resolve,
            has_profiles=self.profile_db is not None,
            plan=plan,
        )
        inline_order = sorted(selected | set(clones))
        inline_stats = engine.run(inline_order)
        accountant.mark("inlined")
        tick = self._lap(timings, "wpa.inline", tick)

        # Phase 4.5 (incremental only): thin reuse keys.  Evolution
        # hashes over (original body hash, bindings, retargets, ordered
        # splices) determine each post-replay body exactly; keys carry
        # a "thin|" prefix so the two modes can never share cache
        # entries across a --wpa-mode switch.
        reused_modules: Set[str] = set()
        if incr is not None:
            incr.record_inline_edges(inline_stats, unit.routine_module)
            orig_hashes: Dict[str, str] = {}
            for summary in incr.summaries.values():
                orig_hashes.update(summary.body_hashes)
            keys, consumed = thin_wpa.compute_thin_module_keys(
                unit,
                ctx,
                facts_by_name,
                orig_hashes,
                plan,
                selected,
                set(clones),
                incr.options_fp,
                SUMMARY_FORMAT,
            )
            incr.record_consumption(consumed, unit.routine_module, symtab)
            reused_modules = incr.decide_reuse(keys)
            accountant.mark("summarized")
            tick = self._lap(timings, "wpa.summarize", tick)

        result = HloResult(
            program=program,
            unit=unit,
            ctx=ctx,
            inline_stats=inline_stats,
            selected=selected,
            removed_functions=removed,
            clones=clones,
        )
        result.wpa_mode = "summary"
        result.plan = plan
        result.thin_facts = facts_by_name
        result.events = events
        result.peak_bytes = accountant.peak
        result.wpa_peak_bytes = accountant.peak
        result.reused_modules = reused_modules
        result.phase_seconds.update(timings)
        result.phase_seconds["wpa"] = time.perf_counter() - wpa_start
        return result

    def _replay_thin(self, result: HloResult) -> None:
        """Apply the recorded plan to real bodies (serial phase 5)."""
        from .thin import replay_plan

        unit = result.unit
        loader = unit.loader

        def resolve(name: str):
            return unit.routine(name)

        def adopt_clone(clone: Routine) -> None:
            unit.add_routine(clone)

        def pin(name: str) -> None:
            handle = unit.handle(name)
            if handle is not None:
                loader.pin(handle)

        def release(name: str) -> None:
            handle = unit.handle(name)
            if handle is not None:
                loader.unpin(handle)
                loader.reaccount(handle)
                handle.request_unload()

        replay_plan(
            result.plan,
            set(unit.routine_names()),
            resolve,
            result.ctx.views,
            self.options,
            adopt_clone,
            pin=pin,
            release=release,
            unload=unit.unload,
        )
        result._plan_replayed = True

    def run_scalar_phase(
        self, result: HloResult, materialize: bool = True
    ) -> None:
        """Phase 5: run the scalar pipeline over the worklist, serially.

        This is the reference (LTRANS) half of the phase split; the
        partitioned backend in :mod:`repro.part` must match its output
        byte for byte.
        """
        start = time.perf_counter()
        if result.plan is not None and not result._plan_replayed:
            # Summary-mode: materialize the WPA decisions onto the real
            # bodies before any scalar work touches them.
            self._replay_thin(result)
            result.phase_seconds["scalar.replay"] = (
                time.perf_counter() - start
            )
        unit = result.unit
        ctx = result.ctx
        loader = unit.loader
        pipeline = standard_pipeline()
        worklist = result.scalar_worklist()
        # Issue prefetch batches a window ahead of the routine being
        # optimized, so repository fetch + decode of offloaded pools
        # overlaps with scalar optimization instead of stalling it.
        depth = loader.config.repo_prefetch_depth
        if depth:
            loader.prefetch(
                handle for handle in (
                    unit.handle(ahead) for ahead in worklist[:depth]
                ) if handle is not None
            )
        for index, name in enumerate(worklist):
            if depth:
                loader.prefetch(
                    handle for handle in (
                        unit.handle(ahead)
                        for ahead in worklist[index + 1:index + 1 + depth]
                    ) if handle is not None
                )
            routine = unit.routine(name)
            if routine is None:
                continue
            handle = unit.handle(name)
            loader.pin(handle)
            pipeline.run_routine(routine, ctx)
            loader.unpin(handle)
            loader.reaccount(handle)
            handle.request_unload()
        loader.stop_prefetch()
        loader.accountant.mark("optimized")

        result.peak_bytes = loader.accountant.peak
        result.phase_seconds["scalar"] = time.perf_counter() - start
        if materialize:
            unit.materialize(result.program)

    # -- Helpers ---------------------------------------------------------------------

    def _initial_view(self, routine: Routine) -> ProfileView:
        if self.profile_db is not None:
            profile = correlate(self.profile_db, routine)
            if profile is not None and profile.block_counts:
                return ProfileView.from_profile(profile)
        return ProfileView.static_estimate(routine)

    def _attach_view_weights(self, callgraph: CallGraph, ctx: OptContext) -> None:
        """Weight every call site by its block's view count."""
        for node in callgraph.nodes.values():
            view = ctx.views.get(node.name)
            if view is None:
                continue
            for site in node.call_sites:
                site.weight = view.count(site.block_label)

    def _run_cloning(
        self,
        unit: CmoUnit,
        ctx: OptContext,
        program: Program,
        callgraph: CallGraph,
        selected: Set[str],
    ) -> List[str]:
        if not ctx.options.clone_enabled:
            return []

        def selected_callers() -> Iterator[Routine]:
            for name in unit.routine_names():
                if name in selected:
                    routine = unit.routine(name)
                    if routine is not None:
                        yield routine
                        unit.unload(name)

        decisions = plan_clones(ctx, selected_callers(), unit.routine)
        created: List[str] = []
        serial = 0
        for decision in decisions:
            if len(created) >= 64:
                break
            callee = unit.routine(decision.callee)
            if callee is None:
                continue
            module = program.modules.get(callee.module_name)
            if module is None:
                continue
            clone_name = "%s::cl%d" % (decision.callee, serial)
            serial += 1
            clone = make_clone(callee, decision.bindings, clone_name)
            # Register with program structures and the loader.
            symtab_obj = unit.symtab_handles[module.name].get()
            symtab_obj.add_routine(clone_name)
            ctx.symtab.define_routine(clone_name, module.name)
            unit.add_routine(clone)
            created.append(clone_name)
            ctx.stats.bump("clone")
            callee_view = ctx.views.get(decision.callee)
            if callee_view is not None:
                ctx.views[clone_name] = ProfileView(
                    clone_name,
                    block_counts=callee_view.block_counts,
                    edge_counts=callee_view.edge_counts,
                    is_static_estimate=callee_view.is_static_estimate,
                )
            # Clone's effects mirror the original's.
            if ctx.modref is not None:
                ctx.modref.info[clone_name] = ctx.modref.for_routine(
                    decision.callee
                )
            for caller_name, block_label, index in decision.sites:
                caller = unit.routine(caller_name)
                if caller is None:
                    continue
                call = caller.block(block_label).instrs[index]
                from ..ir.instructions import Opcode

                if call.op is Opcode.CALL and call.sym == decision.callee:
                    call.sym = clone_name
                    caller.invalidate()
        return created
