"""Compiler driver: user-facing options, builds, selectivity, make."""

from .build import BuildEngine, RebuildReport
from .compiler import (
    BuildResult,
    BuildTimings,
    Compiler,
    CompileSession,
    SessionBuildStats,
    train,
)
from .options import CompilerOptions
from .selectivity import SelectivityPlan, plan_selectivity

__all__ = [
    "BuildEngine",
    "RebuildReport",
    "BuildResult",
    "BuildTimings",
    "Compiler",
    "CompileSession",
    "SessionBuildStats",
    "train",
    "CompilerOptions",
    "SelectivityPlan",
    "plan_selectivity",
]
