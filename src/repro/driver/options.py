"""User-facing compiler options, mirroring the HP-UX flag set.

===========  =====================================================
HP-UX flag   Here
===========  =====================================================
+O0 .. +O2   ``opt_level`` 0-2 (intraprocedural ladder)
+O4          ``opt_level`` 4 (link-time CMO through HLO)
+P           ``pbo=True`` (use a profile database)
+I           ``instrument=True`` (build with counting probes)
(§5)         ``selectivity_percent`` (coarse-grained selectivity)
===========  =====================================================
"""

from __future__ import annotations

from typing import Optional

from ..hlo.options import HloOptions
from ..naim.config import NaimConfig
from ..vm.cost import CostModel

VALID_OPT_LEVELS = (0, 1, 2, 4)
VALID_HLO_BACKENDS = ("auto", "threads", "processes")
VALID_WPA_MODES = ("auto", "materialize", "summary")


class CompilerOptions:
    """Policy for one build."""

    def __init__(
        self,
        opt_level: int = 2,
        pbo: bool = False,
        instrument: bool = False,
        selectivity_percent: Optional[float] = None,
        naim: Optional[NaimConfig] = None,
        hlo: Optional[HloOptions] = None,
        cost_model: Optional[CostModel] = None,
        checked: bool = False,
        cmo_modules: Optional[frozenset] = None,
        repository_dir: Optional[str] = None,
        multi_layer: bool = False,
        hlo_jobs: int = 1,
        hlo_partitions: Optional[int] = None,
        hlo_backend: str = "auto",
        wpa_mode: str = "auto",
    ) -> None:
        if opt_level not in VALID_OPT_LEVELS:
            raise ValueError(
                "opt_level must be one of %r" % (VALID_OPT_LEVELS,)
            )
        if selectivity_percent is not None and not 0 <= selectivity_percent <= 100:
            raise ValueError("selectivity_percent must be within [0, 100]")
        if instrument and opt_level == 4:
            raise ValueError(
                "instrumented builds use intraprocedural levels (+O2 +I); "
                "profiles feed later +O4 builds"
            )
        self.opt_level = opt_level
        self.pbo = pbo
        self.instrument = instrument
        self.selectivity_percent = selectivity_percent
        self.naim = naim or NaimConfig()
        self.hlo = hlo or HloOptions()
        self.cost_model = cost_model or CostModel()
        self.checked = checked
        #: Explicit CMO module set (triage/bench override of selectivity).
        self.cmo_modules = frozenset(cmo_modules) if cmo_modules else None
        #: Directory for the NAIM disk repository (None = in-memory).
        self.repository_dir = repository_dir
        #: Paper §8 extension: tier non-CMO modules (warm +O2, cold +O1).
        self.multi_layer = multi_layer
        if hlo_jobs < 1:
            raise ValueError("hlo_jobs must be >= 1")
        if hlo_partitions is not None and hlo_partitions < 1:
            raise ValueError("hlo_partitions must be >= 1")
        #: Workers for the partitioned LTRANS backend (1 = the serial
        #: reference path).  Output is byte-identical either way, so
        #: neither knob enters :meth:`describe` (and hence no artifact
        #: or incremental fingerprint).
        self.hlo_jobs = hlo_jobs
        #: Partition count override (None = derived from ``hlo_jobs``).
        self.hlo_partitions = hlo_partitions
        if hlo_backend not in VALID_HLO_BACKENDS:
            raise ValueError(
                "hlo_backend must be one of %r" % (VALID_HLO_BACKENDS,)
            )
        #: Execution backend for LTRANS partitions: "threads" (the
        #: GIL-bound in-process pool), "processes" (real CPU
        #: parallelism via worker processes) or "auto" (processes
        #: whenever more than one effective worker would run and the
        #: platform supports it).  Like the two knobs above it never
        #: affects output bytes, so it stays out of :meth:`describe`.
        self.hlo_backend = hlo_backend
        if wpa_mode not in VALID_WPA_MODES:
            raise ValueError(
                "wpa_mode must be one of %r" % (VALID_WPA_MODES,)
            )
        #: Whole-program-analysis strategy: "summary" runs the thin
        #: WPA (decisions from routine summaries, bodies imported
        #: lazily per partition), "materialize" walks expanded bodies,
        #: "auto" resolves to "summary".  The two modes are
        #: byte-identical by construction, so -- like the parallelism
        #: knobs above -- this never enters :meth:`describe`.
        self.wpa_mode = wpa_mode

    @property
    def effective_wpa_mode(self) -> str:
        """The resolved WPA strategy ("auto" is "summary")."""
        return "summary" if self.wpa_mode == "auto" else self.wpa_mode

    @property
    def use_partitioned_hlo(self) -> bool:
        """Whether the link should run the partitioned LTRANS backend."""
        return self.hlo_jobs > 1 or self.hlo_partitions is not None

    @property
    def is_cmo(self) -> bool:
        return self.opt_level == 4

    @property
    def llo_level(self) -> int:
        """The LLO ladder level backing this opt level."""
        return min(self.opt_level, 2)

    def describe(self) -> str:
        parts = ["+O%d" % self.opt_level]
        if self.pbo:
            parts.append("+P")
        if self.instrument:
            parts.append("+I")
        if self.selectivity_percent is not None:
            parts.append("sel=%.0f%%" % self.selectivity_percent)
        return " ".join(parts)

    def __repr__(self) -> str:
        return "<CompilerOptions %s>" % self.describe()
