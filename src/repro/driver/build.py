"""Make-compatible incremental builds (paper §6.1).

"Our system works with existing processes by maintaining all persistent
information (save for profile data) in object files, and rebuilding
program-wide information at optimization time."

The :class:`BuildEngine` is that process: it tracks source fingerprints
-> object files exactly like make tracks mtimes, recompiles only
changed modules, and relinks.  Under +O4 the objects are fat IL
objects, so editing one module reuses every other module's frontend
work while HLO re-optimizes the whole program at link time -- the
trade-off the paper explicitly chose over a persistent program
database ("the disadvantage is that no persistent program library is
available to minimize re-compilation").
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from ..linker.objects import ObjectFile
from ..profiles.database import ProfileDatabase
from .compiler import BuildResult, Compiler
from .options import CompilerOptions


class RebuildReport:
    """Which modules were recompiled vs reused on one build."""

    def __init__(self) -> None:
        self.recompiled: List[str] = []
        self.reused: List[str] = []
        self.removed: List[str] = []

    def __repr__(self) -> str:
        return "<RebuildReport recompiled=%r reused=%d removed=%r>" % (
            self.recompiled,
            len(self.reused),
            self.removed,
        )


class BuildEngine:
    """Incremental source -> object -> executable builds.

    ``object_dir=None`` keeps objects in memory; a directory persists
    them as ``.o`` files across engine instances (a real make-style
    workspace).
    """

    def __init__(
        self,
        options: Optional[CompilerOptions] = None,
        object_dir: Optional[str] = None,
    ) -> None:
        self.compiler = Compiler(options or CompilerOptions(opt_level=4))
        self.object_dir = object_dir
        #: module name -> (fingerprint, object).
        self._cache: Dict[str, Tuple[str, ObjectFile]] = {}
        if object_dir is not None:
            os.makedirs(object_dir, exist_ok=True)
            self._load_object_dir()

    # -- Object persistence ------------------------------------------------------

    def _object_path(self, module_name: str) -> str:
        assert self.object_dir is not None
        return os.path.join(self.object_dir, module_name + ".o")

    def _load_object_dir(self) -> None:
        assert self.object_dir is not None
        for entry in sorted(os.listdir(self.object_dir)):
            if not entry.endswith(".o"):
                continue
            path = os.path.join(self.object_dir, entry)
            with open(path, "rb") as handle:
                obj = ObjectFile.from_bytes(handle.read())
            self._cache[obj.module_name] = (obj.source_fingerprint, obj)

    def _store(self, obj: ObjectFile) -> None:
        self._cache[obj.module_name] = (obj.source_fingerprint, obj)
        if self.object_dir is not None:
            with open(self._object_path(obj.module_name), "wb") as handle:
                handle.write(obj.to_bytes())

    def _drop(self, module_name: str) -> None:
        self._cache.pop(module_name, None)
        if self.object_dir is not None:
            path = self._object_path(module_name)
            if os.path.exists(path):
                os.unlink(path)

    # -- Building ------------------------------------------------------------------

    def build(
        self,
        sources: Dict[str, str],
        profile_db: Optional[ProfileDatabase] = None,
    ) -> Tuple[BuildResult, RebuildReport]:
        """Recompile what changed, relink, return both artifacts."""
        report = RebuildReport()

        for stale in [name for name in self._cache if name not in sources]:
            self._drop(stale)
            report.removed.append(stale)

        objects: List[ObjectFile] = []
        for name, text in sources.items():
            fingerprint = ObjectFile.fingerprint(text)
            cached = self._cache.get(name)
            if cached is not None and cached[0] == fingerprint:
                objects.append(cached[1])
                report.reused.append(name)
                continue
            module = self.compiler.frontend(name, text)
            obj = self.compiler.compile_object(
                module, profile_db, fingerprint=fingerprint
            )
            self._store(obj)
            objects.append(obj)
            report.recompiled.append(name)

        result = self.compiler.link(objects, profile_db)
        return result, report
