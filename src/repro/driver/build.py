"""Make-compatible incremental builds (paper §6.1).

"Our system works with existing processes by maintaining all persistent
information (save for profile data) in object files, and rebuilding
program-wide information at optimization time."

The :class:`BuildEngine` is that process: it tracks source fingerprints
-> object files exactly like make tracks mtimes, recompiles only
changed modules, and relinks.  Under +O4 the objects are fat IL
objects, so editing one module reuses every other module's frontend
work while HLO re-optimizes the whole program at link time -- the
trade-off the paper explicitly chose over a persistent program
database ("the disadvantage is that no persistent program library is
available to minimize re-compilation").

Builds are scheduled through :mod:`repro.sched`: per-module compile
tasks form a DAG feeding one link task, dispatched on ``jobs`` workers
(serial at ``jobs=1``, byte-identical output either way).  A shared
:class:`~repro.sched.ArtifactCache` memoizes compiled objects by
content -- ``hash(module, language, options, source)`` -- across
engine instances, generalizing the per-engine fingerprint dict, and
every task emits trace events into the engine's
:class:`~repro.sched.EventLog`.
"""

from __future__ import annotations

import os
import warnings
from typing import Dict, List, Optional, Tuple

from ..linker.objects import ObjectFile
from ..naim.memory import MemoryAccountant
from ..profiles.database import ProfileDatabase
from ..sched.artifacts import ArtifactCache
from ..sched.events import EventLog
from ..sched.executor import Executor, TaskError
from ..sched.graph import TaskGraph
from .compiler import BuildResult, Compiler
from .options import CompilerOptions


class RebuildReport:
    """Which modules were recompiled vs reused on one build.

    ``recompiled``/``reused``/``removed`` track the make-level object
    step (frontend + fat-object emission).  Under incremental CMO the
    ``cmo_*`` fields additionally track the link-time optimization
    step: which CMO modules re-ran the scalar pipeline + codegen vs
    splicing cached machine code, and which the dependency graph
    predicted would be dirty.
    """

    def __init__(self) -> None:
        self.recompiled: List[str] = []
        self.reused: List[str] = []
        self.removed: List[str] = []
        self.cmo_reused: List[str] = []
        self.cmo_reoptimized: List[str] = []
        self.cmo_predicted_dirty: List[str] = []

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RebuildReport):
            return NotImplemented
        return (self.recompiled == other.recompiled
                and self.reused == other.reused
                and self.removed == other.removed
                and self.cmo_reused == other.cmo_reused
                and self.cmo_reoptimized == other.cmo_reoptimized)

    def __repr__(self) -> str:
        text = "<RebuildReport recompiled=%d %r reused=%d %r removed=%d %r" % (
            len(self.recompiled), self.recompiled,
            len(self.reused), self.reused,
            len(self.removed), self.removed,
        )
        if self.cmo_reused or self.cmo_reoptimized:
            text += " cmo_reused=%d cmo_reoptimized=%d" % (
                len(self.cmo_reused), len(self.cmo_reoptimized)
            )
        return text + ">"


class BuildError(TaskError):
    """A build failed; every module's diagnostic is collected.

    ``failures`` maps task id (``compile:<module>``) to the exception;
    ``cancelled`` lists tasks skipped because a dependency failed (the
    link, for a compile failure); ``report`` records what the healthy
    modules did before the failure surfaced.
    """

    def __init__(self, failures, cancelled, report: RebuildReport) -> None:
        super().__init__(failures, cancelled)
        self.report = report


class BuildEngine:
    """Incremental source -> object -> executable builds.

    ``object_dir=None`` keeps objects in memory; a directory persists
    them as ``.o`` files across engine instances (a real make-style
    workspace).  ``jobs`` sets the compile-task worker count (or pass
    a preconfigured ``scheduler``); ``artifact_cache`` plugs in a
    shared content-addressed object store.

    ``incremental=True`` turns on summary-based incremental CMO: the
    link records per-module summaries, dependency edges and codegen
    blobs in an :class:`~repro.incr.IncrementalState`, so editing one
    module re-optimizes only the modules whose consumed cross-module
    facts changed -- byte-identical to a clean build.  ``state_dir``
    persists that state (plus objects, unless ``object_dir`` is given)
    across processes; without it the state lives in memory for the
    engine's lifetime.
    """

    def __init__(
        self,
        options: Optional[CompilerOptions] = None,
        object_dir: Optional[str] = None,
        jobs: int = 1,
        artifact_cache: Optional[ArtifactCache] = None,
        scheduler: Optional[Executor] = None,
        events: Optional[EventLog] = None,
        incremental: bool = False,
        state_dir: Optional[str] = None,
    ) -> None:
        if state_dir is not None:
            os.makedirs(state_dir, exist_ok=True)
            if object_dir is None:
                object_dir = os.path.join(state_dir, "objects")
        self.compiler = Compiler(options or CompilerOptions(opt_level=4))
        self.object_dir = object_dir
        self.artifact_cache = artifact_cache
        self.incr_state = None
        if incremental or state_dir is not None:
            from ..incr.state import IncrementalState

            self.incr_state = IncrementalState(
                directory=os.path.join(state_dir, "incr-cmo")
                if state_dir is not None else None
            )
        if scheduler is not None:
            self.scheduler = scheduler
        else:
            self.scheduler = Executor(jobs=jobs, events=events)
        self.events = self.scheduler.events
        #: module name -> (fingerprint, object).
        self._cache: Dict[str, Tuple[str, ObjectFile]] = {}
        if object_dir is not None:
            os.makedirs(object_dir, exist_ok=True)
            self._load_object_dir()

    # -- Object persistence ------------------------------------------------------

    def _object_path(self, module_name: str) -> str:
        assert self.object_dir is not None
        return os.path.join(self.object_dir, module_name + ".o")

    def _load_object_dir(self) -> None:
        assert self.object_dir is not None
        for entry in sorted(os.listdir(self.object_dir)):
            if not entry.endswith(".o"):
                continue
            path = os.path.join(self.object_dir, entry)
            try:
                with open(path, "rb") as handle:
                    obj = ObjectFile.from_bytes(handle.read())
            except Exception as exc:
                # Corrupt or truncated object: recompile instead of
                # taking the whole workspace down.
                warnings.warn(
                    "skipping unreadable object %s (%s: %s)"
                    % (path, type(exc).__name__, exc)
                )
                continue
            self._cache[obj.module_name] = (obj.source_fingerprint, obj)

    def _store(self, obj: ObjectFile) -> None:
        self._cache[obj.module_name] = (obj.source_fingerprint, obj)
        if self.object_dir is not None:
            with open(self._object_path(obj.module_name), "wb") as handle:
                handle.write(obj.to_bytes())

    def _drop(self, module_name: str) -> None:
        self._cache.pop(module_name, None)
        if self.object_dir is not None:
            path = self._object_path(module_name)
            if os.path.exists(path):
                os.unlink(path)

    # -- Compile tasks -----------------------------------------------------------

    def _artifact_key(self, name: str, text: str) -> str:
        return ArtifactCache.key(
            text,
            language="auto",
            options=self.compiler.options.describe(),
            module=name,
        )

    def _compile_module(
        self,
        name: str,
        text: str,
        profile_db: Optional[ProfileDatabase],
    ) -> Tuple[ObjectFile, str, Optional[MemoryAccountant], object]:
        """Produce ``name``'s object, via caches when possible.

        Returns ``(object, how, accountant, llo_stats)`` where ``how``
        is "reused" (fingerprint match), "cache" (artifact-cache hit)
        or "recompiled".
        """
        fingerprint = ObjectFile.fingerprint(text)
        cached = self._cache.get(name)
        if cached is not None and cached[0] == fingerprint:
            return cached[1], "reused", None, None

        art_key = None
        if self.artifact_cache is not None:
            art_key = self._artifact_key(name, text)
            data = self.artifact_cache.get(art_key)
            if data is not None:
                try:
                    obj = ObjectFile.from_bytes(data)
                except Exception:
                    obj = None  # corrupt artifact: fall through, recompile
                if obj is not None and obj.module_name == name and (
                    obj.source_fingerprint == fingerprint
                ):
                    self.events.instant("cache_hit:%s" % name,
                                        category="cache")
                    self._store(obj)
                    return obj, "cache", None, None

        module = self.compiler.frontend(name, text)
        accountant = MemoryAccountant()
        obj, llo_stats = self.compiler.compile_object_with_stats(
            module, profile_db, fingerprint=fingerprint,
            accountant=accountant,
        )
        self._store(obj)
        if art_key is not None:
            self.artifact_cache.put(art_key, obj.to_bytes())
        return obj, "recompiled", accountant, llo_stats

    # -- Building ------------------------------------------------------------------

    def build(
        self,
        sources: Dict[str, str],
        profile_db: Optional[ProfileDatabase] = None,
        selectivity_percent: Optional[float] = None,
    ) -> Tuple[BuildResult, RebuildReport]:
        """Recompile what changed, relink, return both artifacts.

        Raises :class:`BuildError` if any module fails to compile; all
        sibling modules still run first, so the error carries every
        module's diagnostic, not just the first.

        Counters on state that outlives one build (the incremental
        repository) are zeroed here, so two builds in one process each
        report their own numbers instead of a running total.
        """
        if self.incr_state is not None:
            self.incr_state.reset_counters()
        report = RebuildReport()

        for stale in [name for name in self._cache if name not in sources]:
            self._drop(stale)
            report.removed.append(stale)

        graph = TaskGraph()
        compile_ids = []
        for name, text in sources.items():
            task_id = "compile:%s" % name

            def run(_inputs, name=name, text=text):
                return self._compile_module(name, text, profile_db)

            graph.add(task_id, run, category="compile")
            compile_ids.append(task_id)

        def link(inputs):
            objects = [inputs[task_id][0] for task_id in compile_ids]
            return self.compiler.link(objects, profile_db,
                                      incr_state=self.incr_state,
                                      events=self.events,
                                      selectivity_percent=selectivity_percent)

        graph.add("link", link, deps=compile_ids, category="link")
        outcome = self.scheduler.run(graph)

        # Report in source order, independent of completion order.
        for name in sources:
            compiled = outcome.results.get("compile:%s" % name)
            if compiled is None:
                continue
            how = compiled[1]
            if how == "recompiled":
                report.recompiled.append(name)
            else:
                report.reused.append(name)

        if not outcome.ok:
            raise BuildError(outcome.failures, outcome.cancelled, report)

        result: BuildResult = outcome.results["link"]
        if result.incr_report is not None:
            report.cmo_reused = list(result.incr_report.reused)
            report.cmo_reoptimized = list(result.incr_report.reoptimized)
            report.cmo_predicted_dirty = list(
                result.incr_report.predicted_dirty
            )
        # Fold per-worker codegen stats into the linked result.
        for name in sources:
            _obj, _how, accountant, llo_stats = (
                outcome.results["compile:%s" % name]
            )
            if accountant is not None:
                result.accountant.merge(accountant)
            if llo_stats is not None:
                if result.llo_stats is None:
                    result.llo_stats = llo_stats
                else:
                    result.llo_stats.merge(llo_stats)
        return result, report
