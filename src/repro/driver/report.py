"""Build-report assembly and rendering.

The CLI and the build daemon must print the same thing for the same
build: ``python -m repro.driver build --daemon`` is only transparent
if its output is indistinguishable from the in-process path.  Both
paths therefore reduce a finished build to one JSON-safe *summary*
dict -- locally from the :class:`~repro.driver.compiler.BuildResult`,
remotely assembled by the daemon and shipped over the wire -- and
render it through :func:`render_build_summary`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..naim.memory import fmt_bytes
from ..sched.events import EventLog
from .compiler import BuildResult
from .options import CompilerOptions


def build_summary(
    options: CompilerOptions,
    n_modules: int,
    build: BuildResult,
    report=None,
    events: Optional[EventLog] = None,
    jobs: int = 1,
    incremental: bool = False,
) -> Dict[str, object]:
    """Reduce one finished build to a JSON-safe summary dict."""
    summary: Dict[str, object] = {
        "describe": options.describe(),
        "n_modules": n_modules,
        "source_lines": build.source_lines,
        "code_size": build.executable.code_size() if build.executable else 0,
        "total_seconds": build.timings.total(),
        "jobs": jobs,
        "incremental": incremental,
        "n_spans": len(events.spans()) if events is not None else 0,
        "hlo_jobs": options.hlo_jobs,
        "use_partitioned_hlo": options.use_partitioned_hlo,
        "n_ltrans_spans": (
            len(events.spans("ltrans")) if events is not None else 0
        ),
        "interface_problems": list(build.interface_problems),
    }
    if build.ltrans_stats is not None:
        summary["hlo_backend"] = build.ltrans_stats.get("backend")
        summary["hlo_effective_jobs"] = build.ltrans_stats.get(
            "effective_jobs"
        )
    if report is not None:
        summary["recompiled"] = len(report.recompiled)
        summary["reused"] = len(report.reused)
    if build.incr_report is not None:
        summary["cmo_reused"] = len(build.incr_report.reused)
        summary["cmo_reoptimized"] = len(build.incr_report.reoptimized)
        summary["cmo_changed"] = list(build.incr_report.changed_modules)
    if build.plan is not None and options.selectivity_percent is not None:
        summary["plan"] = str(build.plan)
    if build.hlo_result is not None:
        summary["hlo_inline_stats"] = str(build.hlo_result.inline_stats)
        summary["hlo_peak_bytes"] = build.hlo_result.peak_bytes
        summary["wpa_mode"] = build.hlo_result.wpa_mode
        summary["wpa_peak_bytes"] = build.hlo_result.wpa_peak_bytes
        summary["wpa_phase_seconds"] = {
            key: value
            for key, value in build.hlo_result.phase_seconds.items()
            if key.startswith("wpa")
        }
    return summary


def render_build_summary(
    summary: Dict[str, object]
) -> Tuple[List[str], List[str]]:
    """Summary dict -> (stdout lines, stderr lines).

    The exact line shapes the CLI has always printed; the daemon
    client renders the identical text from the shipped dict.
    """
    out: List[str] = []
    err: List[str] = []
    out.append(
        "build %s: %d modules, %d lines -> %d machine instrs (%.2fs)"
        % (summary["describe"], summary["n_modules"],
           summary["source_lines"], summary["code_size"],
           summary["total_seconds"])
    )
    if summary.get("incremental"):
        out.append("incremental: %d objects recompiled, %d reused"
                   % (summary.get("recompiled", 0),
                      summary.get("reused", 0)))
        if "cmo_reused" in summary:
            out.append(
                "incremental cmo: %d modules reused, %d reoptimized "
                "(changed: %s)"
                % (summary["cmo_reused"], summary["cmo_reoptimized"],
                   ", ".join(summary.get("cmo_changed", [])) or "-")
            )
    if summary.get("jobs", 1) > 1:
        out.append("jobs: %d workers, %d tasks"
                   % (summary["jobs"], summary["n_spans"]))
    if summary.get("use_partitioned_hlo"):
        line = ("hlo-jobs: %d workers, %d partitions"
                % (summary["hlo_jobs"], summary["n_ltrans_spans"]))
        if summary.get("hlo_backend"):
            line += " (%s backend)" % summary["hlo_backend"]
        out.append(line)
    for problem in summary.get("interface_problems", []):
        err.append("warning: interface mismatch: %s" % problem)
    if "plan" in summary:
        out.append("selectivity: %s" % summary["plan"])
    if "hlo_inline_stats" in summary:
        out.append("hlo: %s, peak memory %s"
                   % (summary["hlo_inline_stats"],
                      fmt_bytes(summary["hlo_peak_bytes"])))
    return out, err
