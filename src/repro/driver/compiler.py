"""The compiler driver: frontend -> objects -> link -> executable.

Mirrors the HP-UX pipeline (paper Figure 2): frontends emit IL; at
+O0/+O1/+O2 modules go straight through LLO into code objects; at +O4
the frontend dumps IL into fat objects and the *linker* routes them
through HLO (with NAIM and selectivity) before code generation and
final layout.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

from ..frontend import compile_source, detect_language
from ..hlo.driver import HighLevelOptimizer, HloResult
from ..hlo.profile_view import ProfileView
from ..ir.module import Module
from ..ir.program import ENTRY_NAME, Program
from ..ir.routine import Routine
from ..ir.symbols import GlobalVar
from ..linker.clustering import cluster_routines
from ..linker.link import build_image, check_interfaces
from ..linker.objects import KIND_IL, LinkError, ObjectFile
from ..llo.driver import LloOptions, LloStats, LowLevelOptimizer
from ..naim.memory import MemoryAccountant
from ..naim.repository import Repository
from ..sched.events import EventLog
from ..sched.executor import Executor
from ..sched.graph import TaskGraph
from ..profiles.correlate import correlate
from ..profiles.database import ProfileDatabase
from ..profiles.probes import ProbeTable, instrument_program
from ..vm.image import Executable, MachineRoutine
from ..vm.machine import MachineResult, run_image
from .options import CompilerOptions
from .selectivity import SelectivityPlan, plan_selectivity

Sources = Union[Dict[str, str], Sequence[Module]]


class BuildTimings:
    """Wall-clock seconds per build phase."""

    def __init__(self) -> None:
        self.phases: Dict[str, float] = {}

    def add(self, phase: str, seconds: float) -> None:
        self.phases[phase] = self.phases.get(phase, 0.0) + seconds

    def total(self) -> float:
        return sum(self.phases.values())

    def __repr__(self) -> str:
        inner = ", ".join(
            "%s=%.3fs" % (name, secs) for name, secs in self.phases.items()
        )
        return "<BuildTimings %s>" % inner


class _Timer:
    def __init__(self, timings: BuildTimings, phase: str) -> None:
        self.timings = timings
        self.phase = phase

    def __enter__(self) -> "_Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *_exc) -> None:
        self.timings.add(self.phase, time.perf_counter() - self.start)


class BuildResult:
    """Everything a build produces."""

    def __init__(self) -> None:
        self.executable: Optional[Executable] = None
        self.objects: List[ObjectFile] = []
        self.probe_table: Optional[ProbeTable] = None
        self.hlo_result: Optional[HloResult] = None
        self.llo_stats: Optional[LloStats] = None
        self.accountant = MemoryAccountant()
        self.timings = BuildTimings()
        self.plan: Optional[SelectivityPlan] = None
        self.interface_problems: List[str] = []
        self.source_lines = 0
        self.options_used = ""
        #: Incremental-CMO outcome (an :class:`repro.incr.IncrLinkReport`)
        #: when the link ran with an IncrementalState; None otherwise.
        self.incr_report = None
        #: CMO modules whose codegen came from the incremental cache.
        self.cmo_reused_modules: List[str] = []
        #: CMO modules re-optimized (scalar pipeline + LLO) this link.
        self.cmo_reoptimized_modules: List[str] = []
        #: Partitioned-LTRANS execution facts (backend, effective
        #: worker count, spawn cost, blob size) when the link ran the
        #: partitioned backend; None otherwise.  Purely observational
        #: -- image bytes are identical across backends.
        self.ltrans_stats: Optional[Dict[str, object]] = None

    def run(self, inputs=None, cost_model=None,
            max_instructions: int = 200_000_000) -> MachineResult:
        """Execute the built image on the VM."""
        assert self.executable is not None
        return run_image(self.executable, inputs, cost_model,
                         max_instructions=max_instructions)

    def __repr__(self) -> str:
        code = self.executable.code_size() if self.executable else 0
        return "<BuildResult %s (%d instrs, %.2fs)>" % (
            self.options_used,
            code,
            self.timings.total(),
        )


class Compiler:
    """One configured compiler instance."""

    def __init__(self, options: Optional[CompilerOptions] = None) -> None:
        self.options = options or CompilerOptions()
        #: When set (by the farm coordinator), partitioned LTRANS runs
        #: are offered to this dispatcher instead of local threads; it
        #: must answer ``ready()`` and ``runner(hlo_result,
        #: llo_options, naim_config, jobs, events)``.  Builds fall
        #: back to the in-process runner whenever it is absent or has
        #: no workers, so a farm with zero workers still serves
        #: (locally executed) builds.
        self.partition_dispatcher = None
        #: When set (by the daemon's warm state), the process LTRANS
        #: backend runs its partition batches on this persistent
        #: :class:`~repro.sched.procpool.ProcessWorkerPool` instead of
        #: spawning an ephemeral pool per build.
        self.process_pool = None

    # -- Frontend --------------------------------------------------------------

    def frontend(self, name: str, source: str,
                 language: str = "auto") -> Module:
        """Compile one source file to an IL module.

        ``language``: "mll", "mfl" or "auto" (detected from the text).
        """
        if language == "auto":
            language = detect_language(source)
        return compile_source(source, name, language)

    # -- Separate compilation ------------------------------------------------------

    def compile_object(
        self,
        module: Module,
        profile_db: Optional[ProfileDatabase] = None,
        fingerprint: str = "",
    ) -> ObjectFile:
        """Compile one module to an object file (the `cc -c` step)."""
        obj, _stats = self.compile_object_with_stats(
            module, profile_db, fingerprint=fingerprint
        )
        return obj

    def compile_object_with_stats(
        self,
        module: Module,
        profile_db: Optional[ProfileDatabase] = None,
        fingerprint: str = "",
        accountant: Optional[MemoryAccountant] = None,
    ):
        """:meth:`compile_object`, also returning the codegen stats.

        The scheduler's per-module compile tasks run with a private
        ``accountant`` each; the driver merges them afterwards in
        source order, so parallel builds report the same numbers as
        serial ones.
        """
        if self.options.is_cmo:
            # Fat object: IL dumped directly (paper §3).
            return ObjectFile.from_il_module(module, fingerprint), None
        machines, stats = self._codegen_module(module, profile_db, accountant)
        obj = ObjectFile.from_machine_routines(
            module,
            machines,
            source_fingerprint=fingerprint,
            opt_summary=self.options.describe(),
        )
        return obj, stats

    def _codegen_module(
        self,
        module: Module,
        profile_db: Optional[ProfileDatabase],
        accountant: Optional[MemoryAccountant],
    ):
        llo = LowLevelOptimizer(
            LloOptions(
                self.options.llo_level,
                use_profile=self.options.pbo and profile_db is not None,
            ),
            accountant,
        )
        machines = []
        for routine in module.routine_list():
            machines.append(
                llo.compile_routine(routine, self._view_for(routine, profile_db))
            )
        return machines, llo.stats

    def _view_for(
        self, routine: Routine, profile_db: Optional[ProfileDatabase]
    ) -> Optional[ProfileView]:
        if not self.options.pbo or profile_db is None:
            return None
        profile = correlate(profile_db, routine)
        if profile is None or not profile.block_counts:
            return None
        return ProfileView.from_profile(profile)

    # -- Whole builds --------------------------------------------------------------

    def build(
        self,
        sources: Sources,
        profile_db: Optional[ProfileDatabase] = None,
        jobs: int = 1,
        events: Optional[EventLog] = None,
        scheduler: Optional[Executor] = None,
        selectivity_percent: Optional[float] = None,
    ) -> BuildResult:
        """Frontend + compile + link in one call.

        Per-module frontend and codegen tasks are dispatched through a
        :class:`~repro.sched.TaskGraph` on ``jobs`` workers (or a
        caller-supplied ``scheduler``); the link stays serial.  Output
        is byte-identical for every ``jobs`` value.  ``events``
        collects start/finish/error spans for every task, exportable
        as a Chrome trace.
        """
        result = BuildResult()
        result.options_used = self.options.describe()
        executor = scheduler if scheduler is not None else (
            Executor(jobs=jobs, events=events)
        )

        graph = TaskGraph()
        if isinstance(sources, dict):
            names = list(sources)
            for name, text in sources.items():

                def run_frontend(_inputs, name=name, text=text):
                    start = time.perf_counter()
                    module = self.frontend(name, text)
                    return module, time.perf_counter() - start

                graph.add("frontend:%s" % name, run_frontend,
                          category="frontend")
        else:
            modules_in = list(sources)
            names = [module.name for module in modules_in]
            for module in modules_in:

                def run_premade(_inputs, module=module):
                    return module, 0.0

                graph.add("frontend:%s" % module.name, run_premade,
                          category="frontend")

        instrument = self.options.instrument
        if not instrument:
            for name in names:

                def run_compile(inputs, name=name):
                    module, _secs = inputs["frontend:%s" % name]
                    start = time.perf_counter()
                    accountant = MemoryAccountant()
                    obj, stats = self.compile_object_with_stats(
                        module, profile_db,
                        fingerprint=ObjectFile.fingerprint(module.name),
                        accountant=accountant,
                    )
                    return (obj, time.perf_counter() - start,
                            accountant, stats)

                graph.add("compile:%s" % name, run_compile,
                          deps=["frontend:%s" % name], category="compile")

        outcome = executor.run(graph)
        if not outcome.ok:
            outcome.raise_first()

        modules = []
        frontend_seconds = 0.0
        for name in names:
            module, seconds = outcome.results["frontend:%s" % name]
            modules.append(module)
            frontend_seconds += seconds
        result.timings.add("frontend", frontend_seconds)
        result.source_lines = sum(m.source_lines for m in modules)

        if instrument:
            self._build_instrumented(modules, result)
            return result

        objects = []
        compile_seconds = 0.0
        for name in names:
            obj, seconds, accountant, stats = (
                outcome.results["compile:%s" % name]
            )
            objects.append(obj)
            compile_seconds += seconds
            result.accountant.merge(accountant)
            if stats is not None:
                if result.llo_stats is None:
                    result.llo_stats = stats
                else:
                    result.llo_stats.merge(stats)
        result.timings.add("compile", compile_seconds)
        result.objects = objects
        with executor.events.span("link", "link"):
            self.link_into(objects, profile_db, result,
                           events=executor.events,
                           selectivity_percent=selectivity_percent)
        return result

    def link(
        self,
        objects: List[ObjectFile],
        profile_db: Optional[ProfileDatabase] = None,
        incr_state=None,
        events: Optional[EventLog] = None,
        selectivity_percent: Optional[float] = None,
    ) -> BuildResult:
        """Link previously compiled objects (the `ld` step).

        ``incr_state`` (an :class:`repro.incr.IncrementalState`)
        enables summary-based incremental CMO: modules whose consumed
        cross-module facts are unchanged reuse cached codegen, with
        byte-identical output.
        """
        result = BuildResult()
        result.options_used = self.options.describe()
        result.objects = list(objects)
        result.source_lines = sum(o.source_lines for o in objects)
        self.link_into(objects, profile_db, result, incr_state=incr_state,
                       events=events,
                       selectivity_percent=selectivity_percent)
        return result

    # -- The link pipeline -------------------------------------------------------------

    def link_into(
        self,
        objects: List[ObjectFile],
        profile_db: Optional[ProfileDatabase],
        result: BuildResult,
        incr_state=None,
        events: Optional[EventLog] = None,
        selectivity_percent: Optional[float] = None,
    ) -> None:
        options = self.options
        accountant = result.accountant
        use_db = profile_db if options.pbo else None
        # Per-build override: the daemon's selectivity controller moves the
        # threshold between builds of one warm session without perturbing
        # the session's options (and hence its identity and caches).
        if selectivity_percent is None:
            selectivity_percent = options.selectivity_percent

        il_objects = [o for o in objects if o.kind == KIND_IL]
        code_objects = [o for o in objects if o.kind != KIND_IL]

        machine_routines: List[MachineRoutine] = []
        for obj in code_objects:
            machine_routines.extend(obj.machine_routines)
        global_vars: List[GlobalVar] = []
        for obj in objects:
            global_vars.extend(var.copy() for var in obj.defined_globals())

        if il_objects:
            # Work on copies: objects must survive relinking unchanged.
            il_modules = [obj.il_module.copy() for obj in il_objects]

            with _Timer(result.timings, "interface_check"):
                il_program = Program(il_modules)
                result.interface_problems = check_interfaces(il_program)
                if result.interface_problems and options.checked:
                    raise LinkError(
                        "interface mismatches: %s"
                        % "; ".join(result.interface_problems[:5])
                    )

            with _Timer(result.timings, "selectivity"):
                result.plan = plan_selectivity(
                    selectivity_percent if use_db else None,
                    il_modules,
                    use_db,
                    multi_layer=options.multi_layer,
                )
            if not options.is_cmo:
                cmo_set = set()
            elif options.cmo_modules is not None:
                cmo_set = {m.name for m in il_modules} & options.cmo_modules
            else:
                cmo_set = set(result.plan.cmo_modules)
            cmo_modules = [m for m in il_modules if m.name in cmo_set]
            plain_modules = [m for m in il_modules if m.name not in cmo_set]

            if options.is_cmo and cmo_modules:
                machine_routines.extend(
                    self._link_time_cmo(
                        cmo_modules,
                        plain_modules,
                        code_objects,
                        use_db,
                        result,
                        incr_state=incr_state,
                        events=events,
                        selectivity_percent=selectivity_percent,
                    )
                )

            # Non-CMO IL modules: default optimization (+O2) with PBO;
            # in multi-layer mode, never-executed modules drop to +O1
            # (paper §8: "code that is executed little or not at all may
            # not be optimized at all").
            with _Timer(result.timings, "codegen_plain"):
                default_level = 2 if options.is_cmo else options.llo_level
                llo_by_level = {}

                def llo_for(level: int) -> LowLevelOptimizer:
                    if level not in llo_by_level:
                        llo_by_level[level] = LowLevelOptimizer(
                            LloOptions(level, use_profile=use_db is not None),
                            accountant,
                        )
                    return llo_by_level[level]

                layer_of = result.plan.layer_of if result.plan else {}
                for module in plain_modules:
                    level = default_level
                    if options.multi_layer and (
                        layer_of.get(module.name) == "cold"
                    ):
                        level = 1
                    llo = llo_for(level)
                    for routine in module.routine_list():
                        machine_routines.append(
                            llo.compile_routine(
                                routine, self._view_for(routine, use_db)
                            )
                        )
                for llo in llo_by_level.values():
                    if result.llo_stats is None:
                        result.llo_stats = llo.stats
                    else:
                        result.llo_stats.merge(llo.stats)

        # Drop globals defined by routines that no longer exist?  No:
        # globals live independently of routine liveness.

        with _Timer(result.timings, "layout"):
            layout_order = None
            if use_db is not None:
                weights: Dict[tuple, int] = {}
                for name, profile in use_db.routines.items():
                    for (block, idx, callee), count in (
                        profile.call_counts.items()
                    ):
                        key = (name, callee)
                        weights[key] = weights.get(key, 0) + count
                layout_order = cluster_routines(
                    [routine.name for routine in machine_routines],
                    weights,
                    entry=ENTRY_NAME,
                )

        with _Timer(result.timings, "link"):
            result.executable = build_image(
                machine_routines,
                global_vars,
                layout_order=layout_order,
                probe_table=result.probe_table,
            )

    def _link_time_cmo(
        self,
        cmo_modules: List[Module],
        plain_modules: List[Module],
        code_objects: List[ObjectFile],
        profile_db: Optional[ProfileDatabase],
        result: BuildResult,
        incr_state=None,
        events: Optional[EventLog] = None,
        selectivity_percent: Optional[float] = None,
    ) -> List[MachineRoutine]:
        """Route the CMO module set through HLO, then LLO each routine.

        With ``incr_state``, module summaries are fingerprinted before
        HLO, consumption is recorded during it, and codegen splices
        cached machine routines (in unit order, so layout is
        unchanged) for every module whose reuse key hit.

        With ``hlo_jobs > 1`` (or an explicit ``hlo_partitions``), the
        scalar pipeline + codegen run on the partitioned LTRANS
        backend (:mod:`repro.part`); the serial WPA phases and the
        splice order are unchanged, so output bytes are identical.
        """
        options = self.options
        accountant = result.accountant
        partitioned = options.use_partitioned_hlo

        incr_session = None
        if incr_state is not None:
            from ..incr.summary import options_fingerprint

            with _Timer(result.timings, "incr_summaries"):
                incr_session = incr_state.begin_link(
                    cmo_modules, options_fingerprint(options)
                )

        externally_callable: Set[str] = set()
        externally_visible_globals: Set[str] = set()
        for obj in code_objects:
            externally_callable.update(obj.referenced_routines)
            for machine in obj.machine_routines:
                for instr in machine.instrs:
                    if instr.sym is not None and instr.op.value in (
                        "ldg", "stg", "ldx", "stx"
                    ):
                        externally_visible_globals.add(instr.sym)
        for module in plain_modules:
            for routine in module.routine_list():
                externally_callable.update(routine.callees())
                externally_visible_globals.update(
                    routine.referenced_globals()
                )

        cmo_program = Program(cmo_modules)
        repository = None
        if options.repository_dir is not None:
            repository = Repository.from_config(
                options.repository_dir, options.naim
            )
        with _Timer(result.timings, "hlo"):
            hlo = HighLevelOptimizer(
                cmo_program,
                options=options.hlo,
                profile_db=profile_db,
                naim_config=options.naim,
                repository=repository,
                accountant=accountant,
                externally_callable=externally_callable,
                externally_visible_globals=externally_visible_globals,
                incr_session=incr_session,
                wpa_mode=options.effective_wpa_mode,
            )
            selected: Optional[Set[str]] = None
            if result.plan is not None and (
                selectivity_percent is not None
                and profile_db is not None
            ):
                selected = result.plan.selected_routines
            hlo_result = hlo.optimize(
                selected_routines=selected,
                materialize=False,
                run_scalar=not partitioned,
            )
        result.hlo_result = hlo_result
        if events is not None:
            for event in hlo_result.events:
                events.instant(
                    str(event.get("event", "hlo")), category="wpa",
                    args=dict(event),
                )

        llo_options = LloOptions(2, use_profile=profile_db is not None)
        with _Timer(result.timings, "codegen_cmo"):
            unit = hlo_result.unit
            cached = (
                incr_session.cached_machines if incr_session is not None
                else {}
            )
            compiled: Dict[str, MachineRoutine] = {}
            if partitioned:
                from ..part import PartitionRunner, partition_unit
                from ..sched.procpool import cpu_count

                n_partitions = options.hlo_partitions or max(
                    1, options.hlo_jobs * 4
                )
                partitions = partition_unit(hlo_result, n_partitions)
                # Workers beyond the partition count (or the
                # schedulable CPUs) only add dispatch overhead -- the
                # old 4-jobs-on-4-partitions regression.  Clamp, and
                # say so once per build in the event log.
                requested_jobs = options.hlo_jobs
                cpus = cpu_count()
                effective_jobs = max(
                    1, min(requested_jobs, len(partitions) or 1, cpus)
                )
                if effective_jobs < requested_jobs and events is not None:
                    events.instant(
                        "hlo-jobs-clamped", category="ltrans",
                        args={
                            "requested": requested_jobs,
                            "effective": effective_jobs,
                            "partitions": len(partitions),
                            "cpus": cpus,
                        },
                    )
                dispatcher = self.partition_dispatcher
                backend = options.hlo_backend
                if dispatcher is not None and dispatcher.ready():
                    backend = "farm"
                    # Farm workers are remote: their count is the
                    # coordinator's business, so ship the requested
                    # jobs figure unclamped.
                    runner = dispatcher.runner(
                        hlo_result,
                        llo_options,
                        naim_config=options.naim,
                        jobs=requested_jobs,
                        events=events,
                    )
                else:
                    from ..part.procexec import (
                        ProcessPartitionRunner,
                        processes_supported,
                    )

                    supported = processes_supported()
                    if backend == "auto":
                        backend = (
                            "processes"
                            if effective_jobs > 1 and supported
                            else "threads"
                        )
                    if backend == "processes" and supported:
                        runner = ProcessPartitionRunner(
                            hlo_result,
                            llo_options,
                            naim_config=options.naim,
                            jobs=effective_jobs,
                            events=events,
                            pool=self.process_pool,
                        )
                    else:
                        backend = "threads"
                        runner = PartitionRunner(
                            hlo_result,
                            llo_options,
                            naim_config=options.naim,
                            jobs=effective_jobs,
                            events=events,
                        )
                run_out = runner.run(partitions)
                compiled = run_out.machines
                result.llo_stats = run_out.llo_stats
                result.ltrans_stats = {
                    "backend": backend,
                    "requested_jobs": requested_jobs,
                    "effective_jobs": effective_jobs,
                    "partitions": len(partitions),
                }
                if backend == "processes":
                    result.ltrans_stats.update({
                        "spawn_seconds": runner.spawn_seconds,
                        "blob_bytes": runner.blob_bytes,
                        "workers": runner.workers_used,
                        "crashes": runner.crashes,
                        "requeues": runner.requeues,
                    })
            else:
                llo = LowLevelOptimizer(llo_options, accountant)

            machines: List[MachineRoutine] = []
            fresh_by_module: Dict[str, List[MachineRoutine]] = {}
            # One pass in unit order: cached and fresh routines splice
            # into the same positions a clean build would give them, so
            # layout (and hence the image bytes) is unaffected by reuse
            # and by partitioning.
            for name in unit.routine_names():
                module_name = unit.routine_module.get(name, "")
                if module_name in cached:
                    machine = cached[module_name].get(name)
                    if machine is not None:
                        machines.append(machine)
                    unit.unload(name)
                    continue
                if partitioned:
                    machine = compiled.get(name)
                    if machine is None:
                        continue
                else:
                    routine = unit.routine(name)
                    if routine is None:
                        continue
                    machine = llo.compile_routine(
                        routine, hlo_result.views.get(name)
                    )
                    unit.unload(name)
                machines.append(machine)
                fresh_by_module.setdefault(module_name, []).append(machine)
            if not partitioned:
                result.llo_stats = llo.stats

        if incr_session is not None:
            incr_session.fresh_machines = fresh_by_module
            result.incr_report = incr_state.commit(incr_session)
            result.cmo_reused_modules = result.incr_report.reused
            result.cmo_reoptimized_modules = result.incr_report.reoptimized
        return machines

    # -- Instrumented builds (+I) -----------------------------------------------------

    def _build_instrumented(
        self, modules: List[Module], result: BuildResult
    ) -> None:
        with _Timer(result.timings, "instrument"):
            program = Program(modules)
            result.probe_table = instrument_program(program)
        with _Timer(result.timings, "compile"):
            machines: List[MachineRoutine] = []
            llo = LowLevelOptimizer(
                LloOptions(self.options.llo_level, use_profile=False),
                result.accountant,
            )
            for module in modules:
                for routine in module.routine_list():
                    machines.append(llo.compile_routine(routine))
            result.llo_stats = llo.stats
        global_vars: List[GlobalVar] = []
        for module in modules:
            global_vars.extend(module.symtab.globals.values())
        with _Timer(result.timings, "link"):
            result.executable = build_image(
                machines, global_vars, probe_table=result.probe_table
            )


# -- Sessions (warm-state builds) ----------------------------------------------------


class SessionBuildStats:
    """Per-build observability for one :class:`CompileSession` build.

    Everything here is scoped to exactly one build even when the
    session (and its caches, repositories and event log) is warm and
    has served many earlier builds in the same process.
    """

    def __init__(self) -> None:
        self.seconds = 0.0
        #: Shared artifact-cache activity during this build (delta).
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_stores = 0
        #: Incremental-repository traffic during this build.
        self.repo_fetches = 0
        self.repo_stores = 0
        self.repo_bytes_read = 0
        self.repo_bytes_written = 0
        #: Dead pack-segment bytes awaiting compaction at build end.
        self.repo_reclaimable_bytes = 0
        #: NAIM loader activity of the link (evictions = compactions).
        self.loader_evictions = 0
        self.loader_offloads = 0
        self.loader_cache_hits = 0
        #: Modeled peak memory of the build.
        self.peak_bytes = 0
        #: Task spans recorded in the session event log.
        self.n_spans = 0
        #: Wall-clock seconds per build phase.
        self.phase_seconds: Dict[str, float] = {}
        #: Flat hot-path report (``build --profile-hot``), else None.
        self.hot_profile: Optional[Dict[str, object]] = None
        #: How many builds this session had served before this one.
        self.warm_builds_before = 0

    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "seconds": self.seconds,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_stores": self.cache_stores,
            "cache_hit_rate": self.cache_hit_rate(),
            "repo_fetches": self.repo_fetches,
            "repo_stores": self.repo_stores,
            "repo_bytes_read": self.repo_bytes_read,
            "repo_bytes_written": self.repo_bytes_written,
            "repo_reclaimable_bytes": self.repo_reclaimable_bytes,
            "loader_evictions": self.loader_evictions,
            "loader_offloads": self.loader_offloads,
            "loader_cache_hits": self.loader_cache_hits,
            "peak_bytes": self.peak_bytes,
            "n_spans": self.n_spans,
            "phase_seconds": dict(self.phase_seconds),
            "hot_profile": self.hot_profile,
            "warm_builds_before": self.warm_builds_before,
        }

    def __repr__(self) -> str:
        return "<SessionBuildStats %.3fs cache %d/%d warm=%d>" % (
            self.seconds, self.cache_hits,
            self.cache_hits + self.cache_misses, self.warm_builds_before,
        )


class CompileSession:
    """A reusable, process-resident build entry point.

    One session pins down everything that makes two builds comparable
    -- the :class:`CompilerOptions`, the worker counts, and (for
    incremental builds) the :class:`~repro.driver.build.BuildEngine`
    with its object cache and :class:`~repro.incr.IncrementalState`.
    The cold CLI creates a throwaway session per invocation; the build
    daemon keeps sessions warm across requests and projects.  Both go
    through :meth:`build`, which is how daemon builds stay
    byte-identical to cold CLI builds at every ``jobs`` / ``hlo_jobs``
    / ``incremental`` setting.

    ``warm=True`` routes even non-incremental builds through a
    :class:`BuildEngine`, so repeat builds reuse fingerprint-matched
    objects and the shared ``artifact_cache`` instead of re-running
    frontends (output bytes are identical either way -- objects are
    content-addressed).

    Every build starts by resetting per-build mutable counters on the
    session's long-lived state (event log, incremental repository), so
    stats never leak between builds sharing one process; shared
    artifact-cache counters are reported as before/after deltas
    because other sessions may be using the cache concurrently.

    Builds on one session are serialized by an internal lock --
    concurrent daemon requests against the same project queue here
    rather than corrupting shared engine state.
    """

    def __init__(
        self,
        options: Optional[CompilerOptions] = None,
        jobs: int = 1,
        incremental: bool = False,
        state_dir: Optional[str] = None,
        artifact_cache=None,
        warm: bool = False,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.options = options or CompilerOptions()
        self.jobs = jobs
        self.incremental = bool(incremental or state_dir is not None)
        self.state_dir = state_dir
        self.artifact_cache = artifact_cache
        self.warm = warm
        self.events = EventLog()
        #: Builds completed on this session (warm-state reuse count).
        self.builds = 0
        self._lock = threading.Lock()
        self.engine = None
        self.compiler = Compiler(self.options)
        if self.incremental or warm:
            from .build import BuildEngine  # local: build.py imports us

            self.engine = BuildEngine(
                self.options,
                jobs=jobs,
                artifact_cache=artifact_cache,
                events=self.events,
                incremental=self.incremental,
                state_dir=state_dir,
            )
            self.compiler = self.engine.compiler

    # -- Per-build hygiene -----------------------------------------------------------

    def reset_build_counters(self) -> None:
        """Zero every per-build mutable counter on session-owned state."""
        self.events.clear()
        if self.engine is not None and self.engine.incr_state is not None:
            self.engine.incr_state.reset_counters()

    # -- Building ----------------------------------------------------------------------

    def build(self, sources: Dict[str, str],
              profile_db: Optional[ProfileDatabase] = None,
              profile_hot: bool = False,
              selectivity_percent: Optional[float] = None):
        """Run one build; returns ``(result, report, stats)``.

        ``report`` is a :class:`~repro.driver.build.RebuildReport` when
        the session runs on an engine, else None.  With
        ``profile_hot=True`` the build runs under
        :class:`~repro.bench.profile_hooks.HotPathProfiler` and the
        flat report lands in ``stats.hot_profile`` (profiling overhead
        makes ``stats.seconds`` incomparable to unprofiled builds; the
        build output itself is unaffected).

        ``selectivity_percent`` overrides the session options' threshold
        for this build only — the daemon's selectivity controller uses it
        to move the hotness cutoff between builds while keeping the warm
        session (and its incremental state) intact.
        """
        with self._lock:
            stats = SessionBuildStats()
            stats.warm_builds_before = self.builds
            self.reset_build_counters()
            cache_before = (
                self.artifact_cache.stats_snapshot()
                if self.artifact_cache is not None else None
            )
            profiler = None
            if profile_hot:
                from ..bench.profile_hooks import HotPathProfiler
                profiler = HotPathProfiler()
            start = time.perf_counter()
            if profiler is not None:
                profiler.start()
            try:
                if self.engine is not None:
                    result, report = self.engine.build(
                        sources, profile_db=profile_db,
                        selectivity_percent=selectivity_percent,
                    )
                else:
                    result = self.compiler.build(
                        sources, profile_db=profile_db, jobs=self.jobs,
                        events=self.events,
                        selectivity_percent=selectivity_percent,
                    )
                    report = None
            finally:
                if profiler is not None:
                    profiler.stop()
            stats.seconds = time.perf_counter() - start
            if profiler is not None:
                stats.hot_profile = profiler.report()
            self.builds += 1
            self._collect_stats(stats, result, cache_before)
            return result, report, stats

    def _collect_stats(self, stats: SessionBuildStats, result: BuildResult,
                       cache_before) -> None:
        if cache_before is not None:
            delta = self.artifact_cache.stats_snapshot().delta(cache_before)
            stats.cache_hits = delta.hits
            stats.cache_misses = delta.misses
            stats.cache_stores = delta.stores
        if self.engine is not None and self.engine.incr_state is not None:
            repo = self.engine.incr_state.repository
            stats.repo_fetches = repo.fetches
            stats.repo_stores = repo.stores
            stats.repo_bytes_read = repo.bytes_read
            stats.repo_bytes_written = repo.bytes_written
            stats.repo_reclaimable_bytes = getattr(
                repo, "reclaimable_bytes", 0
            )
        if result.hlo_result is not None:
            loader_stats = result.hlo_result.loader.stats
            stats.loader_evictions = loader_stats.compactions
            stats.loader_offloads = loader_stats.offloads
            stats.loader_cache_hits = loader_stats.cache_hits
        stats.peak_bytes = result.accountant.peak
        stats.n_spans = len(self.events.spans())
        stats.phase_seconds = dict(result.timings.phases)
        if result.hlo_result is not None:
            # Per-pass WPA splits ("hlo.wpa.inline", ...) alongside the
            # coarse build phases, so `build --profile-hot` and the
            # bench harnesses can attribute thin-link time.
            for key, value in result.hlo_result.phase_seconds.items():
                stats.phase_seconds["hlo." + key] = value

    def compact_repositories(self) -> int:
        """Compact session-owned pack repositories; returns bytes freed.

        Cheap when nothing is reclaimable -- the daemon calls this
        between requests so dead frames from pruned incremental blobs
        don't accumulate across a long-lived process.
        """
        if self.engine is None or self.engine.incr_state is None:
            return 0
        repository = self.engine.incr_state.repository
        compact = getattr(repository, "maybe_compact", None)
        if compact is None:
            return 0
        with self._lock:
            return compact()

    def close(self) -> None:
        """Release persistent session state (incremental repository)."""
        if self.engine is not None and self.engine.incr_state is not None:
            self.engine.incr_state.close()

    def __repr__(self) -> str:
        return "<CompileSession %s jobs=%d%s builds=%d>" % (
            self.options.describe(), self.jobs,
            " incremental" if self.incremental else "", self.builds,
        )


# -- Training convenience -----------------------------------------------------------


def train(
    sources: Sources,
    training_inputs: Iterable[Optional[Dict[str, List[int]]]],
    opt_level: int = 2,
) -> ProfileDatabase:
    """Build instrumented, run on each training input, merge profiles.

    This is the paper's +I / profile-database workflow in one call.
    """
    compiler = Compiler(CompilerOptions(opt_level=opt_level, instrument=True))
    build = compiler.build(sources)
    assert build.executable is not None and build.probe_table is not None
    database = ProfileDatabase()
    for inputs in training_inputs:
        outcome = run_image(build.executable, inputs)
        database.merge(
            ProfileDatabase.from_probe_list(
                build.probe_table, outcome.probe_counts
            )
        )
    return database
