"""The compiler driver: frontend -> objects -> link -> executable.

Mirrors the HP-UX pipeline (paper Figure 2): frontends emit IL; at
+O0/+O1/+O2 modules go straight through LLO into code objects; at +O4
the frontend dumps IL into fat objects and the *linker* routes them
through HLO (with NAIM and selectivity) before code generation and
final layout.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

from ..frontend import compile_source, detect_language
from ..hlo.driver import HighLevelOptimizer, HloResult
from ..hlo.profile_view import ProfileView
from ..ir.module import Module
from ..ir.program import ENTRY_NAME, Program
from ..ir.routine import Routine
from ..ir.symbols import GlobalVar
from ..linker.clustering import cluster_routines
from ..linker.link import build_image, check_interfaces
from ..linker.objects import KIND_IL, LinkError, ObjectFile
from ..llo.driver import LloOptions, LloStats, LowLevelOptimizer
from ..naim.memory import MemoryAccountant
from ..naim.repository import Repository
from ..sched.events import EventLog
from ..sched.executor import Executor
from ..sched.graph import TaskGraph
from ..profiles.correlate import correlate
from ..profiles.database import ProfileDatabase
from ..profiles.probes import ProbeTable, instrument_program
from ..vm.image import Executable, MachineRoutine
from ..vm.machine import MachineResult, run_image
from .options import CompilerOptions
from .selectivity import SelectivityPlan, plan_selectivity

Sources = Union[Dict[str, str], Sequence[Module]]


class BuildTimings:
    """Wall-clock seconds per build phase."""

    def __init__(self) -> None:
        self.phases: Dict[str, float] = {}

    def add(self, phase: str, seconds: float) -> None:
        self.phases[phase] = self.phases.get(phase, 0.0) + seconds

    def total(self) -> float:
        return sum(self.phases.values())

    def __repr__(self) -> str:
        inner = ", ".join(
            "%s=%.3fs" % (name, secs) for name, secs in self.phases.items()
        )
        return "<BuildTimings %s>" % inner


class _Timer:
    def __init__(self, timings: BuildTimings, phase: str) -> None:
        self.timings = timings
        self.phase = phase

    def __enter__(self) -> "_Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *_exc) -> None:
        self.timings.add(self.phase, time.perf_counter() - self.start)


class BuildResult:
    """Everything a build produces."""

    def __init__(self) -> None:
        self.executable: Optional[Executable] = None
        self.objects: List[ObjectFile] = []
        self.probe_table: Optional[ProbeTable] = None
        self.hlo_result: Optional[HloResult] = None
        self.llo_stats: Optional[LloStats] = None
        self.accountant = MemoryAccountant()
        self.timings = BuildTimings()
        self.plan: Optional[SelectivityPlan] = None
        self.interface_problems: List[str] = []
        self.source_lines = 0
        self.options_used = ""
        #: Incremental-CMO outcome (an :class:`repro.incr.IncrLinkReport`)
        #: when the link ran with an IncrementalState; None otherwise.
        self.incr_report = None
        #: CMO modules whose codegen came from the incremental cache.
        self.cmo_reused_modules: List[str] = []
        #: CMO modules re-optimized (scalar pipeline + LLO) this link.
        self.cmo_reoptimized_modules: List[str] = []

    def run(self, inputs=None, cost_model=None,
            max_instructions: int = 200_000_000) -> MachineResult:
        """Execute the built image on the VM."""
        assert self.executable is not None
        return run_image(self.executable, inputs, cost_model,
                         max_instructions=max_instructions)

    def __repr__(self) -> str:
        code = self.executable.code_size() if self.executable else 0
        return "<BuildResult %s (%d instrs, %.2fs)>" % (
            self.options_used,
            code,
            self.timings.total(),
        )


class Compiler:
    """One configured compiler instance."""

    def __init__(self, options: Optional[CompilerOptions] = None) -> None:
        self.options = options or CompilerOptions()

    # -- Frontend --------------------------------------------------------------

    def frontend(self, name: str, source: str,
                 language: str = "auto") -> Module:
        """Compile one source file to an IL module.

        ``language``: "mll", "mfl" or "auto" (detected from the text).
        """
        if language == "auto":
            language = detect_language(source)
        return compile_source(source, name, language)

    # -- Separate compilation ------------------------------------------------------

    def compile_object(
        self,
        module: Module,
        profile_db: Optional[ProfileDatabase] = None,
        fingerprint: str = "",
    ) -> ObjectFile:
        """Compile one module to an object file (the `cc -c` step)."""
        obj, _stats = self.compile_object_with_stats(
            module, profile_db, fingerprint=fingerprint
        )
        return obj

    def compile_object_with_stats(
        self,
        module: Module,
        profile_db: Optional[ProfileDatabase] = None,
        fingerprint: str = "",
        accountant: Optional[MemoryAccountant] = None,
    ):
        """:meth:`compile_object`, also returning the codegen stats.

        The scheduler's per-module compile tasks run with a private
        ``accountant`` each; the driver merges them afterwards in
        source order, so parallel builds report the same numbers as
        serial ones.
        """
        if self.options.is_cmo:
            # Fat object: IL dumped directly (paper §3).
            return ObjectFile.from_il_module(module, fingerprint), None
        machines, stats = self._codegen_module(module, profile_db, accountant)
        obj = ObjectFile.from_machine_routines(
            module,
            machines,
            source_fingerprint=fingerprint,
            opt_summary=self.options.describe(),
        )
        return obj, stats

    def _codegen_module(
        self,
        module: Module,
        profile_db: Optional[ProfileDatabase],
        accountant: Optional[MemoryAccountant],
    ):
        llo = LowLevelOptimizer(
            LloOptions(
                self.options.llo_level,
                use_profile=self.options.pbo and profile_db is not None,
            ),
            accountant,
        )
        machines = []
        for routine in module.routine_list():
            machines.append(
                llo.compile_routine(routine, self._view_for(routine, profile_db))
            )
        return machines, llo.stats

    def _view_for(
        self, routine: Routine, profile_db: Optional[ProfileDatabase]
    ) -> Optional[ProfileView]:
        if not self.options.pbo or profile_db is None:
            return None
        profile = correlate(profile_db, routine)
        if profile is None or not profile.block_counts:
            return None
        return ProfileView.from_profile(profile)

    # -- Whole builds --------------------------------------------------------------

    def build(
        self,
        sources: Sources,
        profile_db: Optional[ProfileDatabase] = None,
        jobs: int = 1,
        events: Optional[EventLog] = None,
        scheduler: Optional[Executor] = None,
    ) -> BuildResult:
        """Frontend + compile + link in one call.

        Per-module frontend and codegen tasks are dispatched through a
        :class:`~repro.sched.TaskGraph` on ``jobs`` workers (or a
        caller-supplied ``scheduler``); the link stays serial.  Output
        is byte-identical for every ``jobs`` value.  ``events``
        collects start/finish/error spans for every task, exportable
        as a Chrome trace.
        """
        result = BuildResult()
        result.options_used = self.options.describe()
        executor = scheduler if scheduler is not None else (
            Executor(jobs=jobs, events=events)
        )

        graph = TaskGraph()
        if isinstance(sources, dict):
            names = list(sources)
            for name, text in sources.items():

                def run_frontend(_inputs, name=name, text=text):
                    start = time.perf_counter()
                    module = self.frontend(name, text)
                    return module, time.perf_counter() - start

                graph.add("frontend:%s" % name, run_frontend,
                          category="frontend")
        else:
            modules_in = list(sources)
            names = [module.name for module in modules_in]
            for module in modules_in:

                def run_premade(_inputs, module=module):
                    return module, 0.0

                graph.add("frontend:%s" % module.name, run_premade,
                          category="frontend")

        instrument = self.options.instrument
        if not instrument:
            for name in names:

                def run_compile(inputs, name=name):
                    module, _secs = inputs["frontend:%s" % name]
                    start = time.perf_counter()
                    accountant = MemoryAccountant()
                    obj, stats = self.compile_object_with_stats(
                        module, profile_db,
                        fingerprint=ObjectFile.fingerprint(module.name),
                        accountant=accountant,
                    )
                    return (obj, time.perf_counter() - start,
                            accountant, stats)

                graph.add("compile:%s" % name, run_compile,
                          deps=["frontend:%s" % name], category="compile")

        outcome = executor.run(graph)
        if not outcome.ok:
            outcome.raise_first()

        modules = []
        frontend_seconds = 0.0
        for name in names:
            module, seconds = outcome.results["frontend:%s" % name]
            modules.append(module)
            frontend_seconds += seconds
        result.timings.add("frontend", frontend_seconds)
        result.source_lines = sum(m.source_lines for m in modules)

        if instrument:
            self._build_instrumented(modules, result)
            return result

        objects = []
        compile_seconds = 0.0
        for name in names:
            obj, seconds, accountant, stats = (
                outcome.results["compile:%s" % name]
            )
            objects.append(obj)
            compile_seconds += seconds
            result.accountant.merge(accountant)
            if stats is not None:
                if result.llo_stats is None:
                    result.llo_stats = stats
                else:
                    result.llo_stats.merge(stats)
        result.timings.add("compile", compile_seconds)
        result.objects = objects
        with executor.events.span("link", "link"):
            self.link_into(objects, profile_db, result,
                           events=executor.events)
        return result

    def link(
        self,
        objects: List[ObjectFile],
        profile_db: Optional[ProfileDatabase] = None,
        incr_state=None,
        events: Optional[EventLog] = None,
    ) -> BuildResult:
        """Link previously compiled objects (the `ld` step).

        ``incr_state`` (an :class:`repro.incr.IncrementalState`)
        enables summary-based incremental CMO: modules whose consumed
        cross-module facts are unchanged reuse cached codegen, with
        byte-identical output.
        """
        result = BuildResult()
        result.options_used = self.options.describe()
        result.objects = list(objects)
        result.source_lines = sum(o.source_lines for o in objects)
        self.link_into(objects, profile_db, result, incr_state=incr_state,
                       events=events)
        return result

    # -- The link pipeline -------------------------------------------------------------

    def link_into(
        self,
        objects: List[ObjectFile],
        profile_db: Optional[ProfileDatabase],
        result: BuildResult,
        incr_state=None,
        events: Optional[EventLog] = None,
    ) -> None:
        options = self.options
        accountant = result.accountant
        use_db = profile_db if options.pbo else None

        il_objects = [o for o in objects if o.kind == KIND_IL]
        code_objects = [o for o in objects if o.kind != KIND_IL]

        machine_routines: List[MachineRoutine] = []
        for obj in code_objects:
            machine_routines.extend(obj.machine_routines)
        global_vars: List[GlobalVar] = []
        for obj in objects:
            global_vars.extend(var.copy() for var in obj.defined_globals())

        if il_objects:
            # Work on copies: objects must survive relinking unchanged.
            il_modules = [obj.il_module.copy() for obj in il_objects]

            with _Timer(result.timings, "interface_check"):
                il_program = Program(il_modules)
                result.interface_problems = check_interfaces(il_program)
                if result.interface_problems and options.checked:
                    raise LinkError(
                        "interface mismatches: %s"
                        % "; ".join(result.interface_problems[:5])
                    )

            with _Timer(result.timings, "selectivity"):
                result.plan = plan_selectivity(
                    options.selectivity_percent if use_db else None,
                    il_modules,
                    use_db,
                    multi_layer=options.multi_layer,
                )
            if not options.is_cmo:
                cmo_set = set()
            elif options.cmo_modules is not None:
                cmo_set = {m.name for m in il_modules} & options.cmo_modules
            else:
                cmo_set = set(result.plan.cmo_modules)
            cmo_modules = [m for m in il_modules if m.name in cmo_set]
            plain_modules = [m for m in il_modules if m.name not in cmo_set]

            if options.is_cmo and cmo_modules:
                machine_routines.extend(
                    self._link_time_cmo(
                        cmo_modules,
                        plain_modules,
                        code_objects,
                        use_db,
                        result,
                        incr_state=incr_state,
                        events=events,
                    )
                )

            # Non-CMO IL modules: default optimization (+O2) with PBO;
            # in multi-layer mode, never-executed modules drop to +O1
            # (paper §8: "code that is executed little or not at all may
            # not be optimized at all").
            with _Timer(result.timings, "codegen_plain"):
                default_level = 2 if options.is_cmo else options.llo_level
                llo_by_level = {}

                def llo_for(level: int) -> LowLevelOptimizer:
                    if level not in llo_by_level:
                        llo_by_level[level] = LowLevelOptimizer(
                            LloOptions(level, use_profile=use_db is not None),
                            accountant,
                        )
                    return llo_by_level[level]

                layer_of = result.plan.layer_of if result.plan else {}
                for module in plain_modules:
                    level = default_level
                    if options.multi_layer and (
                        layer_of.get(module.name) == "cold"
                    ):
                        level = 1
                    llo = llo_for(level)
                    for routine in module.routine_list():
                        machine_routines.append(
                            llo.compile_routine(
                                routine, self._view_for(routine, use_db)
                            )
                        )
                for llo in llo_by_level.values():
                    if result.llo_stats is None:
                        result.llo_stats = llo.stats
                    else:
                        result.llo_stats.merge(llo.stats)

        # Drop globals defined by routines that no longer exist?  No:
        # globals live independently of routine liveness.

        with _Timer(result.timings, "layout"):
            layout_order = None
            if use_db is not None:
                weights: Dict[tuple, int] = {}
                for name, profile in use_db.routines.items():
                    for (block, idx, callee), count in (
                        profile.call_counts.items()
                    ):
                        key = (name, callee)
                        weights[key] = weights.get(key, 0) + count
                layout_order = cluster_routines(
                    [routine.name for routine in machine_routines],
                    weights,
                    entry=ENTRY_NAME,
                )

        with _Timer(result.timings, "link"):
            result.executable = build_image(
                machine_routines,
                global_vars,
                layout_order=layout_order,
                probe_table=result.probe_table,
            )

    def _link_time_cmo(
        self,
        cmo_modules: List[Module],
        plain_modules: List[Module],
        code_objects: List[ObjectFile],
        profile_db: Optional[ProfileDatabase],
        result: BuildResult,
        incr_state=None,
        events: Optional[EventLog] = None,
    ) -> List[MachineRoutine]:
        """Route the CMO module set through HLO, then LLO each routine.

        With ``incr_state``, module summaries are fingerprinted before
        HLO, consumption is recorded during it, and codegen splices
        cached machine routines (in unit order, so layout is
        unchanged) for every module whose reuse key hit.

        With ``hlo_jobs > 1`` (or an explicit ``hlo_partitions``), the
        scalar pipeline + codegen run on the partitioned LTRANS
        backend (:mod:`repro.part`); the serial WPA phases and the
        splice order are unchanged, so output bytes are identical.
        """
        options = self.options
        accountant = result.accountant
        partitioned = options.use_partitioned_hlo

        incr_session = None
        if incr_state is not None:
            from ..incr.summary import options_fingerprint

            with _Timer(result.timings, "incr_summaries"):
                incr_session = incr_state.begin_link(
                    cmo_modules, options_fingerprint(options)
                )

        externally_callable: Set[str] = set()
        externally_visible_globals: Set[str] = set()
        for obj in code_objects:
            externally_callable.update(obj.referenced_routines)
            for machine in obj.machine_routines:
                for instr in machine.instrs:
                    if instr.sym is not None and instr.op.value in (
                        "ldg", "stg", "ldx", "stx"
                    ):
                        externally_visible_globals.add(instr.sym)
        for module in plain_modules:
            for routine in module.routine_list():
                externally_callable.update(routine.callees())
                externally_visible_globals.update(
                    routine.referenced_globals()
                )

        cmo_program = Program(cmo_modules)
        repository = None
        if options.repository_dir is not None:
            repository = Repository(directory=options.repository_dir)
        with _Timer(result.timings, "hlo"):
            hlo = HighLevelOptimizer(
                cmo_program,
                options=options.hlo,
                profile_db=profile_db,
                naim_config=options.naim,
                repository=repository,
                accountant=accountant,
                externally_callable=externally_callable,
                externally_visible_globals=externally_visible_globals,
                incr_session=incr_session,
            )
            selected: Optional[Set[str]] = None
            if result.plan is not None and (
                options.selectivity_percent is not None
                and profile_db is not None
            ):
                selected = result.plan.selected_routines
            hlo_result = hlo.optimize(
                selected_routines=selected,
                materialize=False,
                run_scalar=not partitioned,
            )
        result.hlo_result = hlo_result

        llo_options = LloOptions(2, use_profile=profile_db is not None)
        with _Timer(result.timings, "codegen_cmo"):
            unit = hlo_result.unit
            cached = (
                incr_session.cached_machines if incr_session is not None
                else {}
            )
            compiled: Dict[str, MachineRoutine] = {}
            if partitioned:
                from ..part import PartitionRunner, partition_unit

                n_partitions = options.hlo_partitions or max(
                    1, options.hlo_jobs * 4
                )
                runner = PartitionRunner(
                    hlo_result,
                    llo_options,
                    naim_config=options.naim,
                    jobs=options.hlo_jobs,
                    events=events,
                )
                run_out = runner.run(
                    partition_unit(hlo_result, n_partitions)
                )
                compiled = run_out.machines
                result.llo_stats = run_out.llo_stats
            else:
                llo = LowLevelOptimizer(llo_options, accountant)

            machines: List[MachineRoutine] = []
            fresh_by_module: Dict[str, List[MachineRoutine]] = {}
            # One pass in unit order: cached and fresh routines splice
            # into the same positions a clean build would give them, so
            # layout (and hence the image bytes) is unaffected by reuse
            # and by partitioning.
            for name in unit.routine_names():
                module_name = unit.routine_module.get(name, "")
                if module_name in cached:
                    machine = cached[module_name].get(name)
                    if machine is not None:
                        machines.append(machine)
                    unit.unload(name)
                    continue
                if partitioned:
                    machine = compiled.get(name)
                    if machine is None:
                        continue
                else:
                    routine = unit.routine(name)
                    if routine is None:
                        continue
                    machine = llo.compile_routine(
                        routine, hlo_result.views.get(name)
                    )
                    unit.unload(name)
                machines.append(machine)
                fresh_by_module.setdefault(module_name, []).append(machine)
            if not partitioned:
                result.llo_stats = llo.stats

        if incr_session is not None:
            incr_session.fresh_machines = fresh_by_module
            result.incr_report = incr_state.commit(incr_session)
            result.cmo_reused_modules = result.incr_report.reused
            result.cmo_reoptimized_modules = result.incr_report.reoptimized
        return machines

    # -- Instrumented builds (+I) -----------------------------------------------------

    def _build_instrumented(
        self, modules: List[Module], result: BuildResult
    ) -> None:
        with _Timer(result.timings, "instrument"):
            program = Program(modules)
            result.probe_table = instrument_program(program)
        with _Timer(result.timings, "compile"):
            machines: List[MachineRoutine] = []
            llo = LowLevelOptimizer(
                LloOptions(self.options.llo_level, use_profile=False),
                result.accountant,
            )
            for module in modules:
                for routine in module.routine_list():
                    machines.append(llo.compile_routine(routine))
            result.llo_stats = llo.stats
        global_vars: List[GlobalVar] = []
        for module in modules:
            global_vars.extend(module.symtab.globals.values())
        with _Timer(result.timings, "link"):
            result.executable = build_image(
                machines, global_vars, probe_table=result.probe_table
            )


# -- Training convenience -----------------------------------------------------------


def train(
    sources: Sources,
    training_inputs: Iterable[Optional[Dict[str, List[int]]]],
    opt_level: int = 2,
) -> ProfileDatabase:
    """Build instrumented, run on each training input, merge profiles.

    This is the paper's +I / profile-database workflow in one call.
    """
    compiler = Compiler(CompilerOptions(opt_level=opt_level, instrument=True))
    build = compiler.build(sources)
    assert build.executable is not None and build.probe_table is not None
    database = ProfileDatabase()
    for inputs in training_inputs:
        outcome = run_image(build.executable, inputs)
        database.merge(
            ProfileDatabase.from_probe_list(
                build.probe_table, outcome.probe_counts
            )
        )
    return database
