"""Coarse- and fine-grained selectivity (paper §5).

Coarse-grained: "the user specifies a selection percentage.  Using the
profile data, the compiler orders all the call sites within the program
by call frequency, and then retains only the selected percentage of
sites.  The compiler then identifies the modules containing the callers
and callees of the selected sites.  These modules are compiled with CMO
and PBO.  The remaining modules bypass HLO entirely."

Fine-grained: within the CMO module set, only routines participating in
selected sites (callers and callees) get full optimization effort;
everything else is scanned for global-usage facts and left unloaded.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..ir.module import Module
from ..profiles.database import ProfileDatabase


class SelectivityPlan:
    """The outcome of the selection process (observable in benches)."""

    def __init__(self) -> None:
        self.cmo_modules: List[str] = []
        self.selected_routines: Set[str] = set()
        self.selected_sites = 0
        self.total_sites = 0
        self.selected_lines = 0
        self.total_lines = 0
        self.percent = 100.0
        #: module -> "cmo" | "warm" | "cold" (multi-layer mode, paper §8).
        self.layer_of: Dict[str, str] = {}

    @property
    def line_fraction(self) -> float:
        if self.total_lines == 0:
            return 0.0
        return self.selected_lines / self.total_lines

    @property
    def site_fraction(self) -> float:
        if self.total_sites == 0:
            return 0.0
        return self.selected_sites / self.total_sites

    def __repr__(self) -> str:
        return (
            "<SelectivityPlan %.0f%%: %d/%d sites, %d modules, "
            "%.0f%% of lines>"
            % (
                self.percent,
                self.selected_sites,
                self.total_sites,
                len(self.cmo_modules),
                100 * self.line_fraction,
            )
        )


def plan_selectivity(
    percent: Optional[float],
    modules: List[Module],
    profile_db: Optional[ProfileDatabase],
    multi_layer: bool = False,
) -> SelectivityPlan:
    """Choose the CMO module set and the selected-routine set.

    ``percent=None`` (or no profile data) selects everything -- the
    paper's pure-CMO mode.  With ``multi_layer`` (the paper's §8
    extension), non-CMO modules are further split into *warm* (executed
    during training: default optimization) and *cold* (never executed:
    minimal optimization).
    """
    plan = SelectivityPlan()
    plan.total_lines = sum(module.source_lines for module in modules)

    routine_module: Dict[str, str] = {}
    for module in modules:
        for name in module.routines:
            routine_module[name] = module.name

    if percent is None or profile_db is None:
        plan.percent = 100.0
        plan.cmo_modules = [module.name for module in modules]
        plan.selected_routines = set(routine_module)
        plan.selected_lines = plan.total_lines
        # Count sites for reporting.
        sites = _ranked_sites(profile_db)
        plan.total_sites = len(sites)
        plan.selected_sites = len(sites)
        return plan

    plan.percent = percent
    sites = _ranked_sites(profile_db)
    plan.total_sites = len(sites)
    keep = int(math.ceil(len(sites) * percent / 100.0))
    retained = sites[:keep]
    plan.selected_sites = len(retained)

    selected_modules: Dict[str, None] = {}
    selected_routines: Set[str] = set()
    for caller, _block, _index, callee, _weight in retained:
        for name in (caller, callee):
            selected_routines.add(name)
            module_name = routine_module.get(name)
            if module_name is not None:
                selected_modules.setdefault(module_name)
    # Keep module order deterministic (input order).
    plan.cmo_modules = [
        module.name for module in modules if module.name in selected_modules
    ]
    plan.selected_routines = selected_routines
    plan.selected_lines = sum(
        module.source_lines
        for module in modules
        if module.name in selected_modules
    )
    if multi_layer:
        _assign_layers(plan, modules, profile_db)
    return plan


def cmo_module_set(
    profile_db: Optional[ProfileDatabase],
    percent: Optional[float],
    routine_module: Mapping[str, str],
) -> Set[str]:
    """The coarse CMO module set a build at ``percent`` would choose.

    Profile-only variant of :func:`plan_selectivity` for callers that
    have no parsed modules at hand — the daemon's selectivity controller
    uses it to predict which modules would cross the hotness threshold
    before deciding whether a re-optimization is worth triggering.  Uses
    the same ranking and retention rule as the real plan, so the
    prediction matches the build exactly for modules known to
    ``routine_module``.
    """
    if percent is None or profile_db is None:
        return set(routine_module.values())
    sites = _ranked_sites(profile_db)
    keep = int(math.ceil(len(sites) * percent / 100.0))
    modules: Set[str] = set()
    for caller, _block, _index, callee, _weight in sites[:keep]:
        for name in (caller, callee):
            owner = routine_module.get(name)
            if owner is not None:
                modules.add(owner)
    return modules


def _assign_layers(
    plan: SelectivityPlan,
    modules: List[Module],
    profile_db: Optional[ProfileDatabase],
) -> None:
    """Split non-CMO modules into warm (executed) and cold (never run)."""
    module_weight: Dict[str, int] = {module.name: 0 for module in modules}
    if profile_db is not None:
        routine_module = {
            name: module.name
            for module in modules
            for name in module.routines
        }
        for name, profile in profile_db.routines.items():
            owner = routine_module.get(name)
            if owner is not None:
                module_weight[owner] = (
                    module_weight.get(owner, 0) + profile.total_block_weight()
                )
    cmo_set = set(plan.cmo_modules)
    for module in modules:
        if module.name in cmo_set:
            plan.layer_of[module.name] = "cmo"
        elif module_weight.get(module.name, 0) > 0:
            plan.layer_of[module.name] = "warm"
        else:
            plan.layer_of[module.name] = "cold"


def _ranked_sites(
    profile_db: Optional[ProfileDatabase],
) -> List[Tuple[str, str, int, str, int]]:
    """All call sites as (caller, block, index, callee, weight), ranked.

    Zero-weight sites are excluded: selecting never-executed sites
    cannot help performance (and the paper ranks by call frequency).
    """
    if profile_db is None:
        return []
    sites: List[Tuple[str, str, int, str, int]] = []
    for name, profile in profile_db.routines.items():
        for (block, index, callee), count in profile.call_counts.items():
            if count > 0:
                sites.append((name, block, index, callee, count))
    sites.sort(key=lambda s: (-s[4], s[0], s[1], s[2], s[3]))
    return sites
