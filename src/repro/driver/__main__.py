"""mllc: the command-line compiler driver.

HP-UX-flavoured flags over MLL source files::

    python -m repro.driver build prog/*.mll -O4 -P profile.json --run
    python -m repro.driver train prog/*.mll -o profile.json
    python -m repro.driver objdump prog/main.mll

Subcommands:

* ``build``  -- compile + link (optionally execute) a set of modules;
* ``train``  -- build instrumented (+I), run, write a profile database;
* ``objdump``-- print a module's IL after the frontend.

Module names derive from file stems; a file named ``main.mll`` (or any
module defining ``main``) provides the entry point.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List

from ..frontend import compile_source, detect_language
from ..ir.printer import format_module
from ..naim.memory import fmt_bytes
from ..sched.events import EventLog
from .build import BuildEngine
from .compiler import Compiler, train as train_profile
from .options import CompilerOptions
from ..profiles.database import ProfileDatabase


def _read_sources(paths: List[str]) -> Dict[str, str]:
    """Read sources; .mfl files pick the FORTRAN-ish frontend, .mll the
    C-ish one, anything else is auto-detected."""
    sources: Dict[str, str] = {}
    for path in paths:
        name = os.path.splitext(os.path.basename(path))[0]
        if name in sources:
            raise SystemExit("duplicate module name %r" % name)
        with open(path, "r", encoding="utf-8") as handle:
            sources[name] = handle.read()
    if not sources:
        raise SystemExit("no source files given")
    return sources


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("files", nargs="+", help="MLL source files")
    parser.add_argument(
        "-O", dest="opt_level", type=int, default=2, choices=(0, 1, 2, 4),
        help="optimization level (4 = link-time CMO)",
    )
    parser.add_argument(
        "-P", dest="profile", default=None, metavar="DB.json",
        help="profile database to use (+P)",
    )
    parser.add_argument(
        "--selectivity", type=float, default=None, metavar="PCT",
        help="coarse-grained selectivity percentage (needs -P)",
    )
    parser.add_argument("--checked", action="store_true",
                        help="fail the build on interface mismatches")
    parser.add_argument(
        "-j", "--jobs", type=int, default=1, metavar="N",
        help="compile-task workers (1 = serial; output is identical)",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="TRACE.json",
        help="write a Chrome trace_event JSON of the build",
    )
    parser.add_argument(
        "--hlo-jobs", type=int, default=1, metavar="N",
        help="workers for the partitioned link-time optimization "
             "backend (1 = serial; output is byte-identical)",
    )
    parser.add_argument(
        "--partitions", type=int, default=None, metavar="N",
        help="partition count for the parallel backend "
             "(default: 4x --hlo-jobs)",
    )


def cmd_build(args: argparse.Namespace) -> int:
    sources = _read_sources(args.files)
    profile_db = None
    if args.profile:
        profile_db = ProfileDatabase.load(args.profile)
    if args.hlo_jobs < 1:
        raise SystemExit("--hlo-jobs must be >= 1")
    options = CompilerOptions(
        opt_level=args.opt_level,
        pbo=profile_db is not None,
        selectivity_percent=args.selectivity,
        checked=args.checked,
        hlo_jobs=args.hlo_jobs,
        hlo_partitions=args.partitions,
    )
    if args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    events = EventLog()
    incremental = args.incremental or args.state_dir is not None
    if incremental:
        engine = BuildEngine(options, jobs=args.jobs, events=events,
                             incremental=True, state_dir=args.state_dir)
        build, report = engine.build(sources, profile_db=profile_db)
    else:
        build = Compiler(options).build(sources, profile_db=profile_db,
                                        jobs=args.jobs, events=events)
    print("build %s: %d modules, %d lines -> %d machine instrs (%.2fs)"
          % (options.describe(), len(sources), build.source_lines,
             build.executable.code_size(), build.timings.total()))
    if incremental:
        print("incremental: %d objects recompiled, %d reused"
              % (len(report.recompiled), len(report.reused)))
        if build.incr_report is not None:
            print("incremental cmo: %d modules reused, %d reoptimized "
                  "(changed: %s)"
                  % (len(report.cmo_reused), len(report.cmo_reoptimized),
                     ", ".join(build.incr_report.changed_modules) or "-"))
    if args.jobs > 1:
        print("jobs: %d workers, %d tasks" % (args.jobs,
                                              len(events.spans())))
    if options.use_partitioned_hlo:
        print("hlo-jobs: %d workers, %d partitions"
              % (options.hlo_jobs, len(events.spans("ltrans"))))
    if args.emit_image:
        from ..linker.objects import encode_executable

        with open(args.emit_image, "wb") as handle:
            handle.write(encode_executable(build.executable))
        print("image: %d bytes -> %s"
              % (os.path.getsize(args.emit_image), args.emit_image))
    if args.trace_out:
        events.write_chrome_trace(args.trace_out)
        print("trace: %d events -> %s" % (len(events.events),
                                          args.trace_out))
    if build.interface_problems:
        for problem in build.interface_problems:
            print("warning: interface mismatch: %s" % problem,
                  file=sys.stderr)
    if build.plan is not None and options.selectivity_percent is not None:
        print("selectivity: %s" % build.plan)
    if build.hlo_result is not None:
        print("hlo: %s, peak memory %s"
              % (build.hlo_result.inline_stats,
                 fmt_bytes(build.hlo_result.peak_bytes)))
    if args.run:
        result = build.run()
        print("run: value=%d cycles=%d instrs=%d calls=%d"
              % (result.value, result.cycles, result.instructions,
                 result.calls))
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    sources = _read_sources(args.files)
    database = train_profile(sources, [None] * args.runs)
    database.save(args.output)
    hottest = ", ".join(
        "%s(%d)" % (name, weight)
        for name, weight in database.hottest_routines(5)
    )
    print("trained %d run(s) -> %s" % (args.runs, args.output))
    print("hottest: %s" % hottest)
    return 0


def cmd_objdump(args: argparse.Namespace) -> int:
    for path in args.files:
        name, extension = os.path.splitext(os.path.basename(path))
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        if extension == ".mfl":
            language = "mfl"
        elif extension == ".mll":
            language = "mll"
        else:
            language = detect_language(text)
        module = compile_source(text, name, language)
        print(format_module(module))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.driver",
        description="MLL compiler with cross-module optimization",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    build_parser = subparsers.add_parser("build", help="compile and link")
    _add_common(build_parser)
    build_parser.add_argument("--run", action="store_true",
                              help="execute the image after linking")
    build_parser.add_argument(
        "--incremental", action="store_true",
        help="summary-based incremental CMO: reuse cached per-module "
             "codegen when consumed cross-module facts are unchanged",
    )
    build_parser.add_argument(
        "--state-dir", default=None, metavar="DIR",
        help="persist incremental state (objects, summaries, codegen "
             "cache) in DIR across runs; implies --incremental",
    )
    build_parser.add_argument(
        "--emit-image", default=None, metavar="IMAGE.bin",
        help="write the encoded executable image to a file "
             "(canonical bytes; byte-compare serial vs parallel builds)",
    )
    build_parser.set_defaults(func=cmd_build)

    train_parser = subparsers.add_parser(
        "train", help="build +I, run, write a profile database"
    )
    train_parser.add_argument("files", nargs="+", help="MLL source files")
    train_parser.add_argument("-o", dest="output", default="profile.json",
                              help="output database path")
    train_parser.add_argument("--runs", type=int, default=1,
                              help="training runs to merge")
    train_parser.set_defaults(func=cmd_train)

    objdump_parser = subparsers.add_parser(
        "objdump", help="print a module's IL"
    )
    objdump_parser.add_argument("files", nargs="+", help="MLL source files")
    objdump_parser.set_defaults(func=cmd_objdump)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
