"""mllc: the command-line compiler driver.

HP-UX-flavoured flags over MLL source files::

    python -m repro.driver build prog/*.mll -O4 -P profile.json --run
    python -m repro.driver train prog/*.mll -o profile.json
    python -m repro.driver objdump prog/main.mll

Subcommands:

* ``build``  -- compile + link (optionally execute) a set of modules;
* ``train``  -- build instrumented (+I), run, write a profile database;
* ``objdump``-- print a module's IL after the frontend.

Module names derive from file stems; a file named ``main.mll`` (or any
module defining ``main``) provides the entry point.

``build --daemon`` routes the request to a running build daemon
(:mod:`repro.serve`) over its UNIX socket, falling back to in-process
compilation when none is running; output is identical either way.
``build --farm HOST:PORT`` routes it to a compile-farm coordinator
(:mod:`repro.farm`) over authenticated TCP instead -- an explicit
endpoint, so an unreachable farm fails the build rather than falling
back silently.  Images are byte-identical down every path.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List

from ..frontend import compile_source, detect_language
from ..ir.printer import format_module
from .compiler import CompileSession, train as train_profile
from .options import CompilerOptions
from .report import build_summary, render_build_summary
from ..profiles.database import ProfileDatabase


def _read_sources(paths: List[str]) -> Dict[str, str]:
    """Read sources; .mfl files pick the FORTRAN-ish frontend, .mll the
    C-ish one, anything else is auto-detected."""
    sources: Dict[str, str] = {}
    for path in paths:
        name = os.path.splitext(os.path.basename(path))[0]
        if name in sources:
            raise SystemExit("duplicate module name %r" % name)
        with open(path, "r", encoding="utf-8") as handle:
            sources[name] = handle.read()
    if not sources:
        raise SystemExit("no source files given")
    return sources


def _positive_int(text: str) -> int:
    """argparse type: an integer >= 1, rejected with a clear message.

    Validating at the parser keeps ``-j 0`` (and friends) to a
    one-line usage error instead of a traceback from deep inside the
    scheduler or the options constructor.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            "expected a positive integer, got %r" % text
        )
    if value < 1:
        raise argparse.ArgumentTypeError(
            "must be >= 1 (got %d)" % value
        )
    return value


def _nonnegative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            "expected an integer >= 0, got %r" % text
        )
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0 (got %d)" % value)
    return value


def _naim_config_from_args(args: argparse.Namespace):
    """NaimConfig carrying the repository I/O knobs (None = defaults)."""
    from ..naim.config import NaimConfig

    defaults = NaimConfig()
    compress = getattr(args, "repo_compress", defaults.repo_compress_level)
    segment_mb = getattr(args, "repo_segment_mb",
                         defaults.repo_segment_bytes // (1024 * 1024))
    depth = getattr(args, "prefetch_depth", defaults.repo_prefetch_depth)
    if (compress == defaults.repo_compress_level
            and segment_mb * 1024 * 1024 == defaults.repo_segment_bytes
            and depth == defaults.repo_prefetch_depth):
        return None
    return NaimConfig(
        repo_compress_level=compress,
        repo_segment_bytes=segment_mb * 1024 * 1024,
        repo_prefetch_depth=depth,
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("files", nargs="+", help="MLL source files")
    parser.add_argument(
        "-O", dest="opt_level", type=int, default=2, choices=(0, 1, 2, 4),
        help="optimization level (4 = link-time CMO)",
    )
    parser.add_argument(
        "-P", dest="profile", default=None, metavar="DB.json",
        help="profile database to use (+P)",
    )
    parser.add_argument(
        "--selectivity", type=float, default=None, metavar="PCT",
        help="coarse-grained selectivity percentage (needs -P)",
    )
    parser.add_argument("--checked", action="store_true",
                        help="fail the build on interface mismatches")
    parser.add_argument(
        "-j", "--jobs", type=_positive_int, default=1, metavar="N",
        help="compile-task workers (1 = serial; output is identical)",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="TRACE.json",
        help="write a Chrome trace_event JSON of the build",
    )
    parser.add_argument(
        "--hlo-jobs", type=_positive_int, default=1, metavar="N",
        help="workers for the partitioned link-time optimization "
             "backend (1 = serial; output is byte-identical)",
    )
    parser.add_argument(
        "--partitions", type=_positive_int, default=None, metavar="N",
        help="partition count for the parallel backend "
             "(default: 4x --hlo-jobs)",
    )
    parser.add_argument(
        "--hlo-backend", choices=("auto", "threads", "processes"),
        default="auto", metavar="BACKEND",
        help="partitioned-LTRANS executor: threads (GIL-bound), "
             "processes (worker processes; real CPU parallelism) or "
             "auto (processes when >1 effective worker; default). "
             "Output is byte-identical either way.",
    )
    parser.add_argument(
        "--wpa-mode", choices=("auto", "materialize", "summary"),
        default="auto", metavar="MODE",
        help="whole-program analysis strategy at +O4: summary runs "
             "the thin link (cross-module decisions from routine "
             "summaries alone; bodies load lazily per partition), "
             "materialize loads every body up front. Output is "
             "byte-identical either way; auto (default) = summary.",
    )
    parser.add_argument(
        "--repo-compress", type=int, default=6, choices=range(0, 10),
        metavar="LEVEL",
        help="zlib level for NAIM pack-repository entries "
             "(0 disables compression; default 6)",
    )
    parser.add_argument(
        "--repo-segment-mb", type=_positive_int, default=8, metavar="MB",
        help="pack-repository segment rollover size in MiB (default 8)",
    )
    parser.add_argument(
        "--prefetch-depth", type=_nonnegative_int, default=1, metavar="N",
        help="routines fetched ahead by the loader's background "
             "prefetch pipeline (0 = synchronous fetches; default 1)",
    )
    parser.add_argument(
        "--profile-feed", default=None, metavar="NAME",
        help="join the daemon's named continuous-profile feed: the "
             "build uses the feed's live decayed database and the "
             "selectivity controller's current threshold, and "
             "registers the project for ingest-triggered "
             "re-optimization (needs --daemon or --farm)",
    )
    parser.add_argument(
        "--profile-hot", action="store_true",
        help="profile the compiler's own hot paths during the build "
             "(cProfile; slower, output unchanged) and print a flat "
             "report",
    )


def _print_summary(summary: Dict[str, object]) -> None:
    out_lines, err_lines = render_build_summary(summary)
    for line in out_lines:
        print(line)
    for line in err_lines:
        print(line, file=sys.stderr)


def _print_run(result) -> None:
    print("run: value=%d cycles=%d instrs=%d calls=%d"
          % (result.value, result.cycles, result.instructions,
             result.calls))


def _daemon_build(args: argparse.Namespace, sources: Dict[str, str],
                  client=None) -> int:
    """One build via the daemon; assumes a daemon answered the ping."""
    from ..linker.objects import decode_executable
    from ..serve.client import DaemonClient, build_options_from_args
    from ..vm.machine import run_image

    if client is None:
        client = DaemonClient.from_env()
    result = client.build(build_options_from_args(args, sources))
    _print_summary(result["summary"])
    hot = (result.get("stats") or {}).get("hot_profile")
    if hot:
        from ..bench.profile_hooks import render_hot_report
        for line in render_hot_report(hot):
            print(line)
    image = result["image"]
    if args.emit_image:
        with open(args.emit_image, "wb") as handle:
            handle.write(image)
        print("image: %d bytes -> %s" % (len(image), args.emit_image))
    if args.run:
        _print_run(run_image(decode_executable(image)))
    return 0


def cmd_build(args: argparse.Namespace) -> int:
    sources = _read_sources(args.files)
    incremental = args.incremental or args.state_dir is not None

    if args.farm:
        # An explicit endpoint is a promise, not a hint: a farm the
        # user named but cannot be reached is an error, never a silent
        # in-process fallback (unlike --daemon, which is opportunistic).
        from ..farm import FarmClient
        from ..farm.coordinator import default_farm_root
        from ..farm.transport import resolve_token
        from ..serve.client import DaemonError

        client = FarmClient(
            args.farm,
            token=resolve_token(args.farm_token,
                                root=default_farm_root()),
        )
        try:
            return _daemon_build(args, sources, client=client)
        except DaemonError as exc:
            print("farm: %s" % exc, file=sys.stderr)
            return 1

    if args.daemon and not args.trace_out:
        # Transparent daemon path: only taken when a daemon answers;
        # anything else falls through to the in-process build below.
        # (--trace-out stays in-process: the trace lives server-side.)
        from ..serve.client import DaemonClient, DaemonError

        client = DaemonClient.from_env()
        if client.available():
            try:
                return _daemon_build(args, sources)
            except DaemonError as exc:
                print("daemon: %s; building in-process" % exc,
                      file=sys.stderr)

    if args.profile_feed:
        # Feeds live in a daemon's warm state; a cold in-process build
        # has no database or controller to join, so say so and build
        # without one rather than failing the compile.
        print("--profile-feed %s ignored: no daemon answered, feeds "
              "need --daemon or --farm" % args.profile_feed,
              file=sys.stderr)

    profile_db = None
    if args.profile:
        profile_db = ProfileDatabase.load(args.profile)
    options = CompilerOptions(
        opt_level=args.opt_level,
        pbo=profile_db is not None,
        selectivity_percent=args.selectivity,
        checked=args.checked,
        hlo_jobs=args.hlo_jobs,
        hlo_partitions=args.partitions,
        hlo_backend=args.hlo_backend,
        wpa_mode=args.wpa_mode,
        naim=_naim_config_from_args(args),
    )
    session = CompileSession(options, jobs=args.jobs,
                             incremental=incremental,
                             state_dir=args.state_dir)
    build, report, _stats = session.build(
        sources, profile_db=profile_db, profile_hot=args.profile_hot,
    )
    _print_summary(build_summary(
        options, len(sources), build, report=report, events=session.events,
        jobs=args.jobs, incremental=session.incremental,
    ))
    if _stats.hot_profile:
        from ..bench.profile_hooks import render_hot_report
        for line in render_hot_report(_stats.hot_profile):
            print(line)
    if args.emit_image:
        from ..linker.objects import encode_executable

        data = encode_executable(build.executable)
        with open(args.emit_image, "wb") as handle:
            handle.write(data)
        print("image: %d bytes -> %s" % (len(data), args.emit_image))
    if args.trace_out:
        session.events.write_chrome_trace(args.trace_out)
        print("trace: %d events -> %s" % (len(session.events.events),
                                          args.trace_out))
    if args.run:
        _print_run(build.run())
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    sources = _read_sources(args.files)
    database = train_profile(sources, [None] * args.runs)
    database.save(args.output)
    hottest = ", ".join(
        "%s(%d)" % (name, weight)
        for name, weight in database.hottest_routines(5)
    )
    print("trained %d run(s) -> %s" % (args.runs, args.output))
    print("hottest: %s" % hottest)
    return 0


def cmd_objdump(args: argparse.Namespace) -> int:
    for path in args.files:
        name, extension = os.path.splitext(os.path.basename(path))
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        if extension == ".mfl":
            language = "mfl"
        elif extension == ".mll":
            language = "mll"
        else:
            language = detect_language(text)
        module = compile_source(text, name, language)
        print(format_module(module))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.driver",
        description="MLL compiler with cross-module optimization",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    build_parser = subparsers.add_parser("build", help="compile and link")
    _add_common(build_parser)
    build_parser.add_argument("--run", action="store_true",
                              help="execute the image after linking")
    build_parser.add_argument(
        "--incremental", action="store_true",
        help="summary-based incremental CMO: reuse cached per-module "
             "codegen when consumed cross-module facts are unchanged",
    )
    build_parser.add_argument(
        "--state-dir", default=None, metavar="DIR",
        help="persist incremental state (objects, summaries, codegen "
             "cache) in DIR across runs; implies --incremental",
    )
    build_parser.add_argument(
        "--emit-image", default=None, metavar="IMAGE.bin",
        help="write the encoded executable image to a file "
             "(canonical bytes; byte-compare serial vs parallel builds)",
    )
    build_parser.add_argument(
        "--daemon", action="store_true",
        help="build via a running repro.serve daemon (warm caches); "
             "falls back to in-process compilation if none is running",
    )
    build_parser.add_argument(
        "--farm", default=None, metavar="HOST:PORT",
        help="build via a repro.farm coordinator over TCP "
             "(fails, never falls back, when it cannot be reached)",
    )
    build_parser.add_argument(
        "--farm-token", default=None, metavar="SECRET",
        help="farm shared secret (default: $REPRO_FARM_TOKEN, else "
             "the local coordinator root's farm.token)",
    )
    build_parser.set_defaults(func=cmd_build)

    train_parser = subparsers.add_parser(
        "train", help="build +I, run, write a profile database"
    )
    train_parser.add_argument("files", nargs="+", help="MLL source files")
    train_parser.add_argument("-o", dest="output", default="profile.json",
                              help="output database path")
    train_parser.add_argument("--runs", type=_positive_int, default=1,
                              help="training runs to merge")
    train_parser.set_defaults(func=cmd_train)

    objdump_parser = subparsers.add_parser(
        "objdump", help="print a module's IL"
    )
    objdump_parser.add_argument("files", nargs="+", help="MLL source files")
    objdump_parser.set_defaults(func=cmd_objdump)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
