"""The common intermediate language (IL) instruction set.

The IL is a register-based three-address code over 64-bit signed
integers.  It is deliberately language-neutral: the high-level optimizer
(HLO) never needs to know which frontend produced a module, mirroring
the HP-UX compiler described in the paper (section 3).

Semantics notes (shared with the interpreter, the constant folder and
the virtual machine -- they must all agree):

* All arithmetic wraps to 64-bit two's complement.
* Division and modulo by zero yield 0 (total semantics; this keeps
  randomly generated programs well-defined for property testing).
* Division truncates toward zero, like C.
* Shift amounts are masked to the range [0, 63].
* Comparison results are 0 or 1.
"""

from __future__ import annotations

import enum
from typing import Iterator, Optional, Tuple

_MASK64 = (1 << 64) - 1
_SIGN64 = 1 << 63


def wrap64(value: int) -> int:
    """Wrap an arbitrary Python int to signed 64-bit two's complement."""
    value &= _MASK64
    if value & _SIGN64:
        value -= 1 << 64
    return value


def sdiv64(a: int, b: int) -> int:
    """C-style truncating division with total semantics (x / 0 == 0)."""
    if b == 0:
        return 0
    q = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        q = -q
    return wrap64(q)


def smod64(a: int, b: int) -> int:
    """C-style remainder with total semantics (x % 0 == 0)."""
    if b == 0:
        return 0
    return wrap64(a - sdiv64(a, b) * b)


class Opcode(enum.Enum):
    """IL opcodes."""

    # Data movement.
    CONST = "const"  # dst <- imm
    MOV = "mov"  # dst <- a

    # Binary arithmetic / logic: dst <- a OP b.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"

    # Unary: dst <- OP a.
    NEG = "neg"
    NOT = "not"

    # Comparisons: dst <- (a OP b) ? 1 : 0.
    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"

    # Global memory.
    LOADG = "loadg"  # dst <- global[sym]
    STOREG = "storeg"  # global[sym] <- a
    LOADE = "loade"  # dst <- array[sym][a]
    STOREE = "storee"  # array[sym][a] <- b

    # Calls.  CALL: dst (optional) <- sym(args...)
    CALL = "call"

    # Terminators.
    RET = "ret"  # return a (or 0 when a is None)
    BR = "br"  # if a != 0 goto targets[0] else targets[1]
    JMP = "jmp"  # goto targets[0]

    # Instrumentation probe (inserted by +I); increments counter `imm`.
    PROBE = "probe"


#: Opcodes of the form dst <- a OP b.
BINARY_OPS = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.DIV,
        Opcode.MOD,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SHL,
        Opcode.SHR,
        Opcode.EQ,
        Opcode.NE,
        Opcode.LT,
        Opcode.LE,
        Opcode.GT,
        Opcode.GE,
    }
)

#: Opcodes of the form dst <- OP a.
UNARY_OPS = frozenset({Opcode.NEG, Opcode.NOT, Opcode.MOV})

#: Opcodes that end a basic block.
TERMINATORS = frozenset({Opcode.RET, Opcode.BR, Opcode.JMP})

#: Comparison opcodes (result is 0 or 1).
COMPARE_OPS = frozenset(
    {Opcode.EQ, Opcode.NE, Opcode.LT, Opcode.LE, Opcode.GT, Opcode.GE}
)

#: Commutative binary opcodes.
COMMUTATIVE_OPS = frozenset(
    {Opcode.ADD, Opcode.MUL, Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.EQ, Opcode.NE}
)


def fold_binary(op: Opcode, a: int, b: int) -> int:
    """Constant-fold a binary op; the single source of truth for semantics."""
    if op is Opcode.ADD:
        return wrap64(a + b)
    if op is Opcode.SUB:
        return wrap64(a - b)
    if op is Opcode.MUL:
        return wrap64(a * b)
    if op is Opcode.DIV:
        return sdiv64(a, b)
    if op is Opcode.MOD:
        return smod64(a, b)
    if op is Opcode.AND:
        return wrap64(a & b)
    if op is Opcode.OR:
        return wrap64(a | b)
    if op is Opcode.XOR:
        return wrap64(a ^ b)
    if op is Opcode.SHL:
        return wrap64(a << (b & 63))
    if op is Opcode.SHR:
        # Arithmetic shift right on the signed value.
        return wrap64(a >> (b & 63))
    if op is Opcode.EQ:
        return 1 if a == b else 0
    if op is Opcode.NE:
        return 1 if a != b else 0
    if op is Opcode.LT:
        return 1 if a < b else 0
    if op is Opcode.LE:
        return 1 if a <= b else 0
    if op is Opcode.GT:
        return 1 if a > b else 0
    if op is Opcode.GE:
        return 1 if a >= b else 0
    raise ValueError("not a binary opcode: %s" % op)


def fold_unary(op: Opcode, a: int) -> int:
    """Constant-fold a unary op."""
    if op is Opcode.NEG:
        return wrap64(-a)
    if op is Opcode.NOT:
        return wrap64(~a)
    if op is Opcode.MOV:
        return a
    raise ValueError("not a unary opcode: %s" % op)


class Instr:
    """One IL instruction.

    A single concrete class keeps the IR compact and easy to encode for
    NAIM compaction.  Field usage by opcode:

    ==========  =====  ======  ======  =====  ======  ========
    opcode      dst    a       b       imm    sym     targets
    ==========  =====  ======  ======  =====  ======  ========
    CONST       reg    --      --      int    --      --
    MOV/unary   reg    reg     --      --     --      --
    binary      reg    reg     reg     --     --      --
    LOADG       reg    --      --      --     name    --
    STOREG      --     reg     --      --     name    --
    LOADE       reg    reg     --      --     name    --
    STOREE      --     reg     reg     --     name    --
    CALL        reg?   --      --      --     name    --      (+args)
    RET         --     reg?    --      --     --      --
    BR          --     reg     --      --     --      (t, f)
    JMP         --     --      --      --     --      (t,)
    PROBE       --     --      --      id     --      --
    ==========  =====  ======  ======  =====  ======  ========
    """

    __slots__ = ("op", "dst", "a", "b", "imm", "sym", "args", "targets")

    def __init__(
        self,
        op: Opcode,
        dst: Optional[int] = None,
        a: Optional[int] = None,
        b: Optional[int] = None,
        imm: Optional[int] = None,
        sym: Optional[str] = None,
        args: Tuple[int, ...] = (),
        targets: Tuple[str, ...] = (),
    ) -> None:
        self.op = op
        self.dst = dst
        self.a = a
        self.b = b
        self.imm = imm
        self.sym = sym
        self.args = tuple(args)
        self.targets = tuple(targets)

    # -- Structural queries -------------------------------------------------

    def is_terminator(self) -> bool:
        return self.op in TERMINATORS

    def is_call(self) -> bool:
        return self.op is Opcode.CALL

    def defines(self) -> Optional[int]:
        """The virtual register this instruction writes, if any."""
        return self.dst

    def uses(self) -> Iterator[int]:
        """Yield every virtual register this instruction reads."""
        if self.a is not None:
            yield self.a
        if self.b is not None:
            yield self.b
        for arg in self.args:
            yield arg

    def has_side_effects(self) -> bool:
        """True when the instruction cannot be removed even if dead."""
        return self.op in (
            Opcode.STOREG,
            Opcode.STOREE,
            Opcode.CALL,
            Opcode.RET,
            Opcode.BR,
            Opcode.JMP,
            Opcode.PROBE,
        )

    def replace_uses(self, mapping: "dict[int, int]") -> None:
        """Rewrite used registers in place through ``mapping``."""
        if self.a is not None:
            self.a = mapping.get(self.a, self.a)
        if self.b is not None:
            self.b = mapping.get(self.b, self.b)
        if self.args:
            self.args = tuple(mapping.get(r, r) for r in self.args)

    def copy(self) -> "Instr":
        return Instr(
            self.op,
            dst=self.dst,
            a=self.a,
            b=self.b,
            imm=self.imm,
            sym=self.sym,
            args=self.args,
            targets=self.targets,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instr):
            return NotImplemented
        return (
            self.op is other.op
            and self.dst == other.dst
            and self.a == other.a
            and self.b == other.b
            and self.imm == other.imm
            and self.sym == other.sym
            and self.args == other.args
            and self.targets == other.targets
        )

    def __hash__(self) -> int:
        raise TypeError("Instr is mutable and unhashable")

    def __repr__(self) -> str:
        from .printer import format_instr

        return "<Instr %s>" % format_instr(self)
