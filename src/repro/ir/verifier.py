"""IR verifier: structural well-formedness checks.

Run after the frontend and between optimizer phases (in checked builds)
to catch malformed IR early.  Checks are structural, not semantic:

* every block ends in exactly one terminator, and only the last
  instruction is a terminator;
* branch targets name existing blocks;
* register numbers are within ``routine.next_reg``;
* opcode field usage matches the table in :mod:`repro.ir.instructions`;
* block labels are unique.
"""

from __future__ import annotations

from typing import List

from .errors import VerifierError
from .instructions import BINARY_OPS, Instr, Opcode
from .module import Module
from .program import Program
from .routine import Routine

_NEEDS_DST = BINARY_OPS | {
    Opcode.CONST,
    Opcode.MOV,
    Opcode.NEG,
    Opcode.NOT,
    Opcode.LOADG,
    Opcode.LOADE,
}


def _check_instr(routine: Routine, block_label: str, instr: Instr) -> List[str]:
    problems: List[str] = []
    where = "%s:%s" % (routine.name, block_label)

    def check_reg(reg: object, role: str) -> None:
        if not isinstance(reg, int) or reg < 0 or reg >= routine.next_reg:
            problems.append("%s: %s register %r out of range" % (where, role, reg))

    if instr.op in _NEEDS_DST:
        if instr.dst is None:
            problems.append("%s: %s lacks dst" % (where, instr.op.value))
        else:
            check_reg(instr.dst, "dst")
    elif instr.dst is not None and instr.op is not Opcode.CALL:
        problems.append("%s: %s must not define dst" % (where, instr.op.value))
    elif instr.op is Opcode.CALL and instr.dst is not None:
        check_reg(instr.dst, "dst")

    for reg in instr.uses():
        check_reg(reg, "use")

    if instr.op is Opcode.CONST and instr.imm is None:
        problems.append("%s: const lacks imm" % where)
    if instr.op is Opcode.PROBE and instr.imm is None:
        problems.append("%s: probe lacks id" % where)
    if instr.op in (Opcode.LOADG, Opcode.STOREG, Opcode.LOADE, Opcode.STOREE,
                    Opcode.CALL) and not instr.sym:
        problems.append("%s: %s lacks symbol" % (where, instr.op.value))
    if instr.op is Opcode.BR and len(instr.targets) != 2:
        problems.append("%s: br needs 2 targets" % where)
    if instr.op is Opcode.JMP and len(instr.targets) != 1:
        problems.append("%s: jmp needs 1 target" % where)
    return problems


def verify_routine(routine: Routine) -> List[str]:
    """Return a list of problems (empty when the routine is well-formed)."""
    problems: List[str] = []
    if not routine.blocks:
        return ["routine %s has no blocks" % routine.name]

    labels = [block.label for block in routine.blocks]
    if len(set(labels)) != len(labels):
        problems.append("routine %s has duplicate block labels" % routine.name)
    label_set = set(labels)

    for block in routine.blocks:
        if not block.is_terminated():
            problems.append(
                "%s:%s lacks a terminator" % (routine.name, block.label)
            )
        for index, instr in enumerate(block.instrs):
            if instr.is_terminator() and index != len(block.instrs) - 1:
                problems.append(
                    "%s:%s has a terminator mid-block" % (routine.name, block.label)
                )
            problems.extend(_check_instr(routine, block.label, instr))
        for target in block.successors():
            if target not in label_set:
                problems.append(
                    "%s:%s branches to unknown label %s"
                    % (routine.name, block.label, target)
                )
    if routine.n_params > routine.next_reg:
        problems.append(
            "routine %s: n_params %d exceeds next_reg %d"
            % (routine.name, routine.n_params, routine.next_reg)
        )
    return problems


def verify_module(module: Module) -> List[str]:
    """Problems in every routine of the module (empty = clean)."""
    problems: List[str] = []
    for routine in module.routine_list():
        problems.extend(verify_routine(routine))
        if routine.module_name != module.name:
            problems.append(
                "routine %s claims module %s but lives in %s"
                % (routine.name, routine.module_name, module.name)
            )
    return problems


def verify_program(program: Program) -> List[str]:
    """Problems across all modules plus unresolved-symbol checks."""
    problems: List[str] = []
    for module in program.module_list():
        problems.extend(verify_module(module))
    for missing in program.check_resolved():
        problems.append("unresolved symbol %s" % missing)
    return problems


def assert_valid_routine(routine: Routine) -> None:
    """Raise :class:`VerifierError` if the routine is malformed."""
    problems = verify_routine(routine)
    if problems:
        raise VerifierError("; ".join(problems))


def assert_valid_program(program: Program) -> None:
    """Raise :class:`VerifierError` if any module/routine is malformed."""
    problems = verify_program(program)
    if problems:
        raise VerifierError("; ".join(problems[:20]))
