"""Routines: the unit of optimization, compaction and code generation."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from .basic_block import BasicBlock
from .derived import DerivedCache
from .errors import IRError
from .instructions import Instr, Opcode


class Routine:
    """A single IL routine (function).

    A routine owns an ordered list of basic blocks; the first block is
    the entry.  Parameters arrive in virtual registers ``0..n_params-1``.
    Virtual registers are routine-local and unbounded.

    Routines are *transitory* objects in NAIM terms: they have an
    expanded form (this class) and a relocatable compact form (see
    :mod:`repro.naim.compaction`).  Analysis results hang off
    :attr:`derived` and are dropped on mutation or unload.
    """

    __slots__ = (
        "name",
        "module_name",
        "n_params",
        "blocks",
        "exported",
        "source_lines",
        "source_language",
        "next_reg",
        "derived",
        "annotations",
    )

    def __init__(
        self,
        name: str,
        module_name: str = "",
        n_params: int = 0,
        exported: bool = True,
        source_lines: int = 0,
        source_language: str = "mll",
    ) -> None:
        self.name = name
        self.module_name = module_name
        self.n_params = n_params
        self.blocks: List[BasicBlock] = []
        self.exported = exported
        #: Source-line count attributed to this routine (metrics/memory).
        self.source_lines = source_lines
        #: Recorded for diagnostics only; HLO never consults it (paper §3).
        self.source_language = source_language
        self.next_reg = n_params
        self.derived = DerivedCache()
        #: Free-form optimizer annotations (e.g. "inlined_from").
        self.annotations: Dict[str, object] = {}

    # -- Block management ---------------------------------------------------

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise IRError("routine %s has no blocks" % self.name)
        return self.blocks[0]

    def new_block(self, hint: str = "bb") -> BasicBlock:
        """Create, append and return a fresh uniquely-labelled block."""
        existing = {block.label for block in self.blocks}
        index = len(self.blocks)
        label = "%s%d" % (hint, index)
        while label in existing:
            index += 1
            label = "%s%d" % (hint, index)
        block = BasicBlock(label)
        self.blocks.append(block)
        self.invalidate()
        return block

    def block(self, label: str) -> BasicBlock:
        """Find a block by label (derived-cached map)."""
        mapping: Dict[str, BasicBlock] = self.derived.get(
            "block_map", lambda: {b.label: b for b in self.blocks}
        )
        try:
            return mapping[label]
        except KeyError:
            raise IRError("no block %r in routine %s" % (label, self.name))

    def block_labels(self) -> List[str]:
        return [block.label for block in self.blocks]

    def remove_blocks(self, labels: "set[str]") -> None:
        """Delete the named blocks (callers must have unlinked them)."""
        self.blocks = [b for b in self.blocks if b.label not in labels]
        self.invalidate()

    # -- Register management --------------------------------------------------

    def new_reg(self) -> int:
        reg = self.next_reg
        self.next_reg += 1
        return reg

    def param_regs(self) -> Tuple[int, ...]:
        return tuple(range(self.n_params))

    # -- Derived data ---------------------------------------------------------

    def invalidate(self) -> None:
        """Drop all derived analysis results (call after any mutation)."""
        self.derived.invalidate()

    def predecessors(self) -> Dict[str, List[str]]:
        """Map block label -> predecessor labels (derived)."""

        def compute() -> Dict[str, List[str]]:
            preds: Dict[str, List[str]] = {b.label: [] for b in self.blocks}
            for block in self.blocks:
                for succ in block.successors():
                    if succ in preds:
                        preds[succ].append(block.label)
            return preds

        return self.derived.get("preds", compute)

    # -- Queries --------------------------------------------------------------

    def iter_instrs(self) -> Iterator[Tuple[BasicBlock, int, Instr]]:
        """Yield (block, index, instr) over the whole routine, in order."""
        for block in self.blocks:
            for index, instr in enumerate(block.instrs):
                yield block, index, instr

    def call_sites(self) -> List[Tuple[str, int, str]]:
        """All calls as (block_label, instr_index, callee_name)."""
        sites = []
        for block in self.blocks:
            for index, instr in block.calls():
                assert instr.sym is not None
                sites.append((block.label, index, instr.sym))
        return sites

    def callees(self) -> List[str]:
        """Distinct callee names, in first-occurrence order."""
        seen: Dict[str, None] = {}
        for _, _, callee in self.call_sites():
            seen.setdefault(callee)
        return list(seen)

    def instr_count(self) -> int:
        return sum(len(block) for block in self.blocks)

    def referenced_globals(self) -> List[str]:
        """Distinct global symbols touched, in first-occurrence order."""
        seen: Dict[str, None] = {}
        for _, _, instr in self.iter_instrs():
            if instr.op in (Opcode.LOADG, Opcode.STOREG, Opcode.LOADE, Opcode.STOREE):
                assert instr.sym is not None
                seen.setdefault(instr.sym)
        return list(seen)

    def qualified_name(self) -> str:
        if self.exported or not self.module_name:
            return self.name
        return "%s::%s" % (self.module_name, self.name)

    def copy(self, new_name: Optional[str] = None) -> "Routine":
        """Deep-copy the routine (used by inlining and cloning)."""
        clone = Routine(
            new_name or self.name,
            module_name=self.module_name,
            n_params=self.n_params,
            exported=self.exported,
            source_lines=self.source_lines,
            source_language=self.source_language,
        )
        clone.blocks = [block.copy() for block in self.blocks]
        clone.next_reg = self.next_reg
        clone.annotations = dict(self.annotations)
        return clone

    def __repr__(self) -> str:
        return "<Routine %s (%d blocks, %d instrs)>" % (
            self.name,
            len(self.blocks),
            self.instr_count(),
        )
