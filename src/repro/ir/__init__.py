"""The common intermediate language (IL).

Every frontend lowers to this IL; HLO transforms it; LLO lowers it to
machine code.  See DESIGN.md section 3.
"""

from .basic_block import BasicBlock
from .builder import IRBuilder
from .callgraph import CallGraph, CallGraphNode, CallSite
from .derived import DerivedCache
from .errors import IRError, ParseError, SymbolError, VerifierError
from .instructions import (
    BINARY_OPS,
    COMMUTATIVE_OPS,
    COMPARE_OPS,
    TERMINATORS,
    UNARY_OPS,
    Instr,
    Opcode,
    fold_binary,
    fold_unary,
    sdiv64,
    smod64,
    wrap64,
)
from .module import Module
from .parser import parse_instr, parse_module, parse_routine
from .printer import format_instr, format_module, format_routine
from .program import ENTRY_NAME, Program
from .routine import Routine
from .symbols import GlobalVar, ModuleSymbolTable, ProgramSymbolTable
from .verifier import (
    assert_valid_program,
    assert_valid_routine,
    verify_module,
    verify_program,
    verify_routine,
)

__all__ = [
    "BasicBlock",
    "IRBuilder",
    "CallGraph",
    "CallGraphNode",
    "CallSite",
    "DerivedCache",
    "IRError",
    "ParseError",
    "SymbolError",
    "VerifierError",
    "BINARY_OPS",
    "COMMUTATIVE_OPS",
    "COMPARE_OPS",
    "TERMINATORS",
    "UNARY_OPS",
    "Instr",
    "Opcode",
    "fold_binary",
    "fold_unary",
    "sdiv64",
    "smod64",
    "wrap64",
    "Module",
    "parse_instr",
    "parse_module",
    "parse_routine",
    "format_instr",
    "format_module",
    "format_routine",
    "ENTRY_NAME",
    "Program",
    "Routine",
    "GlobalVar",
    "ModuleSymbolTable",
    "ProgramSymbolTable",
    "assert_valid_program",
    "assert_valid_routine",
    "verify_module",
    "verify_program",
    "verify_routine",
]
