"""Errors raised by the IR layer."""


class IRError(Exception):
    """Base class for all IR-layer errors."""


class VerifierError(IRError):
    """Raised when the IR verifier finds a malformed construct."""


class ParseError(IRError):
    """Raised when the textual IL parser encounters invalid input."""


class SymbolError(IRError):
    """Raised on symbol-table violations (duplicates, unresolved refs)."""
