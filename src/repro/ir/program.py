"""Whole programs: a set of modules plus the program-wide symbol table."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .callgraph import CallGraph
from .errors import SymbolError
from .module import Module
from .routine import Routine
from .symbols import ProgramSymbolTable

#: The conventional program entry point.
ENTRY_NAME = "main"


class Program:
    """A linked set of modules.

    The program symbol table and call graph correspond to the paper's
    *global objects*: always memory-resident, at the root of the object
    tree (Figure 3).
    """

    def __init__(self, modules: Optional[Iterable[Module]] = None) -> None:
        self.modules: Dict[str, Module] = {}
        if modules:
            for module in modules:
                self.add_module(module)
        self._symtab: Optional[ProgramSymbolTable] = None
        self._callgraph: Optional[CallGraph] = None

    # -- Construction ---------------------------------------------------------

    def add_module(self, module: Module) -> Module:
        if module.name in self.modules:
            raise SymbolError("duplicate module %s" % module.name)
        self.modules[module.name] = module
        self._symtab = None
        self._callgraph = None
        return module

    # -- Global objects ---------------------------------------------------------

    @property
    def symtab(self) -> ProgramSymbolTable:
        """Program-wide symbol table (built lazily, rebuilt on change)."""
        if self._symtab is None:
            self._symtab = ProgramSymbolTable.build(
                module.symtab for module in self.module_list()
            )
        return self._symtab

    def callgraph(self, rebuild: bool = False) -> CallGraph:
        """The program call graph (derived; rebuild after transforms)."""
        if self._callgraph is None or rebuild:
            self._callgraph = CallGraph.build(self)
        return self._callgraph

    def invalidate(self) -> None:
        """Drop program-level derived structures after mutation."""
        self._symtab = None
        self._callgraph = None

    # -- Queries ------------------------------------------------------------

    def module_list(self) -> List[Module]:
        """Modules in deterministic (insertion) order."""
        return list(self.modules.values())

    def routine(self, name: str) -> Routine:
        """Resolve a routine by program-wide name."""
        module_name = self.symtab.lookup_routine_module(name)
        return self.modules[module_name].routines[name]

    def find_routine(self, name: str) -> Optional[Routine]:
        if not self.symtab.has_routine(name):
            return None
        return self.routine(name)

    def entry(self) -> Routine:
        return self.routine(ENTRY_NAME)

    def all_routines(self) -> List[Routine]:
        routines: List[Routine] = []
        for module in self.module_list():
            routines.extend(module.routine_list())
        return routines

    def source_lines(self) -> int:
        return sum(module.source_lines for module in self.module_list())

    def instr_count(self) -> int:
        return sum(module.instr_count() for module in self.module_list())

    def check_resolved(self) -> List[str]:
        """Return undefined symbols referenced anywhere (linker check)."""
        missing: Dict[str, None] = {}
        table = self.symtab
        for routine in self.all_routines():
            for callee in routine.callees():
                if not table.has_routine(callee):
                    missing.setdefault(callee)
            for sym in routine.referenced_globals():
                if not table.has_global(sym):
                    missing.setdefault(sym)
        return list(missing)

    def __repr__(self) -> str:
        return "<Program (%d modules, %d lines)>" % (
            len(self.modules),
            self.source_lines(),
        )
