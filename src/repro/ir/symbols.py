"""Symbol tables: per-module (transitory) and program-wide (global).

The paper's HLO keeps *module* symbol tables as transitory objects that
can be compacted/offloaded, while the *program* symbol table is a global
object that is always memory-resident (Figure 3).  We mirror that split:

* :class:`GlobalVar` describes one global scalar or array.
* :class:`ModuleSymbolTable` holds a module's own definitions plus the
  external names it references.
* :class:`ProgramSymbolTable` is built at link/CMO time from all module
  tables; it owns the persistent-identifier (PID) numbering used by the
  NAIM compaction layer for cross-pool references.

Naming convention: exported symbols use their bare name; module-static
symbols are qualified as ``module::name`` by the frontend, which keeps
the IL itself free of scoping rules.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .errors import SymbolError


class GlobalVar:
    """A global scalar (size == 1) or array (size > 1) of i64."""

    __slots__ = ("name", "size", "init", "defining_module", "exported")

    def __init__(
        self,
        name: str,
        size: int = 1,
        init: Optional[Sequence[int]] = None,
        defining_module: str = "",
        exported: bool = True,
    ) -> None:
        if size < 1:
            raise SymbolError("global %s has non-positive size %d" % (name, size))
        self.name = name
        self.size = size
        if init is None:
            self.init: Tuple[int, ...] = (0,) * size
        else:
            values = tuple(int(v) for v in init)
            if len(values) != size:
                raise SymbolError(
                    "global %s: init length %d != size %d"
                    % (name, len(values), size)
                )
            self.init = values
        self.defining_module = defining_module
        self.exported = exported

    @property
    def is_array(self) -> bool:
        return self.size > 1

    def copy(self) -> "GlobalVar":
        return GlobalVar(
            self.name, self.size, self.init, self.defining_module, self.exported
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GlobalVar):
            return NotImplemented
        return (
            self.name == other.name
            and self.size == other.size
            and self.init == other.init
            and self.defining_module == other.defining_module
            and self.exported == other.exported
        )

    def __repr__(self) -> str:
        kind = "array[%d]" % self.size if self.is_array else "scalar"
        return "<GlobalVar %s %s>" % (self.name, kind)


class ModuleSymbolTable:
    """Symbols defined by one module (a transitory NAIM object).

    Tracks global variables defined here and the names of routines the
    module defines; external references are recorded so the linker can
    resolve them without loading the module body.
    """

    __slots__ = ("module_name", "globals", "routine_names", "extern_refs")

    def __init__(self, module_name: str) -> None:
        self.module_name = module_name
        self.globals: Dict[str, GlobalVar] = {}
        self.routine_names: List[str] = []
        self.extern_refs: List[str] = []

    def define_global(self, var: GlobalVar) -> GlobalVar:
        if var.name in self.globals:
            raise SymbolError(
                "duplicate global %s in module %s" % (var.name, self.module_name)
            )
        var.defining_module = self.module_name
        self.globals[var.name] = var
        return var

    def add_routine(self, name: str) -> None:
        if name in self.routine_names:
            raise SymbolError(
                "duplicate routine %s in module %s" % (name, self.module_name)
            )
        self.routine_names.append(name)

    def record_extern(self, name: str) -> None:
        if name not in self.extern_refs:
            self.extern_refs.append(name)

    def symbol_count(self) -> int:
        return len(self.globals) + len(self.routine_names) + len(self.extern_refs)

    def copy(self) -> "ModuleSymbolTable":
        clone = ModuleSymbolTable(self.module_name)
        clone.globals = {name: var.copy() for name, var in self.globals.items()}
        clone.routine_names = list(self.routine_names)
        clone.extern_refs = list(self.extern_refs)
        return clone

    def __repr__(self) -> str:
        return "<ModuleSymbolTable %s (%d globals, %d routines)>" % (
            self.module_name,
            len(self.globals),
            len(self.routine_names),
        )


class ProgramSymbolTable:
    """The always-resident program-wide symbol table.

    Owns PID numbering: every program-level symbol (global variable or
    routine) gets a small dense integer used by relocatable (compacted)
    object encodings instead of raw name strings.  PIDs are assigned in
    deterministic insertion order so identical inputs produce identical
    encodings (paper section 6.2 on reproducibility).
    """

    def __init__(self) -> None:
        self.globals: Dict[str, GlobalVar] = {}
        self.routines: Dict[str, str] = {}  # routine name -> defining module
        self._pid_by_name: Dict[str, int] = {}
        self._name_by_pid: List[str] = []

    # -- Definition ---------------------------------------------------------

    def define_global(self, var: GlobalVar) -> None:
        existing = self.globals.get(var.name)
        if existing is not None:
            raise SymbolError(
                "duplicate definition of global %s (modules %s and %s)"
                % (var.name, existing.defining_module, var.defining_module)
            )
        self.globals[var.name] = var
        self._intern(var.name)

    def define_routine(self, name: str, module_name: str) -> None:
        if name in self.routines:
            raise SymbolError(
                "duplicate definition of routine %s (modules %s and %s)"
                % (name, self.routines[name], module_name)
            )
        self.routines[name] = module_name
        self._intern(name)

    def _intern(self, name: str) -> int:
        if name not in self._pid_by_name:
            self._pid_by_name[name] = len(self._name_by_pid)
            self._name_by_pid.append(name)
        return self._pid_by_name[name]

    # -- PID lookups (used by NAIM compaction) -------------------------------

    def pid_of(self, name: str) -> int:
        """Return the PID for ``name``, interning it if new."""
        return self._intern(name)

    def name_of(self, pid: int) -> str:
        try:
            return self._name_by_pid[pid]
        except IndexError:
            raise SymbolError("unknown PID %d" % pid)

    # -- Queries --------------------------------------------------------------

    def lookup_global(self, name: str) -> GlobalVar:
        try:
            return self.globals[name]
        except KeyError:
            raise SymbolError("unresolved global symbol %s" % name)

    def lookup_routine_module(self, name: str) -> str:
        try:
            return self.routines[name]
        except KeyError:
            raise SymbolError("unresolved routine symbol %s" % name)

    def has_routine(self, name: str) -> bool:
        return name in self.routines

    def has_global(self, name: str) -> bool:
        return name in self.globals

    def all_global_names(self) -> List[str]:
        return list(self.globals)

    def symbol_count(self) -> int:
        return len(self.globals) + len(self.routines)

    @staticmethod
    def build(module_tables: Iterable[ModuleSymbolTable]) -> "ProgramSymbolTable":
        """Construct the program table from per-module tables."""
        table = ProgramSymbolTable()
        for mod_table in module_tables:
            for var in mod_table.globals.values():
                table.define_global(var)
            for routine_name in mod_table.routine_names:
                table.define_routine(routine_name, mod_table.module_name)
        return table
