"""Basic blocks of the IL control-flow graph."""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from .errors import VerifierError
from .instructions import Instr, Opcode


class BasicBlock:
    """A labelled, single-entry straight-line sequence of instructions.

    The last instruction must be a terminator (``RET``, ``BR`` or
    ``JMP``) once the containing routine is finalized; during
    construction a block may temporarily lack one.
    """

    __slots__ = ("label", "instrs")

    def __init__(self, label: str, instrs: Optional[List[Instr]] = None) -> None:
        self.label = label
        self.instrs: List[Instr] = list(instrs) if instrs else []

    # -- Terminator handling ------------------------------------------------

    @property
    def terminator(self) -> Optional[Instr]:
        """The block's terminator instruction, or None if unterminated."""
        if self.instrs and self.instrs[-1].is_terminator():
            return self.instrs[-1]
        return None

    def is_terminated(self) -> bool:
        return self.terminator is not None

    def successors(self) -> Tuple[str, ...]:
        """Labels of successor blocks (empty for RET / unterminated)."""
        term = self.terminator
        if term is None or term.op is Opcode.RET:
            return ()
        return term.targets

    def body(self) -> List[Instr]:
        """Instructions excluding the terminator."""
        if self.is_terminated():
            return self.instrs[:-1]
        return list(self.instrs)

    # -- Mutation helpers ---------------------------------------------------

    def append(self, instr: Instr) -> None:
        if self.is_terminated():
            raise VerifierError(
                "appending %r after terminator in block %s" % (instr.op, self.label)
            )
        self.instrs.append(instr)

    def set_terminator(self, instr: Instr) -> None:
        if not instr.is_terminator():
            raise VerifierError("%r is not a terminator" % (instr.op,))
        if self.is_terminated():
            self.instrs[-1] = instr
        else:
            self.instrs.append(instr)

    def retarget(self, old_label: str, new_label: str) -> None:
        """Replace successor label ``old_label`` with ``new_label``."""
        term = self.terminator
        if term is None:
            return
        term.targets = tuple(
            new_label if t == old_label else t for t in term.targets
        )

    # -- Queries ------------------------------------------------------------

    def calls(self) -> Iterator[Tuple[int, Instr]]:
        """Yield (index, instr) for every CALL in the block."""
        for index, instr in enumerate(self.instrs):
            if instr.op is Opcode.CALL:
                yield index, instr

    def copy(self) -> "BasicBlock":
        return BasicBlock(self.label, [instr.copy() for instr in self.instrs])

    def __len__(self) -> int:
        return len(self.instrs)

    def __repr__(self) -> str:
        return "<BasicBlock %s (%d instrs)>" % (self.label, len(self.instrs))
