"""Textual IL parser (inverse of :mod:`repro.ir.printer`).

Useful for writing tests and for dumping/restoring IL by hand.  This is
*not* the NAIM relocatable form (that is a binary encoding in
:mod:`repro.naim.compaction`); it is a human-readable exchange format.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .basic_block import BasicBlock
from .errors import ParseError
from .instructions import BINARY_OPS, Instr, Opcode
from .module import Module
from .routine import Routine

_ROUTINE_RE = re.compile(
    r"^routine\s+([A-Za-z_][\w:]*)\((\d+)\)\s+(exported|static)\s+lines=(\d+)\s*\{$"
)
_GLOBAL_SCALAR_RE = re.compile(
    r"^global\s+([A-Za-z_][\w:]*)\s+(exported|static)\s*=\s*(-?\d+)$"
)
_GLOBAL_ARRAY_RE = re.compile(
    r"^global\s+([A-Za-z_][\w:]*)\[(\d+)\]\s+(exported|static)\s*=\s*\[(.*)\]$"
)
_LABEL_RE = re.compile(r"^([A-Za-z_]\w*):$")
_REG_RE = re.compile(r"^r(\d+)$")

_OPCODE_BY_NAME = {op.value: op for op in Opcode}


def _reg(token: str, line_no: int) -> int:
    match = _REG_RE.match(token.strip())
    if not match:
        raise ParseError("line %d: expected register, got %r" % (line_no, token))
    return int(match.group(1))


def _split_args(text: str, line_no: int) -> Tuple[int, ...]:
    text = text.strip()
    if not text:
        return ()
    return tuple(_reg(part, line_no) for part in text.split(","))


def parse_instr(text: str, line_no: int = 0) -> Instr:
    """Parse one instruction line."""
    text = text.strip()
    dst: Optional[int] = None
    if "=" in text and not text.startswith(("storeg", "storee")):
        lhs, rhs = text.split("=", 1)
        dst = _reg(lhs, line_no)
        text = rhs.strip()

    parts = text.split(None, 1)
    if not parts:
        raise ParseError("line %d: empty instruction" % line_no)
    op_name, rest = parts[0], (parts[1] if len(parts) > 1 else "")
    op = _OPCODE_BY_NAME.get(op_name)
    if op is None:
        raise ParseError("line %d: unknown opcode %r" % (line_no, op_name))

    if op is Opcode.CONST:
        return Instr(op, dst=dst, imm=int(rest))
    if op in (Opcode.MOV, Opcode.NEG, Opcode.NOT):
        return Instr(op, dst=dst, a=_reg(rest, line_no))
    if op in BINARY_OPS:
        a_text, b_text = rest.split(",")
        return Instr(op, dst=dst, a=_reg(a_text, line_no), b=_reg(b_text, line_no))
    if op is Opcode.LOADG:
        sym = rest.strip().lstrip("@")
        return Instr(op, dst=dst, sym=sym)
    if op is Opcode.STOREG:
        sym_text, reg_text = rest.split(",")
        return Instr(op, sym=sym_text.strip().lstrip("@"), a=_reg(reg_text, line_no))
    if op is Opcode.LOADE:
        match = re.match(r"^@([\w:]+)\[(r\d+)\]$", rest.strip())
        if not match:
            raise ParseError("line %d: bad loade %r" % (line_no, rest))
        return Instr(op, dst=dst, sym=match.group(1), a=_reg(match.group(2), line_no))
    if op is Opcode.STOREE:
        match = re.match(r"^@([\w:]+)\[(r\d+)\]\s*,\s*(r\d+)$", rest.strip())
        if not match:
            raise ParseError("line %d: bad storee %r" % (line_no, rest))
        return Instr(
            op,
            sym=match.group(1),
            a=_reg(match.group(2), line_no),
            b=_reg(match.group(3), line_no),
        )
    if op is Opcode.CALL:
        match = re.match(r"^@([\w:]+)\((.*)\)$", rest.strip())
        if not match:
            raise ParseError("line %d: bad call %r" % (line_no, rest))
        return Instr(
            op,
            dst=dst,
            sym=match.group(1),
            args=_split_args(match.group(2), line_no),
        )
    if op is Opcode.RET:
        rest = rest.strip()
        return Instr(op, a=_reg(rest, line_no) if rest else None)
    if op is Opcode.BR:
        cond_text, t_label, f_label = (part.strip() for part in rest.split(","))
        return Instr(op, a=_reg(cond_text, line_no), targets=(t_label, f_label))
    if op is Opcode.JMP:
        return Instr(op, targets=(rest.strip(),))
    if op is Opcode.PROBE:
        return Instr(op, imm=int(rest))
    raise ParseError("line %d: cannot parse %r" % (line_no, text))


def parse_routine(lines: List[str], start: int = 0) -> Tuple[Routine, int]:
    """Parse a routine beginning at ``lines[start]``; return (routine, next)."""
    header = lines[start].strip()
    match = _ROUTINE_RE.match(header)
    if not match:
        raise ParseError("line %d: bad routine header %r" % (start + 1, header))
    routine = Routine(
        match.group(1),
        n_params=int(match.group(2)),
        exported=match.group(3) == "exported",
        source_lines=int(match.group(4)),
    )
    current: Optional[BasicBlock] = None
    max_reg = routine.n_params - 1
    index = start + 1
    while index < len(lines):
        text = lines[index].strip()
        index += 1
        if not text or text.startswith("#"):
            continue
        if text == "}":
            if current is None:
                raise ParseError("line %d: routine with no blocks" % index)
            routine.next_reg = max_reg + 1
            routine.invalidate()
            return routine, index
        label_match = _LABEL_RE.match(text)
        if label_match:
            current = BasicBlock(label_match.group(1))
            routine.blocks.append(current)
            continue
        if current is None:
            raise ParseError("line %d: instruction before any label" % index)
        instr = parse_instr(text, index)
        for reg in instr.uses():
            max_reg = max(max_reg, reg)
        if instr.dst is not None:
            max_reg = max(max_reg, instr.dst)
        current.instrs.append(instr)
    raise ParseError("unterminated routine %s" % routine.name)


def parse_module(text: str) -> Module:
    """Parse a whole module dump produced by ``format_module``."""
    lines = text.splitlines()
    module: Optional[Module] = None
    index = 0
    while index < len(lines):
        stripped = lines[index].strip()
        if not stripped or stripped.startswith("#"):
            index += 1
            continue
        if stripped.startswith("module "):
            module = Module(stripped.split(None, 1)[1].strip())
            index += 1
            continue
        if module is None:
            raise ParseError("line %d: content before module header" % (index + 1))
        scalar = _GLOBAL_SCALAR_RE.match(stripped)
        if scalar:
            module.define_global(
                scalar.group(1),
                init=[int(scalar.group(3))],
                exported=scalar.group(2) == "exported",
            )
            index += 1
            continue
        array = _GLOBAL_ARRAY_RE.match(stripped)
        if array:
            init_text = array.group(4).strip()
            init = [int(v) for v in init_text.split(",")] if init_text else []
            module.define_global(
                array.group(1),
                size=int(array.group(2)),
                init=init,
                exported=array.group(3) == "exported",
            )
            index += 1
            continue
        if stripped.startswith("routine "):
            routine, index = parse_routine(lines, index)
            module.add_routine(routine)
            continue
        raise ParseError("line %d: unexpected %r" % (index + 1, stripped))
    if module is None:
        raise ParseError("no module header found")
    return module
