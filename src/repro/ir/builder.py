"""A convenience builder for constructing IL routines programmatically.

Used by the frontend lowering, the synthetic-application generator and
by tests.  The builder maintains a current insertion block and hands out
fresh virtual registers.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .basic_block import BasicBlock
from .errors import IRError
from .instructions import BINARY_OPS, UNARY_OPS, Instr, Opcode
from .routine import Routine


class IRBuilder:
    """Builds one routine, block by block."""

    def __init__(self, routine: Routine) -> None:
        self.routine = routine
        if not routine.blocks:
            routine.new_block("entry")
        self._block: BasicBlock = routine.blocks[0]

    # -- Block control --------------------------------------------------------

    @property
    def block(self) -> BasicBlock:
        return self._block

    def new_block(self, hint: str = "bb") -> BasicBlock:
        return self.routine.new_block(hint)

    def position_at(self, block: BasicBlock) -> None:
        self._block = block

    def is_terminated(self) -> bool:
        return self._block.is_terminated()

    # -- Instruction emission -------------------------------------------------

    def emit(self, instr: Instr) -> Instr:
        self._block.append(instr)
        return instr

    def const(self, value: int) -> int:
        dst = self.routine.new_reg()
        self.emit(Instr(Opcode.CONST, dst=dst, imm=int(value)))
        return dst

    def emit_const_into(self, dst: int, value: int) -> int:
        """Emit ``dst = const value`` into an existing register."""
        self.emit(Instr(Opcode.CONST, dst=dst, imm=int(value)))
        return dst

    def mov(self, src: int, dst: Optional[int] = None) -> int:
        if dst is None:
            dst = self.routine.new_reg()
        self.emit(Instr(Opcode.MOV, dst=dst, a=src))
        return dst

    def binop(self, op: Opcode, a: int, b: int, dst: Optional[int] = None) -> int:
        if op not in BINARY_OPS:
            raise IRError("%s is not a binary opcode" % op)
        if dst is None:
            dst = self.routine.new_reg()
        self.emit(Instr(op, dst=dst, a=a, b=b))
        return dst

    def unop(self, op: Opcode, a: int, dst: Optional[int] = None) -> int:
        if op not in UNARY_OPS:
            raise IRError("%s is not a unary opcode" % op)
        if dst is None:
            dst = self.routine.new_reg()
        self.emit(Instr(op, dst=dst, a=a))
        return dst

    # Shorthand binary helpers (the most common ones).

    def add(self, a: int, b: int) -> int:
        return self.binop(Opcode.ADD, a, b)

    def sub(self, a: int, b: int) -> int:
        return self.binop(Opcode.SUB, a, b)

    def mul(self, a: int, b: int) -> int:
        return self.binop(Opcode.MUL, a, b)

    def lt(self, a: int, b: int) -> int:
        return self.binop(Opcode.LT, a, b)

    def eq(self, a: int, b: int) -> int:
        return self.binop(Opcode.EQ, a, b)

    # -- Memory -----------------------------------------------------------------

    def load_global(self, sym: str) -> int:
        dst = self.routine.new_reg()
        self.emit(Instr(Opcode.LOADG, dst=dst, sym=sym))
        return dst

    def store_global(self, sym: str, src: int) -> None:
        self.emit(Instr(Opcode.STOREG, a=src, sym=sym))

    def load_elem(self, sym: str, index: int) -> int:
        dst = self.routine.new_reg()
        self.emit(Instr(Opcode.LOADE, dst=dst, a=index, sym=sym))
        return dst

    def store_elem(self, sym: str, index: int, value: int) -> None:
        self.emit(Instr(Opcode.STOREE, a=index, b=value, sym=sym))

    # -- Calls --------------------------------------------------------------------

    def call(
        self, callee: str, args: Sequence[int] = (), want_result: bool = True
    ) -> Optional[int]:
        dst = self.routine.new_reg() if want_result else None
        self.emit(Instr(Opcode.CALL, dst=dst, sym=callee, args=tuple(args)))
        return dst

    # -- Terminators ------------------------------------------------------------

    def ret(self, value: Optional[int] = None) -> None:
        self._block.set_terminator(Instr(Opcode.RET, a=value))

    def br(self, cond: int, if_true: BasicBlock, if_false: BasicBlock) -> None:
        self._block.set_terminator(
            Instr(Opcode.BR, a=cond, targets=(if_true.label, if_false.label))
        )

    def jmp(self, target: BasicBlock) -> None:
        self._block.set_terminator(Instr(Opcode.JMP, targets=(target.label,)))

    # -- Finishing ---------------------------------------------------------------

    def finish(self) -> Routine:
        """Validate terminators and return the routine."""
        for block in self.routine.blocks:
            if not block.is_terminated():
                raise IRError(
                    "block %s of %s lacks a terminator"
                    % (block.label, self.routine.name)
                )
        self.routine.invalidate()
        return self.routine
