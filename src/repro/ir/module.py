"""Modules: the unit of separate compilation."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .errors import SymbolError
from .routine import Routine
from .symbols import GlobalVar, ModuleSymbolTable


class Module:
    """One separately-compiled translation unit lowered to IL.

    A module owns its routines and its symbol table.  ``source_lines``
    is the line count of the originating source file; it drives the
    memory-model calibration and the "lines of code optimized" axes of
    the paper's figures.
    """

    def __init__(self, name: str, source_lines: int = 0) -> None:
        self.name = name
        self.routines: Dict[str, Routine] = {}
        self.symtab = ModuleSymbolTable(name)
        self._explicit_source_lines = source_lines

    # -- Construction ---------------------------------------------------------

    def add_routine(self, routine: Routine) -> Routine:
        if routine.name in self.routines:
            raise SymbolError(
                "duplicate routine %s in module %s" % (routine.name, self.name)
            )
        routine.module_name = self.name
        self.routines[routine.name] = routine
        self.symtab.add_routine(routine.name)
        return routine

    def define_global(
        self,
        name: str,
        size: int = 1,
        init: Optional[Iterable[int]] = None,
        exported: bool = True,
    ) -> GlobalVar:
        var = GlobalVar(
            name,
            size=size,
            init=tuple(init) if init is not None else None,
            defining_module=self.name,
            exported=exported,
        )
        return self.symtab.define_global(var)

    # -- Queries --------------------------------------------------------------

    @property
    def source_lines(self) -> int:
        if self._explicit_source_lines:
            return self._explicit_source_lines
        return sum(r.source_lines for r in self.routines.values())

    @source_lines.setter
    def source_lines(self, value: int) -> None:
        self._explicit_source_lines = value

    def routine_list(self) -> List[Routine]:
        """Routines in deterministic (insertion) order."""
        return list(self.routines.values())

    def instr_count(self) -> int:
        return sum(r.instr_count() for r in self.routines.values())

    def external_callees(self) -> List[str]:
        """Names called by this module but not defined in it."""
        defined = set(self.routines)
        seen: Dict[str, None] = {}
        for routine in self.routines.values():
            for callee in routine.callees():
                if callee not in defined:
                    seen.setdefault(callee)
        return list(seen)

    def copy(self) -> "Module":
        """Deep copy (the linker optimizes a copy so objects stay pristine)."""
        clone = Module(self.name, source_lines=self._explicit_source_lines)
        clone.symtab = self.symtab.copy()
        clone.routines = {
            name: routine.copy() for name, routine in self.routines.items()
        }
        for routine in clone.routines.values():
            routine.module_name = self.name
        return clone

    def __repr__(self) -> str:
        return "<Module %s (%d routines, %d lines)>" % (
            self.name,
            len(self.routines),
            self.source_lines,
        )
