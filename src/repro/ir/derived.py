"""Derived-data cache (paper section 4.1).

HLO distinguishes three classes of data: *global* (always resident),
*transitory* (per-module/per-routine, relocatable) and *derived* (results
of analyses).  Early in HLO's development the authors adopted the
discipline that derived data is always **recomputed from scratch** rather
than kept incrementally up to date, so it can be freely discarded --
e.g. when a routine is compacted and unloaded -- and rebuilt on demand.

:class:`DerivedCache` enforces exactly that discipline: analyses register
a compute function, results are memoized, and any IR mutation (or NAIM
unload) calls :meth:`invalidate` to drop everything.
"""

from __future__ import annotations

from typing import Any, Callable, Dict


class DerivedCache:
    """Memoized analysis results attached to a routine.

    Results are never updated in place; mutating the underlying IR must
    invalidate the whole cache.
    """

    __slots__ = ("_results", "recompute_count", "invalidate_count")

    def __init__(self) -> None:
        self._results: Dict[str, Any] = {}
        #: Number of analysis recomputations (observable for NAIM costing).
        self.recompute_count = 0
        #: Number of invalidations.
        self.invalidate_count = 0

    def get(self, key: str, compute: Callable[[], Any]) -> Any:
        """Return the cached result for ``key``, computing it if absent."""
        if key not in self._results:
            self._results[key] = compute()
            self.recompute_count += 1
        return self._results[key]

    def peek(self, key: str) -> Any:
        """Return the cached result for ``key`` or None (no compute)."""
        return self._results.get(key)

    def invalidate(self) -> None:
        """Drop every derived result (on mutation or unload)."""
        if self._results:
            self.invalidate_count += 1
            self._results.clear()

    def __contains__(self, key: str) -> bool:
        return key in self._results

    def __len__(self) -> int:
        return len(self._results)
