"""The program call graph (a global, always-resident object)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .program import Program


class CallSite:
    """One static call site: caller routine + position + callee name.

    ``weight`` is the dynamic call count once a profile is attached
    (zero otherwise); selectivity ranks sites by this weight.
    """

    __slots__ = ("caller", "block_label", "instr_index", "callee", "weight")

    def __init__(
        self,
        caller: str,
        block_label: str,
        instr_index: int,
        callee: str,
        weight: int = 0,
    ) -> None:
        self.caller = caller
        self.block_label = block_label
        self.instr_index = instr_index
        self.callee = callee
        self.weight = weight

    def key(self) -> Tuple[str, str, int]:
        return (self.caller, self.block_label, self.instr_index)

    def __repr__(self) -> str:
        return "<CallSite %s:%s[%d] -> %s (w=%d)>" % (
            self.caller,
            self.block_label,
            self.instr_index,
            self.callee,
            self.weight,
        )


class CallGraphNode:
    """Per-routine call-graph node."""

    __slots__ = ("name", "module_name", "call_sites", "caller_names")

    def __init__(self, name: str, module_name: str) -> None:
        self.name = name
        self.module_name = module_name
        #: Outgoing call sites, in routine order.
        self.call_sites: List[CallSite] = []
        #: Names of routines that call this one (deduplicated, ordered).
        self.caller_names: List[str] = []

    def callees(self) -> List[str]:
        seen: Dict[str, None] = {}
        for site in self.call_sites:
            seen.setdefault(site.callee)
        return list(seen)

    def __repr__(self) -> str:
        return "<CallGraphNode %s (%d sites)>" % (self.name, len(self.call_sites))


class CallGraph:
    """Static call graph with optional profile weights on call sites."""

    def __init__(self) -> None:
        self.nodes: Dict[str, CallGraphNode] = {}

    @staticmethod
    def build(program: "Program") -> "CallGraph":
        graph = CallGraph()
        for module in program.module_list():
            for routine in module.routine_list():
                graph.nodes[routine.name] = CallGraphNode(routine.name, module.name)
        for module in program.module_list():
            for routine in module.routine_list():
                node = graph.nodes[routine.name]
                for block_label, index, callee in routine.call_sites():
                    node.call_sites.append(
                        CallSite(routine.name, block_label, index, callee)
                    )
                    target = graph.nodes.get(callee)
                    if target is not None and routine.name not in target.caller_names:
                        target.caller_names.append(routine.name)
        return graph

    # -- Queries ------------------------------------------------------------

    def node(self, name: str) -> CallGraphNode:
        return self.nodes[name]

    def __contains__(self, name: str) -> bool:
        return name in self.nodes

    def all_sites(self) -> Iterator[CallSite]:
        for node in self.nodes.values():
            for site in node.call_sites:
                yield site

    def sites_ranked_by_weight(self) -> List[CallSite]:
        """All call sites, heaviest first; ties broken deterministically.

        This is the ordering coarse-grained selectivity uses (paper §5):
        never by object identity or address, so compiles are reproducible.
        """
        return sorted(
            self.all_sites(),
            key=lambda s: (-s.weight, s.caller, s.block_label, s.instr_index),
        )

    def is_recursive(self, name: str, _limit: int = 10000) -> bool:
        """True if ``name`` can reach itself through call edges."""
        stack = [name]
        seen = set()
        steps = 0
        while stack:
            current = stack.pop()
            node = self.nodes.get(current)
            if node is None:
                continue
            for callee in node.callees():
                steps += 1
                if steps > _limit:
                    return True  # assume the worst on huge graphs
                if callee == name:
                    return True
                if callee not in seen:
                    seen.add(callee)
                    stack.append(callee)
        return False

    def topo_order_bottom_up(self) -> List[str]:
        """Routine names ordered callees-before-callers (cycles broken).

        The inliner processes routines bottom-up so that inlined bodies
        are already optimized.
        """
        state: Dict[str, int] = {}  # 0=unvisited 1=in-stack 2=done
        order: List[str] = []

        for root in self.nodes:
            if state.get(root, 0) == 2:
                continue
            stack: List[Tuple[str, Iterator[str]]] = []
            state[root] = 1
            stack.append((root, iter(self.nodes[root].callees())))
            while stack:
                name, it = stack[-1]
                advanced = False
                for callee in it:
                    if callee in self.nodes and state.get(callee, 0) == 0:
                        state[callee] = 1
                        stack.append((callee, iter(self.nodes[callee].callees())))
                        advanced = True
                        break
                if not advanced:
                    stack.pop()
                    state[name] = 2
                    order.append(name)
        return order

    def attach_weights(self, weight_of: "Dict[Tuple[str, str, int], int]") -> None:
        """Set call-site weights from a {site key: count} mapping."""
        for site in self.all_sites():
            site.weight = weight_of.get(site.key(), 0)

    def total_call_weight(self) -> int:
        return sum(site.weight for site in self.all_sites())

    def __repr__(self) -> str:
        return "<CallGraph (%d nodes)>" % len(self.nodes)
