"""Textual IL printer (round-trips with :mod:`repro.ir.parser`).

Format example::

    routine fib(2) exported lines=7 {
    entry0:
        r2 = const 1
        r3 = le r0, r2
        br r3, base, rec
    base:
        ret r0
    rec:
        ...
    }
"""

from __future__ import annotations

from typing import List

from .basic_block import BasicBlock
from .instructions import BINARY_OPS, Instr, Opcode
from .module import Module
from .routine import Routine


def format_instr(instr: Instr) -> str:
    """Render one instruction as text."""
    op = instr.op
    name = op.value
    if op is Opcode.CONST:
        return "r%d = const %d" % (instr.dst, instr.imm)
    if op is Opcode.MOV or op in (Opcode.NEG, Opcode.NOT):
        return "r%d = %s r%d" % (instr.dst, name, instr.a)
    if op in BINARY_OPS:
        return "r%d = %s r%d, r%d" % (instr.dst, name, instr.a, instr.b)
    if op is Opcode.LOADG:
        return "r%d = loadg @%s" % (instr.dst, instr.sym)
    if op is Opcode.STOREG:
        return "storeg @%s, r%d" % (instr.sym, instr.a)
    if op is Opcode.LOADE:
        return "r%d = loade @%s[r%d]" % (instr.dst, instr.sym, instr.a)
    if op is Opcode.STOREE:
        return "storee @%s[r%d], r%d" % (instr.sym, instr.a, instr.b)
    if op is Opcode.CALL:
        args = ", ".join("r%d" % r for r in instr.args)
        if instr.dst is not None:
            return "r%d = call @%s(%s)" % (instr.dst, instr.sym, args)
        return "call @%s(%s)" % (instr.sym, args)
    if op is Opcode.RET:
        if instr.a is not None:
            return "ret r%d" % instr.a
        return "ret"
    if op is Opcode.BR:
        return "br r%d, %s, %s" % (instr.a, instr.targets[0], instr.targets[1])
    if op is Opcode.JMP:
        return "jmp %s" % instr.targets[0]
    if op is Opcode.PROBE:
        return "probe %d" % instr.imm
    raise ValueError("unprintable opcode %s" % op)


def format_block(block: BasicBlock, indent: str = "    ") -> str:
    lines = ["%s:" % block.label]
    for instr in block.instrs:
        lines.append(indent + format_instr(instr))
    return "\n".join(lines)


def format_routine(routine: Routine) -> str:
    """Render one routine as parseable text."""
    header = "routine %s(%d)%s lines=%d {" % (
        routine.name,
        routine.n_params,
        " exported" if routine.exported else " static",
        routine.source_lines,
    )
    parts: List[str] = [header]
    for block in routine.blocks:
        parts.append(format_block(block))
    parts.append("}")
    return "\n".join(parts)


def format_module(module: Module) -> str:
    """Render a whole module (globals + routines) as parseable text."""
    parts: List[str] = ["module %s" % module.name, ""]
    for var in module.symtab.globals.values():
        kind = "exported" if var.exported else "static"
        if var.is_array:
            init = ", ".join(str(v) for v in var.init)
            parts.append("global %s[%d] %s = [%s]" % (var.name, var.size, kind, init))
        else:
            parts.append("global %s %s = %d" % (var.name, kind, var.init[0]))
    if module.symtab.globals:
        parts.append("")
    for routine in module.routine_list():
        parts.append(format_routine(routine))
        parts.append("")
    return "\n".join(parts)
