"""Farm transport: authenticated NDJSON over TCP.

The wire format is the serve protocol's length-bounded NDJSON framing
(:mod:`repro.serve.protocol`), generalized from a UNIX socket to TCP
plus one **hello** exchange before anything else:

* connector -> listener: ``{"farm": 1, "role": ..., "token": ...}``
* listener -> connector: ``{"ok": true, "role": ...}`` or
  ``{"ok": false, "error": ...}`` followed by a close.

Roles are ``client`` (one build request, the existing protocol),
``worker`` (a job loop driven by the coordinator) and ``store``
(repository requests against the shared artifact store).  Tokens are
compared with :func:`hmac.compare_digest`; the default token is
generated once per coordinator root and readable only by its owner,
so same-user-same-host setups (tests, CI, the benchmark) need no
explicit secret handling.

Per-connection read limits: the hello must fit
:data:`HELLO_MAX_BYTES` -- an unauthenticated peer cannot make the
coordinator buffer a quarter-gigabyte line -- while authenticated
streams use the protocol-wide limit.
"""

from __future__ import annotations

import hmac
import os
import secrets
import socket
from typing import Dict, Optional, Tuple

from ..serve.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    read_message,
    write_message,
)

#: Farm handshake version.
FARM_VERSION = 1

#: Connection roles.
ROLE_CLIENT = "client"
ROLE_WORKER = "worker"
ROLE_STORE = "store"
ROLES = (ROLE_CLIENT, ROLE_WORKER, ROLE_STORE)

#: Read limit for the unauthenticated hello line.
HELLO_MAX_BYTES = 64 * 1024

#: Name of the auto-generated shared-secret file under the
#: coordinator's state root.
TOKEN_FILENAME = "farm.token"


class AuthError(Exception):
    """A hello that must not be honoured (bad token, role, version)."""


def parse_endpoint(endpoint: str,
                   default_port: int = 7633) -> Tuple[str, int]:
    """``"host:port"`` (or bare ``"host"``) -> ``(host, port)``."""
    text = endpoint.strip()
    if not text:
        raise ValueError("empty farm endpoint")
    if ":" in text:
        host, _, port_text = text.rpartition(":")
        try:
            port = int(port_text)
        except ValueError:
            raise ValueError("bad farm endpoint %r" % endpoint)
    else:
        host, port = text, default_port
    if not 0 <= port <= 65535:
        raise ValueError("bad farm port %d" % port)
    return host or "127.0.0.1", port


# -- Tokens ------------------------------------------------------------------------


def token_path(root: str) -> str:
    return os.path.join(root, TOKEN_FILENAME)


def ensure_token(root: str) -> str:
    """The root's shared secret, generating it on first use (0600)."""
    path = token_path(root)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            token = handle.read().strip()
        if token:
            return token
    except OSError:
        pass
    os.makedirs(root, exist_ok=True)
    token = secrets.token_hex(16)
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o600)
    try:
        os.write(fd, (token + "\n").encode("ascii"))
    finally:
        os.close(fd)
    return token


def resolve_token(explicit: Optional[str],
                  root: Optional[str] = None) -> Optional[str]:
    """Token precedence: explicit flag, ``$REPRO_FARM_TOKEN``, the
    root's token file (created if missing), else None."""
    if explicit:
        return explicit
    env = os.environ.get("REPRO_FARM_TOKEN")
    if env:
        return env
    if root is not None:
        return ensure_token(root)
    return None


# -- Hello exchange ----------------------------------------------------------------


def make_hello(role: str, token: Optional[str], **fields) -> Dict:
    hello = {"farm": FARM_VERSION, "role": role,
             "token": token or ""}
    hello.update(fields)
    return hello


def check_hello(hello: Dict, token: Optional[str]) -> str:
    """Validate an incoming hello; returns its role.

    Raises :class:`AuthError` on version skew, unknown roles, or a
    token mismatch (constant-time compare)."""
    if hello.get("farm") != FARM_VERSION:
        raise AuthError(
            "unsupported farm version %r (coordinator speaks %d)"
            % (hello.get("farm"), FARM_VERSION)
        )
    role = hello.get("role")
    if role not in ROLES:
        raise AuthError("unknown role %r" % role)
    offered = hello.get("token")
    if not isinstance(offered, str):
        raise AuthError("missing token")
    if not hmac.compare_digest(offered, token or ""):
        raise AuthError("bad token")
    return role


def connect(host: str, port: int, role: str, token: Optional[str],
            timeout: Optional[float] = 10.0,
            **fields) -> Tuple[socket.socket, "socket.SocketIO"]:
    """Dial the coordinator and authenticate; returns (socket, stream).

    The returned stream (``makefile("rwb")``) has the hello already
    exchanged and acknowledged; callers speak their role's protocol
    from the first byte.  Raises :class:`AuthError` when the
    coordinator refuses the hello and :class:`OSError` for transport
    failures."""
    conn = socket.create_connection((host, port), timeout=timeout)
    try:
        stream = conn.makefile("rwb")
        write_message(stream, make_hello(role, token, **fields),
                      max_bytes=HELLO_MAX_BYTES)
        try:
            answer = read_message(stream, max_bytes=HELLO_MAX_BYTES)
        except ProtocolError as exc:
            raise AuthError("bad coordinator handshake: %s" % exc)
        if answer is None:
            raise AuthError("coordinator closed during handshake")
        if not answer.get("ok"):
            raise AuthError(
                answer.get("error", "coordinator refused the connection")
            )
        return conn, stream
    except BaseException:
        conn.close()
        raise


def serve_hello(stream, token: Optional[str]) -> Optional[Dict]:
    """Listener side: read + check one hello, answer it.

    Returns the hello dict on success; None when the peer failed
    authentication or sent garbage (an answer saying why was already
    written when possible)."""
    try:
        hello = read_message(stream, max_bytes=HELLO_MAX_BYTES)
    except ProtocolError as exc:
        _try_write(stream, {"ok": False, "error": str(exc)})
        return None
    if hello is None:
        return None
    try:
        role = check_hello(hello, token)
    except AuthError as exc:
        _try_write(stream, {"ok": False, "error": str(exc)})
        return None
    if not _try_write(stream, {"ok": True, "role": role,
                               "farm": FARM_VERSION}):
        return None
    return hello


def _try_write(stream, message: Dict) -> bool:
    try:
        write_message(stream, message, max_bytes=HELLO_MAX_BYTES)
        return True
    except (OSError, ValueError, ProtocolError):
        return False
