"""The farm worker daemon: N job slots against one coordinator.

A :class:`FarmWorker` opens one **worker** connection per job slot
(``--jobs 4`` = four slots), so the coordinator's work-stealing queue
sees per-slot load and a multi-core worker host is just N workers
that happen to share a process -- plus one **store** connection per
slot for artifact traffic, kept separate so a long blob fetch never
stalls the job command stream.

Each slot loops: read a command, run the partition
(:func:`repro.part.wire.execute_partition_job` -- the exact mirror of
the in-process runner), publish the outcome to the shared store, and
reply with its content hash.  Decoded shared contexts are cached per
process (keyed by their CAS hash), so a warm rebuild's partitions
skip symbol-table reconstruction entirely; profile views are rebuilt
fresh per job because scalar passes mutate them.

Failure model: any error executing a job is reported to the
coordinator (which re-queues the partition, bounded by its retry
cap); a lost coordinator connection triggers reconnect-with-delay
forever, so workers can outlive coordinator restarts.
"""

from __future__ import annotations

import json
import os
import signal
import socket as socket_module
import sys
import threading
import time
from typing import Dict, List, Optional

from ..naim.pools import KIND_IR
from ..naim.remote import (
    CasBackedRepository,
    RemoteRepository,
    RemoteRepositoryError,
)
from ..part.wire import (
    SharedJobContext,
    decode_shared_context,
    execute_partition_job,
)
from ..serve.protocol import ProtocolError, read_message, write_message
from .store import StoreClient
from .transport import ROLE_STORE, ROLE_WORKER, AuthError, connect

#: Decoded shared contexts kept per worker process.
CONTEXT_CACHE_ENTRIES = 4


class FarmWorker:
    """N job slots connected to one coordinator (module docstring)."""

    def __init__(self, host: str, port: int,
                 token: Optional[str] = None,
                 jobs: int = 1,
                 label: Optional[str] = None,
                 reconnect_delay: float = 1.0) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.host = host
        self.port = port
        self.token = token
        self.jobs = jobs
        self.label = label or socket_module.gethostname()
        self.reconnect_delay = reconnect_delay
        self.jobs_done = 0
        self.jobs_failed = 0
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self._conns_lock = threading.Lock()
        self._conns: Dict[int, List] = {}
        self._ctx_lock = threading.Lock()
        self._ctx_cache: Dict[str, SharedJobContext] = {}
        self._ctx_order: List[str] = []

    # -- Lifecycle --------------------------------------------------------------

    def start(self) -> None:
        for slot in range(self.jobs):
            thread = threading.Thread(
                target=self._slot_main, args=(slot,), daemon=True,
                name="farm-slot-%d" % slot,
            )
            self._threads.append(thread)
            thread.start()

    def stop(self) -> None:
        """Stop every slot; safe from signal handlers."""
        self._stop.set()
        with self._conns_lock:
            conns = [conn for pair in self._conns.values()
                     for conn in pair]
            self._conns.clear()
        for conn in conns:
            # shutdown() tears the connection down even while makefile
            # streams still hold the fd, which both unblocks slots
            # parked in read_message and sends the coordinator its EOF.
            try:
                conn.shutdown(socket_module.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass

    def join(self, timeout: Optional[float] = None) -> None:
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        for thread in self._threads:
            remaining = (None if deadline is None
                         else max(0.0, deadline - time.monotonic()))
            thread.join(timeout=remaining)

    def alive(self) -> bool:
        return any(thread.is_alive() for thread in self._threads)

    # -- Slot loop --------------------------------------------------------------

    def _slot_main(self, slot: int) -> None:
        while not self._stop.is_set():
            try:
                self._serve_one_connection(slot)
            except (OSError, AuthError, ValueError,
                    ProtocolError, RemoteRepositoryError):
                pass
            if self._stop.is_set():
                return
            self._stop.wait(self.reconnect_delay)

    def _serve_one_connection(self, slot: int) -> None:
        conn, stream = connect(
            self.host, self.port, ROLE_WORKER, self.token,
            timeout=5.0, label="%s#%d" % (self.label, slot),
            pid=os.getpid(), hostname=socket_module.gethostname(),
        )
        store_conn = store_stream = None
        try:
            store_conn, store_stream = connect(
                self.host, self.port, ROLE_STORE, self.token,
                timeout=5.0,
            )
            conn.settimeout(None)
            store_conn.settimeout(None)
            with self._conns_lock:
                if self._stop.is_set():
                    return
                self._conns[slot] = [conn, store_conn]
            store = StoreClient(RemoteRepository(store_stream))
            while not self._stop.is_set():
                message = read_message(stream)
                if message is None:
                    return  # coordinator went away; reconnect
                op = message.get("op")
                if op == "ping":
                    continue
                if op == "shutdown":
                    return  # coordinator draining; retry later
                if op == "run":
                    write_message(stream, self._run_job(message, store))
        finally:
            with self._conns_lock:
                self._conns.pop(slot, None)
            # Close the makefile streams too: the socket fd stays open
            # (and the coordinator's serve thread stays parked in read)
            # until the last stream wrapper releases it.
            for closable in (stream, store_stream, conn, store_conn):
                if closable is not None:
                    try:
                        closable.close()
                    except OSError:
                        pass

    # -- Job execution ----------------------------------------------------------

    def _shared_context(self, key: str,
                        store: StoreClient) -> SharedJobContext:
        with self._ctx_lock:
            cached = self._ctx_cache.get(key)
        if cached is not None:
            return cached
        shared = decode_shared_context(store.get_blob(key))
        with self._ctx_lock:
            if key not in self._ctx_cache:
                self._ctx_cache[key] = shared
                self._ctx_order.append(key)
                while len(self._ctx_order) > CONTEXT_CACHE_ENTRIES:
                    evicted = self._ctx_order.pop(0)
                    self._ctx_cache.pop(evicted, None)
            return self._ctx_cache[key]

    def _run_job(self, message: Dict, store: StoreClient) -> Dict:
        task = message.get("task")
        job = message.get("job") or {}
        try:
            shared = self._shared_context(str(job["ctx"]), store)
            # Prefetch every pool blob in one batch round-trip before
            # the loader starts touching them one by one.  Entries
            # without a "pool" are thin-WPA clones (replay creates
            # their bodies); "imports" are read-only replay inputs.
            entries = (list(job["routines"])
                       + list(job.get("imports") or []))
            store.get_blobs([
                entry["pool"] for entry in entries if "pool" in entry
            ])
            repository = CasBackedRepository(store, {
                (KIND_IR, entry["name"]): entry["pool"]
                for entry in entries if "pool" in entry
            })
            outcome = execute_partition_job(shared, job, repository)
            blob = json.dumps(
                outcome, sort_keys=True, separators=(",", ":")
            ).encode("utf-8")
            outcome_key = store.put_blob(blob)
            self.jobs_done += 1
            return {"ok": True, "task": task, "outcome_key": outcome_key}
        except Exception as exc:  # noqa: BLE001 - report, don't die
            self.jobs_failed += 1
            return {
                "ok": False,
                "task": task,
                "error": "%s: %s" % (type(exc).__name__, exc),
            }


def run_worker(host: str, port: int, token: Optional[str] = None,
               jobs: int = 1, label: Optional[str] = None,
               reconnect_delay: float = 1.0, log=None) -> int:
    """Foreground entry point for ``python -m repro.farm worker``."""
    worker = FarmWorker(host, port, token=token, jobs=jobs,
                        label=label, reconnect_delay=reconnect_delay)

    def _on_term(signum, frame):
        worker.stop()

    signal.signal(signal.SIGTERM, _on_term)
    signal.signal(signal.SIGINT, _on_term)
    worker.start()
    print("repro-farm: worker pid %d (%d slot%s) serving %s:%d"
          % (os.getpid(), jobs, "" if jobs == 1 else "s", host, port),
          file=log or sys.stderr, flush=True)
    try:
        while worker.alive() and not worker._stop.is_set():
            time.sleep(0.2)
    except KeyboardInterrupt:
        worker.stop()
    worker.stop()
    worker.join(timeout=10.0)
    print("repro-farm: worker stopped", file=log or sys.stderr,
          flush=True)
    return 0
