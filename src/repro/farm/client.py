"""Client side of the farm: the daemon protocol over authenticated TCP.

:class:`FarmClient` subclasses :class:`~repro.serve.client.
DaemonClient` and changes exactly one thing -- how a connection is
made (TCP dial + token hello instead of a UNIX connect) -- so every
operation (build/train/objdump/status/ping/shutdown), the progress
streaming and the error mapping are byte-for-byte the single-daemon
client's.  ``python -m repro.driver build --farm HOST:PORT`` uses
this.
"""

from __future__ import annotations

import socket
from typing import Callable, Dict, Optional

from ..serve.client import PING_TIMEOUT, DaemonClient, DaemonError
from ..serve.protocol import OP_PING
from .transport import ROLE_CLIENT, AuthError, connect, parse_endpoint, resolve_token


class FarmClient(DaemonClient):
    """One client of a running farm coordinator."""

    def __init__(self, endpoint: str,
                 token: Optional[str] = None,
                 timeout: Optional[float] = None,
                 on_progress: Optional[Callable[[Dict], None]] = None):
        host, port = parse_endpoint(endpoint)
        super().__init__(socket_path="%s:%d" % (host, port),
                         timeout=timeout, on_progress=on_progress)
        self.host = host
        self.port = port
        self.token = resolve_token(token)

    def _connect(self, timeout: Optional[float]) -> socket.socket:
        try:
            conn, stream = connect(
                self.host, self.port, ROLE_CLIENT, self.token,
                timeout=timeout,
            )
        except AuthError as exc:
            raise DaemonError(
                "farm at %s refused the connection: %s"
                % (self.socket_path, exc)
            )
        except OSError as exc:
            raise DaemonError(
                "cannot connect to farm at %s: %s"
                % (self.socket_path, exc)
            )
        # The handshake stream is done; close the wrapper (the socket
        # itself stays open -- the request path makes its own).
        try:
            stream.close()
        except OSError:
            pass
        return conn

    def available(self) -> bool:
        """True when a coordinator answers a ping at the endpoint."""
        try:
            return bool(self.request(OP_PING, timeout=PING_TIMEOUT)
                        .get("pong"))
        except DaemonError:
            return False
