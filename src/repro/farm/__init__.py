"""Distributed compile farm: coordinator + workers over TCP.

The single-process daemon (:mod:`repro.serve`) scales to one
machine's cores; the farm scales the LTRANS half across machines.
One **coordinator** (:mod:`.coordinator`) speaks the existing build
protocol to clients over TCP, runs the serial WPA phase itself, and
dispatches the resulting partitions to connected **workers**
(:mod:`.worker`) through a work-stealing queue
(:class:`repro.sched.StealQueue`).  Partition inputs and results
travel through a shared **content-addressed store** (:mod:`.store`)
backed by the coordinator's pack-file repository, so warm rebuilds
deduplicate farm-wide and any worker can run any partition.

Every connection authenticates with a shared secret (:mod:`
.transport`); clients reach the farm with ``python -m repro.driver
build --farm HOST:PORT``.  Farm images are byte-identical to
single-daemon and cold-CLI images -- the worker-side execution loop
is the same code path, mirrored across the wire (:mod:`repro.part.
wire`).
"""

from .client import FarmClient
from .coordinator import FarmCoordinator, run_coordinator
from .transport import AuthError, parse_endpoint
from .worker import FarmWorker, run_worker

__all__ = [
    "FarmClient",
    "FarmCoordinator",
    "run_coordinator",
    "AuthError",
    "parse_endpoint",
    "FarmWorker",
    "run_worker",
]
