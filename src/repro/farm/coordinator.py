"""The farm coordinator: one TCP endpoint, three kinds of peers.

A :class:`FarmCoordinator` *is* a :class:`~repro.serve.daemon.
BuildDaemon` -- same admission gate, warm state, heartbeat/timeout
session machinery, drain semantics -- listening on TCP instead of a
UNIX socket, with an authentication hello in front of every
connection (:mod:`.transport`).  The hello's role decides what the
connection speaks:

* ``client`` -- exactly the existing build protocol, handled by the
  inherited request path.  Admission and backpressure generalize
  across hosts for free: the gate neither knows nor cares where a
  connection came from.
* ``worker`` -- a coordinator-driven job loop.  The connection
  registers with the work-stealing queue (:class:`~repro.sched.
  StealQueue`); the coordinator pushes one partition job at a time
  and reads one reply.  A broken connection unregisters the worker,
  which re-queues its queued *and* in-flight partitions (bounded by
  the retry cap) -- a killed worker mid-partition costs a retry, not
  the build.
* ``store`` -- repository ops against the shared pack-file store
  (:class:`~repro.naim.remote.RepositoryServer`).

Builds run the WPA phase on the coordinator; when the partitioned
LTRANS phase starts, the session's compiler hands partitions to
:class:`FarmDispatcher`, which publishes inputs to the store, submits
tasks to the steal queue, and folds worker outcomes back in partition
index order.  With no workers connected the dispatcher reports not
ready and the build runs its partitions locally -- a farm of zero
workers degrades to the single-process daemon.
"""

from __future__ import annotations

import itertools
import json
import os
import socket
import sys
import tempfile
import threading
import time
from typing import Dict, List, Optional

from ..driver.compiler import CompileSession
from ..naim.remote import RepositoryServer
from ..naim.repository import Repository
from ..part.remote import RemotePartitionRunner
from ..sched.steal import StealQueue, StealTask
from ..serve.daemon import BuildDaemon, DaemonStartupError, _pid_alive
from ..serve.protocol import ProtocolError, read_message, write_message
from ..serve.state import WarmState
from .store import CAS_KIND, cas_key
from .transport import (
    ROLE_CLIENT,
    ROLE_STORE,
    ROLE_WORKER,
    ensure_token,
    resolve_token,
    serve_hello,
)

#: Default coordinator port (0 = ephemeral, for tests).
DEFAULT_PORT = 7633

#: Seconds of worker idleness between keepalive pings.
PING_INTERVAL = 5.0


def default_farm_root() -> str:
    root = os.environ.get("REPRO_FARM_ROOT")
    if root:
        return root
    return os.path.join(
        tempfile.gettempdir(), "repro-farm-%d" % os.getuid()
    )


class FarmDispatcher:
    """Bridges a compiler's partition runs onto the farm.

    Implements the two-callable contract of
    :class:`~repro.part.remote.RemotePartitionRunner` (``put_blob`` /
    ``dispatch``) on top of the coordinator's local pack store and
    steal queue, plus the ``ready()`` / ``runner()`` surface the
    compiler's ``partition_dispatcher`` hook expects."""

    def __init__(self, queue: StealQueue, repository: Repository,
                 job_timeout: float = 600.0) -> None:
        self.queue = queue
        self.repository = repository
        self.job_timeout = job_timeout
        self._batch_serial = itertools.count(1)
        self.batches = 0
        self.jobs_dispatched = 0

    # -- Compiler hook surface ---------------------------------------------------

    def ready(self) -> bool:
        return self.queue.worker_count() > 0

    def runner(self, hlo_result, llo_options, naim_config=None,
               jobs=1, events=None) -> RemotePartitionRunner:
        return RemotePartitionRunner(
            hlo_result, llo_options, naim_config=naim_config,
            jobs=jobs, events=events,
            dispatch=self.dispatch, put_blob=self.put_blob,
        )

    # -- Store access (local: the coordinator owns the repository) --------------

    def put_blob(self, data: bytes) -> str:
        key = cas_key(data)
        if not self.repository.contains(CAS_KIND, key):
            self.repository.store(CAS_KIND, key, data)
        return key

    def get_blob(self, key: str) -> bytes:
        # Snapshot zero-copy views; callers json-decode and cache this.
        return bytes(self.repository.fetch(CAS_KIND, key))

    # -- Dispatch ---------------------------------------------------------------

    def dispatch(self, jobs: List[Dict]) -> List[Dict]:
        """Run one batch of partition jobs on the farm workers.

        Blocks until every job completed (retries included) and
        returns the decoded outcome payloads.  Raises on exhausted
        retries or timeout; the session layer reports that as a
        failed build."""
        batch = next(self._batch_serial)
        tasks = [
            StealTask(
                "b%d:p%d" % (batch, job["index"]),
                job,
                weight=max(1, int(job.get("weight", 1))),
            )
            for job in jobs
        ]
        self.batches += 1
        self.jobs_dispatched += len(tasks)
        self.queue.submit(tasks)
        replies = self.queue.wait(
            [task.task_id for task in tasks], timeout=self.job_timeout
        )
        outcomes = []
        for task in tasks:
            reply = replies[task.task_id]
            outcomes.append(
                json.loads(self.get_blob(reply["outcome_key"]))
            )
        return outcomes


class FarmState(WarmState):
    """Warm state whose sessions dispatch partitions to the farm."""

    def __init__(self, root: str, dispatcher: FarmDispatcher,
                 cache_bytes: int = 64 * 1024 * 1024) -> None:
        self.dispatcher = dispatcher
        super().__init__(root, cache_bytes=cache_bytes)

    def _make_session(self, compiler_options, jobs, incremental,
                      state_dir) -> CompileSession:
        session = super()._make_session(
            compiler_options, jobs, incremental, state_dir
        )
        session.compiler.partition_dispatcher = self.dispatcher
        return session


class FarmCoordinator(BuildDaemon):
    """A build daemon that fronts a worker farm (module docstring)."""

    def __init__(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT,
                 state_root: Optional[str] = None,
                 token: Optional[str] = None,
                 max_sessions: int = 2,
                 queue_depth: int = 4,
                 queue_timeout: float = 30.0,
                 request_timeout: Optional[float] = None,
                 heartbeat_seconds: float = 0.25,
                 retry_limit: int = 2,
                 job_timeout: float = 600.0) -> None:
        root = os.path.abspath(state_root or default_farm_root())
        os.makedirs(root, exist_ok=True)
        self.host = host
        self.port = port
        self.token = token if token is not None else ensure_token(root)
        self.steal_queue = StealQueue(retry_limit=retry_limit)
        self.store_repo = Repository(
            directory=os.path.join(root, "store")
        )
        self.dispatcher = FarmDispatcher(
            self.steal_queue, self.store_repo, job_timeout=job_timeout
        )
        self.workers: Dict[str, Dict] = {}
        self._workers_lock = threading.Lock()
        self._worker_serial = itertools.count(1)
        self.store_connections = 0
        self.auth_failures = 0
        # BuildDaemon.__init__ calls _make_state(), which needs the
        # dispatcher above; socket_path doubles as the port file.
        super().__init__(
            socket_path=os.path.join(root, "coordinator.port"),
            state_root=root,
            max_sessions=max_sessions,
            queue_depth=queue_depth,
            queue_timeout=queue_timeout,
            request_timeout=request_timeout,
            heartbeat_seconds=heartbeat_seconds,
        )

    def _make_state(self) -> WarmState:
        return FarmState(self.state_root, self.dispatcher)

    # -- Socket ownership --------------------------------------------------------

    def _live_endpoint(self) -> Optional[str]:
        """The endpoint in the port file, if something answers there."""
        try:
            with open(self.socket_path, "r", encoding="utf-8") as handle:
                endpoint = handle.read().strip()
            host, _, port_text = endpoint.rpartition(":")
            probe = socket.create_connection(
                (host, int(port_text)), timeout=1.0
            )
            probe.close()
            return endpoint
        except (OSError, ValueError):
            return None

    def _reclaim_stale(self) -> None:
        pid = None
        if os.path.exists(self.pidfile):
            try:
                with open(self.pidfile, "r", encoding="utf-8") as handle:
                    pid = int(handle.read().strip())
            except (OSError, ValueError):
                pid = None
        if pid is not None and _pid_alive(pid):
            endpoint = self._live_endpoint()
            if endpoint is not None:
                raise DaemonStartupError(
                    "a coordinator (pid %d) already serves %s"
                    % (pid, endpoint)
                )
        for stale in (self.socket_path, self.pidfile):
            try:
                os.unlink(stale)
            except OSError:
                pass

    def bind(self) -> None:
        os.makedirs(self.state_root, exist_ok=True)
        self._reclaim_stale()
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            listener.bind((self.host, self.port))
        except OSError as exc:
            listener.close()
            raise DaemonStartupError(
                "cannot bind %s:%d: %s" % (self.host, self.port, exc)
            )
        self.port = listener.getsockname()[1]
        listener.listen(64)
        listener.settimeout(0.2)
        self._listener = listener
        with open(self.socket_path, "w", encoding="utf-8") as handle:
            handle.write("%s:%d\n" % (self.host, self.port))
        with open(self.pidfile, "w", encoding="utf-8") as handle:
            handle.write("%d\n" % os.getpid())

    @property
    def endpoint(self) -> str:
        return "%s:%d" % (self.host, self.port)

    # -- Connections -------------------------------------------------------------

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            conn.settimeout(10.0)
            stream = conn.makefile("rwb")
            try:
                hello = serve_hello(stream, self.token)
                if hello is None:
                    self.auth_failures += 1
                    return
                role = hello["role"]
                if role == ROLE_CLIENT:
                    self._handle(stream)
                elif role == ROLE_STORE:
                    self.store_connections += 1
                    conn.settimeout(None)
                    RepositoryServer(self.store_repo).serve(stream)
                elif role == ROLE_WORKER:
                    conn.settimeout(None)
                    self._serve_worker(stream, hello)
            finally:
                try:
                    stream.close()
                except OSError:
                    pass
        except OSError:
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass
            with self._threads_lock:
                self._conn_threads.discard(threading.current_thread())

    # -- Worker job loop ---------------------------------------------------------

    def _serve_worker(self, stream, hello: Dict) -> None:
        label = str(hello.get("label") or "worker")
        worker_id = "w%d:%s" % (next(self._worker_serial), label)
        self.steal_queue.register_worker(worker_id)
        with self._workers_lock:
            self.workers[worker_id] = {
                "label": label,
                "pid": hello.get("pid"),
                "host": hello.get("hostname"),
                "connected_at": time.time(),
                "jobs_done": 0,
                "jobs_failed": 0,
            }
        last_send = time.monotonic()
        try:
            while True:
                if self._stopped.is_set():
                    write_message(stream, {"op": "shutdown"})
                    return
                task = self.steal_queue.next_for(worker_id, timeout=0.5)
                if task is None:
                    if not self.steal_queue.is_registered(worker_id):
                        return  # queue closed (drain) or kicked
                    if time.monotonic() - last_send >= PING_INTERVAL:
                        write_message(stream, {"op": "ping"})
                        last_send = time.monotonic()
                    continue
                write_message(stream, {
                    "op": "run",
                    "task": task.task_id,
                    "job": task.payload,
                })
                last_send = time.monotonic()
                reply = read_message(stream)
                if reply is None:
                    raise OSError("worker closed mid-task")
                if reply.get("ok"):
                    self.steal_queue.complete(
                        worker_id, task.task_id, reply
                    )
                    with self._workers_lock:
                        self.workers[worker_id]["jobs_done"] += 1
                else:
                    self.steal_queue.fail(
                        worker_id, task.task_id,
                        str(reply.get("error", "worker error")),
                    )
                    with self._workers_lock:
                        self.workers[worker_id]["jobs_failed"] += 1
        except (OSError, ValueError, ProtocolError):
            pass
        finally:
            self.steal_queue.unregister_worker(worker_id)
            with self._workers_lock:
                self.workers.pop(worker_id, None)

    # -- Lifecycle ---------------------------------------------------------------

    def _drain(self) -> None:
        self.steal_queue.close()
        super()._drain()
        self.store_repo.close()

    # -- Introspection -----------------------------------------------------------

    def status(self) -> Dict:
        status = super().status()
        status["endpoint"] = self.endpoint
        with self._workers_lock:
            status["workers"] = [
                dict(info, id=worker_id)
                for worker_id, info in sorted(self.workers.items())
            ]
        status["steal"] = self.steal_queue.stats()
        status["store"] = {
            "entries": len(self.store_repo),
            "io": self.store_repo.io_stats(),
        }
        status["dispatch"] = {
            "batches": self.dispatcher.batches,
            "jobs": self.dispatcher.jobs_dispatched,
        }
        status["auth_failures"] = self.auth_failures
        return status


def run_coordinator(host: str = "127.0.0.1", port: int = DEFAULT_PORT,
                    state_root: Optional[str] = None,
                    token: Optional[str] = None,
                    max_sessions: int = 2, queue_depth: int = 4,
                    request_timeout: Optional[float] = None,
                    retry_limit: int = 2, log=None) -> int:
    """Foreground entry point for ``python -m repro.farm coordinator``."""
    try:
        coordinator = FarmCoordinator(
            host=host, port=port, state_root=state_root, token=token,
            max_sessions=max_sessions, queue_depth=queue_depth,
            request_timeout=request_timeout, retry_limit=retry_limit,
        )
        coordinator.bind()
    except DaemonStartupError as exc:
        print("repro-farm: %s" % exc, file=log or sys.stderr)
        return 1
    coordinator.install_signal_handlers()
    print("repro-farm: coordinator pid %d listening on %s (root %s)"
          % (os.getpid(), coordinator.endpoint, coordinator.state_root),
          file=log or sys.stderr, flush=True)
    coordinator.serve_forever()
    print("repro-farm: coordinator drained and stopped",
          file=log or sys.stderr, flush=True)
    return 0
