"""repro-farm: run and manage a distributed compile farm.

::

    python -m repro.farm coordinator               # serve in the foreground
    python -m repro.farm worker --connect H:P      # attach N job slots
    python -m repro.farm status --connect H:P      # one-line + JSON status
    python -m repro.farm stop --connect H:P        # drain the coordinator

The coordinator writes its shared secret to ``<root>/farm.token``
(0600) on first start; same-user-same-host workers and clients pick
it up automatically, remote ones pass ``--token`` or set
``$REPRO_FARM_TOKEN``.  Builds go through the normal driver:
``python -m repro.driver build --farm HOST:PORT ...``.
"""

from __future__ import annotations

import argparse
import json
import sys

from .client import FarmClient
from .coordinator import DEFAULT_PORT, default_farm_root, run_coordinator
from .transport import parse_endpoint, resolve_token
from ..serve.client import DaemonError


def _add_connect(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--connect", default="127.0.0.1:%d" % DEFAULT_PORT,
        metavar="HOST:PORT", help="coordinator endpoint",
    )
    parser.add_argument(
        "--token", default=None, metavar="SECRET",
        help="shared secret (default: $REPRO_FARM_TOKEN, else the "
             "local coordinator root's farm.token)",
    )


def _client(args: argparse.Namespace) -> FarmClient:
    token = resolve_token(args.token, root=default_farm_root())
    return FarmClient(args.connect, token=token)


def cmd_coordinator(args: argparse.Namespace) -> int:
    if args.max_sessions < 1 or args.queue_depth < 0:
        raise SystemExit(
            "--max-sessions must be >= 1 and --queue-depth >= 0"
        )
    return run_coordinator(
        host=args.host, port=args.port, state_root=args.root,
        token=args.token, max_sessions=args.max_sessions,
        queue_depth=args.queue_depth,
        request_timeout=args.request_timeout,
        retry_limit=args.retry_limit,
    )


def cmd_worker(args: argparse.Namespace) -> int:
    from .worker import run_worker
    host, port = parse_endpoint(args.connect)
    token = resolve_token(args.token, root=default_farm_root())
    return run_worker(
        host, port, token=token, jobs=args.jobs, label=args.label,
        reconnect_delay=args.reconnect_delay,
    )


def cmd_status(args: argparse.Namespace) -> int:
    client = _client(args)
    try:
        status = client.status()
    except DaemonError as exc:
        print("no coordinator on %s (%s)" % (args.connect, exc))
        return 1
    workers = status.get("workers", [])
    steal = status.get("steal", {})
    print("coordinator pid %s on %s: %d builds served, %d worker "
          "slot(s), %d job(s) done, %d stolen%s"
          % (status.get("pid"), status.get("endpoint"),
             status.get("builds_served", 0), len(workers),
             steal.get("completed", 0), steal.get("steals", 0),
             " [draining]" if status.get("draining") else ""))
    profiles = status.get("profiles") or {}
    for name, feed in sorted((profiles.get("feeds") or {}).items()):
        decision = feed.get("last_decision") or {}
        print("feed %s: %d batches (%d samples), epoch %d, "
              "%d reopts, controller %s@%s"
              % (name, feed.get("batches", 0), feed.get("samples", 0),
                 feed.get("epoch", 0), feed.get("reoptimizations", 0),
                 decision.get("mode", "idle"),
                 decision.get("percent", "-")))
    print(json.dumps(status, indent=2, sort_keys=True))
    return 0


def cmd_ingest(args: argparse.Namespace) -> int:
    with open(args.batches, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, list):
        print("batch file must hold a JSON list of batch objects",
              file=sys.stderr)
        return 2
    client = _client(args)
    try:
        result = client.profile_ingest({
            "feed": args.feed,
            "batches": payload,
            "reoptimize": not args.no_reoptimize,
        }, timeout=args.timeout)
    except DaemonError as exc:
        print("ingest failed: %s" % exc, file=sys.stderr)
        return 1
    decision = result.get("decision") or {}
    print("feed %s: accepted %d batch(es) (%d duplicate), epoch %d, "
          "rebuilt: %s"
          % (result.get("feed"), result.get("accepted", 0),
             result.get("duplicates", 0), result.get("epoch", 0),
             "yes" if result.get("rebuilt") else "no"))
    if decision:
        print("controller: %s -> %s%% (%s)"
              % (decision.get("mode"), decision.get("percent"),
                 decision.get("reason")))
    return 0


def cmd_stop(args: argparse.Namespace) -> int:
    client = _client(args)
    try:
        client.shutdown()
    except DaemonError as exc:
        print("no coordinator on %s (%s)" % (args.connect, exc))
        return 1
    print("coordinator on %s draining" % args.connect)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.farm",
        description="distributed compile farm: coordinator, workers, "
                    "shared artifact store",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    coord = subparsers.add_parser(
        "coordinator", help="serve a coordinator in the foreground"
    )
    coord.add_argument("--host", default="127.0.0.1",
                       help="listen address")
    coord.add_argument("--port", type=int, default=DEFAULT_PORT,
                       help="listen port (0 = ephemeral)")
    coord.add_argument("--root", default=None, metavar="DIR",
                       help="state root (default: $REPRO_FARM_ROOT or "
                            "a per-user tmp dir)")
    coord.add_argument("--token", default=None, metavar="SECRET",
                       help="shared secret (default: auto-generated "
                            "under the root)")
    coord.add_argument("--max-sessions", type=int, default=2,
                       metavar="N",
                       help="concurrent build sessions before "
                            "requests queue")
    coord.add_argument("--queue-depth", type=int, default=4,
                       metavar="N",
                       help="queued requests before ServerBusy")
    coord.add_argument("--request-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-request wall-clock budget")
    coord.add_argument("--retry-limit", type=int, default=2,
                       metavar="N",
                       help="attempts per partition before the build "
                            "fails")
    coord.set_defaults(func=cmd_coordinator)

    worker = subparsers.add_parser(
        "worker", help="attach a worker daemon to a coordinator"
    )
    _add_connect(worker)
    worker.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="parallel job slots")
    worker.add_argument("--label", default=None,
                        help="worker label shown in status "
                             "(default: hostname)")
    worker.add_argument("--reconnect-delay", type=float, default=1.0,
                        metavar="SECONDS",
                        help="pause between reconnect attempts")
    worker.set_defaults(func=cmd_worker)

    status = subparsers.add_parser(
        "status", help="query a running coordinator"
    )
    _add_connect(status)
    status.set_defaults(func=cmd_status)

    ingest = subparsers.add_parser(
        "ingest", help="feed fleet profile batches to a coordinator"
    )
    _add_connect(ingest)
    ingest.add_argument(
        "batches",
        help="JSON file holding a list of batch objects "
             "(see `python -m repro.profserve simulate`)",
    )
    ingest.add_argument("--feed", required=True, metavar="NAME",
                        help="profile feed to merge into")
    ingest.add_argument("--no-reoptimize", action="store_true",
                        help="merge only; suppress any rebuild")
    ingest.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS")
    ingest.set_defaults(func=cmd_ingest)

    stop = subparsers.add_parser(
        "stop", help="drain and stop a running coordinator"
    )
    _add_connect(stop)
    stop.set_defaults(func=cmd_stop)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
