"""Content-addressed blobs over the farm's shared pack store.

Both sides of partition dispatch move bytes through here: the
coordinator publishes the shared context and every routine's compact
IR; workers fetch those and publish their outcomes.  Blobs are named
by their SHA-256, stored under NAIM kind ``"cas"`` in the
coordinator's pack repository -- so the pack layer's identical-store
skip *is* the farm-wide deduplication (a warm rebuild re-publishes
byte-identical blobs, which cost one hash lookup and no disk writes).

:class:`StoreClient` wraps a :class:`~repro.naim.remote.
RemoteRepository` stream with hashing, an LRU blob cache (shared
context blobs are fetched once per build, not once per partition) and
``has``-before-``put`` so unchanged blobs do not cross the wire at
all.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional

from ..naim.remote import RemoteRepository

#: NAIM pool kind under which CAS blobs live in the pack repository.
CAS_KIND = "cas"


def cas_key(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class StoreClient:
    """Hash-addressed get/put against a remote repository stream."""

    def __init__(self, repository: RemoteRepository,
                 cache_bytes: int = 64 * 1024 * 1024) -> None:
        self._repository = repository
        self._lock = threading.Lock()
        self._cache: "OrderedDict[str, bytes]" = OrderedDict()
        self._cache_bytes = 0
        self._cache_limit = cache_bytes
        self.puts = 0
        self.put_skips = 0
        self.gets = 0
        self.cache_hits = 0

    # -- Cache ------------------------------------------------------------------

    def _cache_put(self, key: str, data: bytes) -> None:
        with self._lock:
            if key in self._cache:
                self._cache.move_to_end(key)
                return
            self._cache[key] = data
            self._cache_bytes += len(data)
            while self._cache_bytes > self._cache_limit and self._cache:
                _, evicted = self._cache.popitem(last=False)
                self._cache_bytes -= len(evicted)

    def _cache_get(self, key: str) -> Optional[bytes]:
        with self._lock:
            data = self._cache.get(key)
            if data is not None:
                self._cache.move_to_end(key)
                self.cache_hits += 1
            return data

    # -- Blobs ------------------------------------------------------------------

    def put_blob(self, data: bytes) -> str:
        """Publish bytes; returns their content hash.

        A blob the store already holds (warm rebuild, another worker
        got there first) skips the payload upload entirely."""
        key = cas_key(data)
        if self._cache_get(key) is not None:
            self.put_skips += 1
            return key
        if self._repository.contains(CAS_KIND, key):
            self.put_skips += 1
        else:
            self._repository.store(CAS_KIND, key, data)
            self.puts += 1
        self._cache_put(key, data)
        return key

    def get_blob(self, key: str) -> bytes:
        data = self._cache_get(key)
        if data is not None:
            return data
        # Snapshot zero-copy views: the blob cache is long-lived and
        # must not pin the repository's segment mmaps.
        data = bytes(self._repository.fetch(CAS_KIND, key))
        if cas_key(data) != key:
            raise ValueError(
                "store returned corrupt blob for %s" % key[:12]
            )
        self.gets += 1
        self._cache_put(key, data)
        return data

    def get_blobs(self, keys: Iterable[str]) -> Dict[str, bytes]:
        """Batch fetch (one round trip for the cache misses)."""
        wanted = list(keys)
        out: Dict[str, bytes] = {}
        missing: List[str] = []
        for key in wanted:
            data = self._cache_get(key)
            if data is not None:
                out[key] = data
            else:
                missing.append(key)
        if missing:
            found = self._repository.fetch_many(
                [(CAS_KIND, key) for key in missing]
            )
            for (_, key), data in found.items():
                self.gets += 1
                data = bytes(data)
                self._cache_put(key, data)
                out[key] = data
        return out

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "puts": self.puts,
                "put_skips": self.put_skips,
                "gets": self.gets,
                "cache_hits": self.cache_hits,
                "cache_bytes": self._cache_bytes,
            }
