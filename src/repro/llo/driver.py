"""The LLO driver: IL routine -> machine routine.

Applies the optimization ladder the HP-UX options expose:

* ``+O0``: straight lowering, naive (spill-everything) allocation,
  source-order layout;
* ``+O1``: block-local allocation, basic-block scheduling, peephole;
* ``+O2``: global linear-scan allocation, scheduling, and (with ``+P``)
  profile-guided spill weighting and block layout.

LLO's working memory is modeled quadratically in routine size (paper,
Figure 4 caption) and reported to the memory accountant while each
routine is in flight.
"""

from __future__ import annotations

from typing import Optional

from ..hlo.profile_view import ProfileView
from ..ir.routine import Routine
from ..naim.memory import MemoryAccountant, llo_working_bytes
from ..vm.image import MachineRoutine
from .layout import emit_routine, order_blocks
from .lower import lower_routine
from .regalloc import AllocMode, allocate
from .schedule import schedule_routine


class LloOptions:
    """Code-generator policy for one compilation."""

    def __init__(
        self,
        opt_level: int = 2,
        use_profile: bool = False,
        schedule_window: int = 8,
    ) -> None:
        if opt_level not in (0, 1, 2):
            raise ValueError("LLO opt_level must be 0, 1 or 2")
        self.opt_level = opt_level
        self.use_profile = use_profile
        self.schedule_window = schedule_window

    @property
    def alloc_mode(self) -> AllocMode:
        if self.opt_level == 0:
            return AllocMode.NAIVE
        if self.opt_level == 1:
            return AllocMode.LOCAL
        return AllocMode.GLOBAL

    def __repr__(self) -> str:
        return "<LloOptions O%d%s>" % (
            self.opt_level,
            " +P" if self.use_profile else "",
        )


class LloStats:
    """Aggregate code-generation statistics."""

    def __init__(self) -> None:
        self.routines = 0
        self.instructions = 0
        self.spilled = 0
        self.stall_fills = 0
        self.peak_working_bytes = 0

    def merge(self, other: "LloStats") -> None:
        """Fold another code generator's counters into this one."""
        self.routines += other.routines
        self.instructions += other.instructions
        self.spilled += other.spilled
        self.stall_fills += other.stall_fills
        if other.peak_working_bytes > self.peak_working_bytes:
            self.peak_working_bytes = other.peak_working_bytes

    def __repr__(self) -> str:
        return "<LloStats routines=%d instrs=%d spilled=%d fills=%d>" % (
            self.routines,
            self.instructions,
            self.spilled,
            self.stall_fills,
        )


class LowLevelOptimizer:
    """Compiles IL routines to machine code."""

    def __init__(
        self,
        options: Optional[LloOptions] = None,
        accountant: Optional[MemoryAccountant] = None,
    ) -> None:
        self.options = options or LloOptions()
        self.accountant = accountant
        self.stats = LloStats()

    def compile_routine(
        self,
        routine: Routine,
        view: Optional[ProfileView] = None,
    ) -> MachineRoutine:
        """Lower, schedule, allocate and lay out one routine."""
        options = self.options
        working = llo_working_bytes(routine.instr_count())
        if self.accountant is not None:
            self.accountant.set_usage("llo", routine.name, working)
        if working > self.stats.peak_working_bytes:
            self.stats.peak_working_bytes = working

        lir = lower_routine(routine)

        if options.opt_level >= 1:
            self.stats.stall_fills += schedule_routine(
                lir, options.schedule_window
            )

        profile_view = view if options.use_profile else None
        allocation = allocate(lir, options.alloc_mode, profile_view)

        if options.opt_level >= 2 and options.use_profile and view is not None:
            order = order_blocks(lir, view, use_profile=True)
        else:
            order = None

        machine = emit_routine(lir, allocation.frame_size, order)

        self.stats.routines += 1
        self.stats.instructions += len(machine.instrs)
        self.stats.spilled += allocation.spilled_count
        if self.accountant is not None:
            # The per-routine working set is transient: release it, the
            # accountant's peak keeps the high-water mark.
            self.accountant.set_usage("llo", routine.name, 0)
        return machine
