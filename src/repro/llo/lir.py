"""LIR: the low-level IR between IL and final machine code.

LIR blocks hold machine instructions over *virtual* registers plus an
abstract terminator; the register allocator rewrites virtual registers
to physical ones, and block layout materializes terminators into
BT/BF/J instructions based on the final block order (fall-through edges
cost nothing -- that is what profile-guided layout optimizes).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..vm.isa import MInstr


class Terminator:
    """Abstract block terminator.

    kind: "br" (cond virtual reg, true label, false label),
    "jmp" (label), or "ret" (value virtual reg or None).
    """

    __slots__ = ("kind", "reg", "true_label", "false_label")

    def __init__(
        self,
        kind: str,
        reg: Optional[int] = None,
        true_label: Optional[str] = None,
        false_label: Optional[str] = None,
    ) -> None:
        self.kind = kind
        self.reg = reg
        self.true_label = true_label
        self.false_label = false_label

    def successors(self) -> Tuple[str, ...]:
        if self.kind == "br":
            return (self.true_label, self.false_label)
        if self.kind == "jmp":
            return (self.true_label,)
        return ()

    def __repr__(self) -> str:
        if self.kind == "br":
            return "<br v%d ? %s : %s>" % (self.reg, self.true_label,
                                           self.false_label)
        if self.kind == "jmp":
            return "<jmp %s>" % self.true_label
        return "<ret%s>" % ("" if self.reg is None else " v%d" % self.reg)


class LirBlock:
    """A basic block of machine instructions + abstract terminator."""

    __slots__ = ("label", "instrs", "terminator")

    def __init__(self, label: str) -> None:
        self.label = label
        self.instrs: List[MInstr] = []
        self.terminator: Optional[Terminator] = None

    def __repr__(self) -> str:
        return "<LirBlock %s (%d instrs) %r>" % (
            self.label,
            len(self.instrs),
            self.terminator,
        )


class LirRoutine:
    """One routine in LIR form."""

    __slots__ = ("name", "module_name", "n_params", "blocks", "next_vreg")

    def __init__(
        self, name: str, module_name: str, n_params: int, next_vreg: int
    ) -> None:
        self.name = name
        self.module_name = module_name
        self.n_params = n_params
        self.blocks: List[LirBlock] = []
        self.next_vreg = next_vreg

    def block_map(self) -> Dict[str, LirBlock]:
        return {block.label: block for block in self.blocks}

    def new_vreg(self) -> int:
        vreg = self.next_vreg
        self.next_vreg += 1
        return vreg

    def instr_count(self) -> int:
        return sum(len(block.instrs) for block in self.blocks) + len(self.blocks)

    def predecessors(self) -> Dict[str, List[str]]:
        preds: Dict[str, List[str]] = {block.label: [] for block in self.blocks}
        for block in self.blocks:
            if block.terminator is None:
                continue
            for succ in block.terminator.successors():
                if succ in preds:
                    preds[succ].append(block.label)
        return preds

    def __repr__(self) -> str:
        return "<LirRoutine %s (%d blocks)>" % (self.name, len(self.blocks))
