"""LLO: the low-level optimizer / code generator."""

from .driver import LloOptions, LloStats, LowLevelOptimizer
from .layout import emit_routine, order_blocks
from .lir import LirBlock, LirRoutine, Terminator
from .lower import LoweringError, lower_routine
from .regalloc import AllocMode, AllocationResult, allocate
from .schedule import schedule_block, schedule_routine

__all__ = [
    "LloOptions",
    "LloStats",
    "LowLevelOptimizer",
    "emit_routine",
    "order_blocks",
    "LirBlock",
    "LirRoutine",
    "Terminator",
    "LoweringError",
    "lower_routine",
    "AllocMode",
    "AllocationResult",
    "allocate",
    "schedule_block",
    "schedule_routine",
]
