"""Profile-guided basic-block layout and final code emission.

Blocks are ordered so hot edges fall through (no taken-branch penalty,
better I-cache line packing).  The chain-building algorithm is the
intra-procedural half of Pettis-Hansen code positioning [13]; the
linker does the procedure-level half (:mod:`repro.linker.clustering`).

After ordering, abstract terminators are materialized:

* ``br``: ``BF`` over the true edge if the true target falls through;
  ``BT`` if the false target falls through; ``BT`` + ``J`` otherwise;
* ``jmp``: nothing when the target falls through, ``J`` otherwise;
* ``ret``: ``RET`` (R0 plumbing already inserted by the allocator).

Emission resolves labels to routine-local instruction offsets and
drops trivial ``MOVR rX, rX`` moves (peephole).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..hlo.profile_view import ProfileView
from ..vm.image import MachineRoutine
from ..vm.isa import MInstr, MOp
from .lir import LirRoutine


def order_blocks(
    lir: LirRoutine,
    view: Optional[ProfileView] = None,
    use_profile: bool = True,
) -> List[str]:
    """Choose the block emission order."""
    labels = [block.label for block in lir.blocks]
    if not use_profile or view is None or len(labels) <= 2:
        return labels
    entry = labels[0]

    # Collect weighted CFG edges.
    edges: List[Tuple[int, str, str]] = []
    for block in lir.blocks:
        term = block.terminator
        if term is None:
            continue
        for succ in term.successors():
            weight = view.edge(block.label, succ)
            edges.append((weight, block.label, succ))
    # Heaviest first; deterministic tiebreak.
    edges.sort(key=lambda e: (-e[0], e[1], e[2]))

    # Pettis-Hansen chain building.
    chain_of: Dict[str, int] = {label: i for i, label in enumerate(labels)}
    chains: Dict[int, List[str]] = {i: [label] for i, label in
                                    enumerate(labels)}
    for _, src, dst in edges:
        src_chain = chain_of[src]
        dst_chain = chain_of.get(dst)
        if dst_chain is None or src_chain == dst_chain:
            continue
        if chains[src_chain][-1] != src or chains[dst_chain][0] != dst:
            continue  # only merge tail -> head
        for label in chains[dst_chain]:
            chain_of[label] = src_chain
        chains[src_chain].extend(chains[dst_chain])
        del chains[dst_chain]

    # Order chains: the entry's chain first, then by descending heat.
    def chain_heat(chain: List[str]) -> int:
        return max(view.count(label) for label in chain)

    entry_chain = chain_of[entry]
    rest = [cid for cid in chains if cid != entry_chain]
    rest.sort(key=lambda cid: (-chain_heat(chains[cid]), chains[cid][0]))
    ordered: List[str] = list(chains[entry_chain])
    for cid in rest:
        ordered.extend(chains[cid])
    return ordered


def emit_routine(
    lir: LirRoutine,
    frame_size: int,
    order: Optional[List[str]] = None,
) -> MachineRoutine:
    """Linearize LIR into a :class:`MachineRoutine` (pre-link form)."""
    if order is None:
        order = [block.label for block in lir.blocks]
    blocks = lir.block_map()
    # The entry block must come first; rotate if layout moved it.
    entry = lir.blocks[0].label
    if order[0] != entry:
        order = [entry] + [label for label in order if label != entry]

    instrs: List[MInstr] = []
    offsets: Dict[str, int] = {}
    pending: List[Tuple[int, str]] = []  # (instr index, target label)

    for position, label in enumerate(order):
        block = blocks[label]
        offsets[label] = len(instrs)
        for instr in block.instrs:
            if instr.op is MOp.MOVR and instr.rd == instr.rs1:
                continue  # peephole: trivial move
            instrs.append(instr)
        term = block.terminator
        next_label = order[position + 1] if position + 1 < len(order) else None
        if term is None:
            continue
        if term.kind == "ret":
            instrs.append(MInstr(MOp.RET))
        elif term.kind == "jmp":
            if term.true_label != next_label:
                jump = MInstr(MOp.J, target=term.true_label)
                pending.append((len(instrs), term.true_label))
                instrs.append(jump)
        elif term.kind == "br":
            if term.false_label == next_label:
                branch = MInstr(MOp.BT, rs1=term.reg, target=term.true_label)
                pending.append((len(instrs), term.true_label))
                instrs.append(branch)
            elif term.true_label == next_label:
                branch = MInstr(MOp.BF, rs1=term.reg, target=term.false_label)
                pending.append((len(instrs), term.false_label))
                instrs.append(branch)
            else:
                branch = MInstr(MOp.BT, rs1=term.reg, target=term.true_label)
                pending.append((len(instrs), term.true_label))
                instrs.append(branch)
                jump = MInstr(MOp.J, target=term.false_label)
                pending.append((len(instrs), term.false_label))
                instrs.append(jump)

    for index, label in pending:
        instrs[index].imm = offsets[label]
        instrs[index].target = None

    return MachineRoutine(
        lir.name,
        instrs,
        n_params=lir.n_params,
        frame_size=frame_size,
        source_module=lir.module_name,
    )
