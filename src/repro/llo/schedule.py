"""Instruction scheduling: hide load-use stalls within basic blocks.

The VM charges a one-cycle stall when an instruction consumes the
result of the immediately preceding load.  The scheduler finds such
pairs and hoists a later independent instruction between them --
a deliberately small model of the list scheduling the paper's LLO does
for the PA-8000.
"""

from __future__ import annotations

from typing import Optional

from ..vm.isa import MInstr, MOp
from .lir import LirBlock, LirRoutine

_LOADS = (MOp.LDG, MOp.LDX, MOp.LDS)
_GLOBAL_MEM = (MOp.LDG, MOp.LDX, MOp.STG, MOp.STX)
_FRAME_MEM = (MOp.LDS, MOp.STS)
_STORES = (MOp.STG, MOp.STX, MOp.STS)


def _defines(instr: MInstr) -> Optional[int]:
    if instr.op in (MOp.LDI, MOp.MOVR, MOp.ALU3, MOp.ALU2, MOp.LDG, MOp.LDX,
                    MOp.LDS):
        return instr.rd
    if instr.op is MOp.CALL:
        return instr.rd  # virtual return-value destination
    return None


def _independent(a: MInstr, b: MInstr) -> bool:
    """True when ``a`` and ``b`` may be reordered freely."""
    # Calls and ARG staging are barriers for each other and for memory.
    a_call = a.op in (MOp.CALL, MOp.ARG)
    b_call = b.op in (MOp.CALL, MOp.ARG)
    if a_call and b_call:
        return False
    if (a_call and b.op in _GLOBAL_MEM) or (b_call and a.op in _GLOBAL_MEM):
        return False
    # Probes commute with everything except calls (cheap counters).
    if (a_call and b.op is MOp.PROBE) or (b_call and a.op is MOp.PROBE):
        return False

    # Memory ordering: a store conflicts with any same-space access.
    def mem_conflict(x: MInstr, y: MInstr) -> bool:
        if x.op in _STORES:
            if x.op in _GLOBAL_MEM and y.op in _GLOBAL_MEM:
                return True
            if x.op in _FRAME_MEM and y.op in _FRAME_MEM:
                # Frame slots are statically known: disambiguate.
                return x.imm == y.imm
        return False

    if mem_conflict(a, b) or mem_conflict(b, a):
        return False

    # Register dependences.
    a_def = _defines(a)
    b_def = _defines(b)
    if a_def is not None and (b_def == a_def or a_def in set(b.reads())):
        return False
    if b_def is not None and b_def in set(a.reads()):
        return False
    return True


def schedule_block(block: LirBlock, window: int = 8) -> int:
    """Repair load-use stalls in one block; returns fills performed."""
    instrs = block.instrs
    fills = 0
    index = 0
    while index < len(instrs) - 1:
        load = instrs[index]
        consumer = instrs[index + 1]
        if load.op in _LOADS and load.rd in set(consumer.reads()):
            hoisted = False
            limit = min(len(instrs), index + 2 + window)
            for j in range(index + 2, limit):
                candidate = instrs[j]
                # The candidate must not itself consume the load result
                # (that would just move the stall).
                if load.rd in set(candidate.reads()):
                    continue
                movable = all(
                    _independent(candidate, instrs[k])
                    for k in range(index + 1, j)
                )
                if movable and _independent(candidate, load):
                    del instrs[j]
                    instrs.insert(index + 1, candidate)
                    fills += 1
                    hoisted = True
                    break
            if not hoisted:
                index += 1
        else:
            index += 1
    return fills


def schedule_routine(lir: LirRoutine, window: int = 8) -> int:
    """Schedule every block; returns total stall fills."""
    return sum(schedule_block(block, window) for block in lir.blocks)
