"""Register allocation: linear scan with spilling.

Three modes implement the optimization ladder:

* ``NAIVE`` (+O0): every virtual register lives in a frame slot; each
  use reloads, each definition stores back.
* ``LOCAL`` (+O1): values live across basic-block boundaries are
  spilled; block-local values get registers ("optimize only within
  basic block boundaries", the paper's Mcad3 baseline).
* ``GLOBAL`` (+O2 and up): whole-routine linear scan over live
  intervals.  With a profile view, spill-victim selection is weighted
  by dynamic use counts -- the paper's "improving the cost model for
  register allocation" under PBO.

Physical registers: R1..R13 allocatable, R14/R15 spill scratch, R0 the
call return-value register (see :mod:`repro.vm.isa`).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Set, Tuple

from ..hlo.profile_view import ProfileView
from ..vm.isa import (
    ALLOCATABLE_REGS,
    REG_RV,
    REG_SCRATCH_A,
    REG_SCRATCH_B,
    MInstr,
    MOp,
)
from .lir import LirRoutine


class AllocMode(enum.Enum):
    """Allocation quality ladder: NAIVE (+O0), LOCAL (+O1), GLOBAL (+O2)."""

    NAIVE = "naive"
    LOCAL = "local"
    GLOBAL = "global"


class AllocationResult:
    """What the allocator reports back."""

    __slots__ = ("frame_size", "spilled_count", "assigned_count")

    def __init__(self, frame_size: int, spilled: int, assigned: int) -> None:
        self.frame_size = frame_size
        self.spilled_count = spilled
        self.assigned_count = assigned


class _Interval:
    __slots__ = ("vreg", "start", "end", "weight")

    def __init__(self, vreg: int) -> None:
        self.vreg = vreg
        self.start = 1 << 60
        self.end = -1
        self.weight = 0

    def extend(self, pos: int) -> None:
        if pos < self.start:
            self.start = pos
        if pos > self.end:
            self.end = pos


def _defines(instr: MInstr) -> Optional[int]:
    if instr.op in (MOp.LDI, MOp.MOVR, MOp.ALU3, MOp.ALU2, MOp.LDG, MOp.LDX,
                    MOp.LDS, MOp.CALL):
        return instr.rd
    return None


def _block_liveness(lir: LirRoutine) -> Tuple[Dict[str, Set[int]],
                                              Dict[str, Set[int]]]:
    """Live-in / live-out virtual registers per LIR block."""
    use: Dict[str, Set[int]] = {}
    defs: Dict[str, Set[int]] = {}
    for block in lir.blocks:
        block_use: Set[int] = set()
        block_def: Set[int] = set()
        for instr in block.instrs:
            for reg in instr.reads():
                if reg not in block_def:
                    block_use.add(reg)
            dst = _defines(instr)
            if dst is not None:
                block_def.add(dst)
        term = block.terminator
        if term is not None and term.reg is not None:
            if term.reg not in block_def:
                block_use.add(term.reg)
        use[block.label] = block_use
        defs[block.label] = block_def

    live_in: Dict[str, Set[int]] = {b.label: set() for b in lir.blocks}
    live_out: Dict[str, Set[int]] = {b.label: set() for b in lir.blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(lir.blocks):
            label = block.label
            out: Set[int] = set()
            if block.terminator is not None:
                for succ in block.terminator.successors():
                    out |= live_in.get(succ, set())
            new_in = use[label] | (out - defs[label])
            if out != live_out[label] or new_in != live_in[label]:
                live_out[label] = out
                live_in[label] = new_in
                changed = True
    return live_in, live_out


def _build_intervals(
    lir: LirRoutine,
    live_in: Dict[str, Set[int]],
    live_out: Dict[str, Set[int]],
    view: Optional[ProfileView],
) -> Dict[int, _Interval]:
    intervals: Dict[int, _Interval] = {}

    def interval(vreg: int) -> _Interval:
        item = intervals.get(vreg)
        if item is None:
            item = _Interval(vreg)
            intervals[vreg] = item
        return item

    pos = 0
    for block in lir.blocks:
        block_start = pos
        block_weight = view.count(block.label) if view is not None else 1
        block_weight = max(block_weight, 1)
        for vreg in live_in[block.label]:
            interval(vreg).extend(block_start)
        for instr in block.instrs:
            for reg in instr.reads():
                item = interval(reg)
                item.extend(pos)
                item.weight += block_weight
            dst = _defines(instr)
            if dst is not None:
                item = interval(dst)
                item.extend(pos)
                item.weight += block_weight
            pos += 1
        term = block.terminator
        if term is not None and term.reg is not None:
            item = interval(term.reg)
            item.extend(pos)
            item.weight += block_weight
        for vreg in live_out[block.label]:
            interval(vreg).extend(pos)
        pos += 1  # terminator slot
    return intervals


def _linear_scan(
    intervals: List[_Interval],
    weighted: bool,
) -> Tuple[Dict[int, int], Set[int]]:
    """Classic linear scan; returns (vreg->phys, spilled vregs)."""
    assignment: Dict[int, int] = {}
    spilled: Set[int] = set()
    free = list(ALLOCATABLE_REGS)
    active: List[_Interval] = []  # sorted by end

    for current in sorted(intervals, key=lambda iv: (iv.start, iv.vreg)):
        # Expire old intervals.
        still_active = []
        for item in active:
            if item.end < current.start:
                free.append(assignment[item.vreg])
            else:
                still_active.append(item)
        active = still_active
        free.sort()

        if free:
            reg = free.pop(0)
            assignment[current.vreg] = reg
            active.append(current)
            active.sort(key=lambda iv: (iv.end, iv.vreg))
            continue

        # Choose a spill victim among active + current.
        candidates = active + [current]
        if weighted:
            victim = min(candidates, key=lambda iv: (iv.weight, -iv.end,
                                                     iv.vreg))
        else:
            victim = max(candidates, key=lambda iv: (iv.end, -iv.vreg))
        if victim is current:
            spilled.add(current.vreg)
        else:
            spilled.add(victim.vreg)
            reg = assignment.pop(victim.vreg)
            active.remove(victim)
            assignment[current.vreg] = reg
            active.append(current)
            active.sort(key=lambda iv: (iv.end, iv.vreg))
    return assignment, spilled


def allocate(
    lir: LirRoutine,
    mode: AllocMode = AllocMode.GLOBAL,
    view: Optional[ProfileView] = None,
) -> AllocationResult:
    """Rewrite LIR virtual registers to physical registers + frame slots.

    After this pass every ``rd``/``rs`` field holds a physical register
    number; spill traffic is explicit LDS/STS; terminators carry
    physical condition registers and return plumbing is materialized
    (value moved to R0 before every ``ret``).
    """
    live_in, live_out = _block_liveness(lir)
    intervals = _build_intervals(lir, live_in, live_out, view)

    forced_spill: Set[int] = set()
    if mode is AllocMode.NAIVE:
        forced_spill = set(intervals)
    elif mode is AllocMode.LOCAL:
        for label in live_in:
            forced_spill |= live_in[label]
            forced_spill |= live_out[label]

    scannable = [iv for v, iv in intervals.items() if v not in forced_spill]
    assignment, scan_spilled = _linear_scan(
        scannable, weighted=view is not None
    )
    spilled = forced_spill | scan_spilled

    # Frame slots: parameters own slots 0..n-1; other spills get fresh
    # slots in deterministic (vreg) order.
    slot_of: Dict[int, int] = {}
    next_slot = lir.n_params
    for vreg in sorted(spilled):
        if vreg < lir.n_params:
            slot_of[vreg] = vreg
        else:
            slot_of[vreg] = next_slot
            next_slot += 1

    def phys(vreg: int) -> Optional[int]:
        return assignment.get(vreg)

    for block in lir.blocks:
        new_instrs: List[MInstr] = []
        for instr in block.instrs:
            scratch_iter = iter((REG_SCRATCH_A, REG_SCRATCH_B))
            reload_map: Dict[int, int] = {}
            # Reload spilled sources.
            for reg in dict.fromkeys(instr.reads()):
                if reg in spilled:
                    scratch = reload_map.get(reg)
                    if scratch is None:
                        scratch = next(scratch_iter)
                        reload_map[reg] = scratch
                        new_instrs.append(
                            MInstr(MOp.LDS, rd=scratch, imm=slot_of[reg])
                        )
            if instr.rs1 is not None and instr.rs1 in reload_map:
                instr.rs1 = reload_map[instr.rs1]
            elif instr.rs1 is not None:
                instr.rs1 = phys(instr.rs1)
            if instr.rs2 is not None and instr.rs2 in reload_map:
                instr.rs2 = reload_map[instr.rs2]
            elif instr.rs2 is not None:
                instr.rs2 = phys(instr.rs2)

            dst = _defines(instr)
            if instr.op is MOp.CALL:
                # CALL's rd is the virtual destination of the return
                # value, which the machine leaves in R0.
                vdst = instr.rd
                instr.rd = None
                new_instrs.append(instr)
                if vdst is not None:
                    if vdst in spilled:
                        new_instrs.append(
                            MInstr(MOp.STS, rs1=REG_RV, imm=slot_of[vdst])
                        )
                    else:
                        target = phys(vdst)
                        if target is not None:
                            new_instrs.append(
                                MInstr(MOp.MOVR, rd=target, rs1=REG_RV)
                            )
                continue
            if dst is not None:
                if dst in spilled:
                    instr.rd = REG_SCRATCH_A
                    new_instrs.append(instr)
                    new_instrs.append(
                        MInstr(MOp.STS, rs1=REG_SCRATCH_A, imm=slot_of[dst])
                    )
                    continue
                instr.rd = phys(dst)
            new_instrs.append(instr)
        block.instrs = new_instrs

        term = block.terminator
        if term is None:
            continue
        if term.kind == "br" and term.reg is not None:
            if term.reg in spilled:
                block.instrs.append(
                    MInstr(MOp.LDS, rd=REG_SCRATCH_A, imm=slot_of[term.reg])
                )
                term.reg = REG_SCRATCH_A
            else:
                term.reg = phys(term.reg)
        elif term.kind == "ret":
            if term.reg is None:
                block.instrs.append(MInstr(MOp.LDI, rd=REG_RV, imm=0))
            elif term.reg in spilled:
                block.instrs.append(
                    MInstr(MOp.LDS, rd=REG_RV, imm=slot_of[term.reg])
                )
            else:
                source = phys(term.reg)
                if source != REG_RV:
                    block.instrs.append(
                        MInstr(MOp.MOVR, rd=REG_RV, rs1=source)
                    )
            term.reg = None

    return AllocationResult(
        frame_size=max(next_slot, lir.n_params),
        spilled=len(spilled),
        assigned=len(assignment),
    )
