"""Lowering: IL routines to LIR.

Conventions established here (consumed by the allocator and emitter):

* IL virtual registers map 1:1 to LIR virtual registers;
* parameters arrive in frame slots ``0..n-1``; lowering loads each
  *used* parameter into its virtual register at entry;
* ``CALL`` instructions carry ``rd`` = the virtual register that wants
  the return value; the allocator inserts the ``R0`` plumbing;
* global symbols stay symbolic (``sym``) until link time.
"""

from __future__ import annotations

from typing import Set

from ..ir.instructions import BINARY_OPS, Opcode
from ..ir.routine import Routine
from ..vm.isa import MInstr, MOp
from .lir import LirBlock, LirRoutine, Terminator


class LoweringError(Exception):
    """Raised on IL constructs the code generator cannot lower."""


def lower_routine(routine: Routine) -> LirRoutine:
    """Translate one IL routine into LIR."""
    lir = LirRoutine(
        routine.name,
        routine.module_name,
        routine.n_params,
        routine.next_reg,
    )

    used_params = _used_params(routine)

    for il_block in routine.blocks:
        block = LirBlock(il_block.label)
        lir.blocks.append(block)
        if il_block is routine.blocks[0]:
            # Materialize incoming parameters from their frame slots.
            for param in sorted(used_params):
                block.instrs.append(
                    MInstr(MOp.LDS, rd=param, imm=param)
                )
        for instr in il_block.instrs:
            _lower_instr(instr, block)
        if block.terminator is None:
            raise LoweringError(
                "block %s of %s has no terminator" % (il_block.label,
                                                      routine.name)
            )
    return lir


def _used_params(routine: Routine) -> Set[int]:
    used: Set[int] = set()
    params = set(range(routine.n_params))
    for _, _, instr in routine.iter_instrs():
        for reg in instr.uses():
            if reg in params:
                used.add(reg)
    return used


def _lower_instr(instr, block: LirBlock) -> None:
    op = instr.op
    if op is Opcode.CONST:
        block.instrs.append(MInstr(MOp.LDI, rd=instr.dst, imm=instr.imm))
    elif op is Opcode.MOV:
        block.instrs.append(MInstr(MOp.MOVR, rd=instr.dst, rs1=instr.a))
    elif op in BINARY_OPS:
        block.instrs.append(
            MInstr(MOp.ALU3, subop=op, rd=instr.dst, rs1=instr.a, rs2=instr.b)
        )
    elif op in (Opcode.NEG, Opcode.NOT):
        block.instrs.append(
            MInstr(MOp.ALU2, subop=op, rd=instr.dst, rs1=instr.a)
        )
    elif op is Opcode.LOADG:
        block.instrs.append(MInstr(MOp.LDG, rd=instr.dst, sym=instr.sym))
    elif op is Opcode.STOREG:
        block.instrs.append(MInstr(MOp.STG, rs1=instr.a, sym=instr.sym))
    elif op is Opcode.LOADE:
        block.instrs.append(
            MInstr(MOp.LDX, rd=instr.dst, rs1=instr.a, sym=instr.sym)
        )
    elif op is Opcode.STOREE:
        block.instrs.append(
            MInstr(MOp.STX, rs1=instr.a, rs2=instr.b, sym=instr.sym)
        )
    elif op is Opcode.CALL:
        for arg_index, arg_reg in enumerate(instr.args):
            block.instrs.append(
                MInstr(MOp.ARG, rs1=arg_reg, imm=arg_index)
            )
        block.instrs.append(MInstr(MOp.CALL, rd=instr.dst, sym=instr.sym))
    elif op is Opcode.PROBE:
        block.instrs.append(MInstr(MOp.PROBE, imm=instr.imm))
    elif op is Opcode.RET:
        block.terminator = Terminator("ret", reg=instr.a)
    elif op is Opcode.BR:
        block.terminator = Terminator(
            "br",
            reg=instr.a,
            true_label=instr.targets[0],
            false_label=instr.targets[1],
        )
    elif op is Opcode.JMP:
        block.terminator = Terminator("jmp", true_label=instr.targets[0])
    else:  # pragma: no cover
        raise LoweringError("unlowerable opcode %s" % op)
