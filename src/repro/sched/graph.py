"""The build task DAG.

A :class:`TaskGraph` models one build as named tasks with explicit
dependencies: per-module frontend+codegen tasks feed a link task.  The
graph owns state transitions and failure propagation -- a failing task
cancels its transitive dependents *only*, so independent tasks still
run and every diagnostic is collected -- while the executor decides
when and where ready tasks actually run.

Determinism contract: :meth:`TaskGraph.ready` always returns runnable
tasks in task-insertion order, so a serial executor visits tasks in
exactly the order a ``for`` loop over the sources would have.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional


class TaskState:
    """Lifecycle of one task (plain constants, no enum ceremony)."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    TERMINAL = (DONE, FAILED, CANCELLED)


class GraphError(Exception):
    """Structural problem with a task graph (cycle, unknown dep...)."""


class Task:
    """One schedulable unit of build work.

    ``fn`` receives a dict mapping each dependency id to that
    dependency's result; its return value becomes this task's result.
    ``category`` labels the task for tracing ("frontend", "compile",
    "link"...).
    """

    __slots__ = ("task_id", "fn", "deps", "category", "state", "result",
                 "error")

    def __init__(
        self,
        task_id: str,
        fn: Callable[[Dict[str, object]], object],
        deps: List[str],
        category: str = "task",
    ) -> None:
        self.task_id = task_id
        self.fn = fn
        self.deps = deps
        self.category = category
        self.state = TaskState.PENDING
        self.result: object = None
        self.error: Optional[BaseException] = None

    def __repr__(self) -> str:
        return "<Task %s (%s, deps=%r)>" % (
            self.task_id, self.state, self.deps
        )


class TaskGraph:
    """A DAG of build tasks with topological dispatch."""

    def __init__(self) -> None:
        #: Insertion-ordered task table (drives deterministic dispatch).
        self.tasks: Dict[str, Task] = {}
        #: task id -> ids that depend on it (forward edges).
        self._dependents: Dict[str, List[str]] = {}

    # -- Construction ------------------------------------------------------------

    def add(
        self,
        task_id: str,
        fn: Callable[[Dict[str, object]], object],
        deps: Optional[List[str]] = None,
        category: str = "task",
    ) -> Task:
        if task_id in self.tasks:
            raise GraphError("duplicate task id %r" % task_id)
        deps = list(deps or [])
        for dep in deps:
            if dep not in self.tasks:
                raise GraphError(
                    "task %r depends on unknown task %r" % (task_id, dep)
                )
        task = Task(task_id, fn, deps, category)
        self.tasks[task_id] = task
        self._dependents[task_id] = []
        for dep in deps:
            self._dependents[dep].append(task_id)
        return task

    def __len__(self) -> int:
        return len(self.tasks)

    def __contains__(self, task_id: str) -> bool:
        return task_id in self.tasks

    # -- Dispatch ----------------------------------------------------------------

    def ready(self) -> List[Task]:
        """Pending tasks whose dependencies are all DONE, in insertion
        order."""
        out = []
        for task in self.tasks.values():
            if task.state != TaskState.PENDING:
                continue
            if all(
                self.tasks[dep].state == TaskState.DONE for dep in task.deps
            ):
                out.append(task)
        return out

    def is_settled(self) -> bool:
        """True once every task is in a terminal state."""
        return all(
            task.state in TaskState.TERMINAL for task in self.tasks.values()
        )

    # -- State transitions -------------------------------------------------------

    def mark_running(self, task_id: str) -> None:
        self.tasks[task_id].state = TaskState.RUNNING

    def mark_done(self, task_id: str, result: object) -> None:
        task = self.tasks[task_id]
        task.state = TaskState.DONE
        task.result = result

    def mark_failed(self, task_id: str, error: BaseException) -> List[str]:
        """Fail a task and cancel its transitive dependents.

        Returns the cancelled ids (insertion order).  Tasks not
        downstream of the failure are untouched, so their diagnostics
        are still collected.
        """
        task = self.tasks[task_id]
        task.state = TaskState.FAILED
        task.error = error
        cancelled: List[str] = []
        stack = list(self._dependents[task_id])
        hit = set()
        while stack:
            dep_id = stack.pop()
            if dep_id in hit:
                continue
            hit.add(dep_id)
            stack.extend(self._dependents[dep_id])
        for dep_id in self.tasks:  # insertion order
            if dep_id in hit and (
                self.tasks[dep_id].state == TaskState.PENDING
            ):
                self.tasks[dep_id].state = TaskState.CANCELLED
                cancelled.append(dep_id)
        return cancelled

    # -- Queries -----------------------------------------------------------------

    def in_state(self, state: str) -> List[Task]:
        return [t for t in self.tasks.values() if t.state == state]

    def validate(self) -> None:
        """Raise :class:`GraphError` if the graph has a cycle."""
        indegree = {tid: len(t.deps) for tid, t in self.tasks.items()}
        queue = [tid for tid, deg in indegree.items() if deg == 0]
        seen = 0
        while queue:
            tid = queue.pop()
            seen += 1
            for dep_id in self._dependents[tid]:
                indegree[dep_id] -= 1
                if indegree[dep_id] == 0:
                    queue.append(dep_id)
        if seen != len(self.tasks):
            stuck = sorted(tid for tid, deg in indegree.items() if deg > 0)
            raise GraphError("task graph has a cycle through %r" % (stuck,))

    def __repr__(self) -> str:
        by_state: Dict[str, int] = {}
        for task in self.tasks.values():
            by_state[task.state] = by_state.get(task.state, 0) + 1
        inner = " ".join(
            "%s=%d" % (state, count) for state, count in sorted(by_state.items())
        )
        return "<TaskGraph %d tasks (%s)>" % (len(self.tasks), inner)
