"""Content-addressed artifact cache for compiled objects.

Keys are ``sha256(epoch, module, language, options, source)``: any
input that could change the compiled object participates -- including
the pipeline version epoch -- so a hit is always safe to reuse -- across :class:`~repro.driver.build.BuildEngine` instances,
across processes (with ``directory=``), and across differently-named
workspaces.  This subsumes the engine's old per-instance fingerprint
dict: the fingerprint dict answered "did *this engine* already compile
this module?", the artifact cache answers "has *anyone with the same
inputs* compiled it?".

Values are opaque bytes (serialized :class:`ObjectFile`s in practice).
The cache is size-bounded with LRU eviction and keeps hit/miss/evict
counters; all operations are lock-protected so parallel compile
workers can share one instance.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from typing import Dict, Optional

#: Version epoch of the compile pipeline.  It participates in every
#: artifact key (and in the incremental-CMO state index), so artifacts
#: produced by an older compiler version miss instead of being reused.
#: Bump it whenever codegen, the optimizer pipeline, or any serialized
#: wire format changes in a way that could make old artifacts stale.
PIPELINE_EPOCH = "2"


class CacheStats:
    """Observable cache activity."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0

    def delta(self, since: "CacheStats") -> "CacheStats":
        """Activity since an earlier :meth:`snapshot` of this object.

        Daemon sessions share one cache; each request reports the
        delta over its own build instead of resetting shared counters
        under concurrent readers."""
        out = CacheStats()
        out.hits = self.hits - since.hits
        out.misses = self.misses - since.misses
        out.stores = self.stores - since.stores
        out.evictions = self.evictions - since.evictions
        return out

    def snapshot(self) -> "CacheStats":
        out = CacheStats()
        out.hits = self.hits
        out.misses = self.misses
        out.stores = self.stores
        out.evictions = self.evictions
        return out

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:
        return "<CacheStats hits=%d misses=%d stores=%d evictions=%d>" % (
            self.hits, self.misses, self.stores, self.evictions
        )


class ArtifactCache:
    """Size-bounded LRU store of build artifacts, keyed by content.

    ``max_bytes`` bounds the sum of stored artifact sizes; inserting
    past the bound evicts least-recently-used entries first.  With
    ``directory=`` every entry is mirrored as ``<key>.art`` on disk and
    existing files are re-indexed on construction, so warm caches
    survive process restarts.
    """

    def __init__(self, max_bytes: int = 64 * 1024 * 1024,
                 directory: Optional[str] = None) -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.max_bytes = max_bytes
        self.directory = directory
        self.stats = CacheStats()
        self._lock = threading.Lock()
        #: key -> artifact bytes, in LRU order (oldest first).
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        self._total_bytes = 0
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
            self._load_directory()

    # -- Key derivation ----------------------------------------------------------

    @staticmethod
    def key(source: str, language: str = "auto", options: str = "",
            module: str = "", epoch: str = PIPELINE_EPOCH) -> str:
        """The content address of one compilation's inputs.

        ``epoch`` defaults to the current :data:`PIPELINE_EPOCH`, so
        entries written by an older compiler version never hit.
        """
        digest = hashlib.sha256()
        for part in (epoch, module, language, options, source):
            digest.update(part.encode("utf-8"))
            digest.update(b"\x00")
        return digest.hexdigest()

    # -- Persistence -------------------------------------------------------------

    def _path(self, key: str) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, key + ".art")

    def _load_directory(self) -> None:
        assert self.directory is not None
        for entry in sorted(os.listdir(self.directory)):
            if not entry.endswith(".art"):
                continue
            path = os.path.join(self.directory, entry)
            try:
                with open(path, "rb") as handle:
                    data = handle.read()
            except OSError:
                continue
            self._insert(entry[: -len(".art")], data, persist=False)

    # -- Core operations -----------------------------------------------------------

    def get(self, key: str) -> Optional[bytes]:
        """The stored artifact, or None; a hit refreshes LRU order."""
        with self._lock:
            data = self._entries.get(key)
            if data is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return data

    def put(self, key: str, data: bytes) -> None:
        """Store an artifact, evicting LRU entries past ``max_bytes``.

        An artifact bigger than the whole bound is stored anyway (the
        cache would otherwise be useless for it) and evicted by the
        next insert.
        """
        with self._lock:
            self._insert(key, data, persist=True)
            self.stats.stores += 1

    def _insert(self, key: str, data: bytes, persist: bool) -> None:
        old = self._entries.pop(key, None)
        if old is not None:
            self._total_bytes -= len(old)
        while self._entries and (
            self._total_bytes + len(data) > self.max_bytes
        ):
            self._evict_one()
        self._entries[key] = data
        self._total_bytes += len(data)
        if persist and self.directory is not None:
            with open(self._path(key), "wb") as handle:
                handle.write(data)

    def _evict_one(self) -> None:
        key, data = self._entries.popitem(last=False)
        self._total_bytes -= len(data)
        self.stats.evictions += 1
        if self.directory is not None:
            path = self._path(key)
            if os.path.exists(path):
                os.unlink(path)

    # -- Queries -----------------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return self._total_bytes

    def reset_stats(self) -> None:
        """Zero the hit/miss/store/evict counters (entries survive)."""
        with self._lock:
            self.stats.reset()

    def stats_snapshot(self) -> CacheStats:
        """A consistent copy of the counters (for delta reporting)."""
        with self._lock:
            return self.stats.snapshot()

    def clear(self) -> None:
        with self._lock:
            if self.directory is not None:
                for key in self._entries:
                    path = self._path(key)
                    if os.path.exists(path):
                        os.unlink(path)
            self._entries.clear()
            self._total_bytes = 0

    def __repr__(self) -> str:
        return "<ArtifactCache %d entries, %d/%d bytes, %r>" % (
            len(self._entries), self._total_bytes, self.max_bytes,
            self.stats,
        )
