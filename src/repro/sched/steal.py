"""Work-stealing dispatch queue for the compile farm.

The coordinator owns one :class:`StealQueue`; each connected worker
connection is registered under a worker id and pulls tasks through
:meth:`next_for`.  Tasks submitted together are spread over the
registered workers longest-processing-time-first (heaviest task to
the least-loaded queue), which is the same greedy bound the local
partition executor relies on; after that, placement self-corrects:

* an **idle** worker first pops its own queue head, then the shared
  backlog, then *steals* from the tail of the most-loaded peer queue
  (tail, not head, so the victim keeps the tasks it would run next);
* a **failed or disconnected** worker's queued *and* in-flight tasks
  are re-queued onto the backlog with their attempt count bumped; a
  task that exceeds ``retry_limit`` attempts fails the whole batch
  (the waiter gets :class:`TaskFailure`) instead of cycling forever.

The queue is transport-agnostic: it never touches a socket.  Workers
here are *connections* -- a worker daemon with ``--jobs 4`` registers
four of them -- so "steal from a loaded peer" and "spread over hosts"
fall out of the same mechanism.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple


class TaskFailure(Exception):
    """A task exhausted its retry budget; ``task_id``/``attempts``
    identify it and ``reason`` carries the last worker's error."""

    def __init__(self, task_id: str, attempts: int, reason: str) -> None:
        super().__init__(
            "task %s failed after %d attempt(s): %s"
            % (task_id, attempts, reason)
        )
        self.task_id = task_id
        self.attempts = attempts
        self.reason = reason


class StealTask:
    """One unit of dispatchable work."""

    __slots__ = ("task_id", "payload", "weight", "attempts")

    def __init__(self, task_id: str, payload, weight: int = 1) -> None:
        self.task_id = task_id
        self.payload = payload
        self.weight = weight
        self.attempts = 0

    def __repr__(self) -> str:
        return "<StealTask %s w=%d a=%d>" % (
            self.task_id, self.weight, self.attempts,
        )


class StealQueue:
    """Bounded-retry work-stealing queue (see module docstring)."""

    def __init__(self, retry_limit: int = 2) -> None:
        if retry_limit < 0:
            raise ValueError("retry_limit must be >= 0")
        self.retry_limit = retry_limit
        self._cond = threading.Condition()
        self._queues: Dict[str, Deque[StealTask]] = {}
        self._inflight: Dict[Tuple[str, str], StealTask] = {}
        self._backlog: Deque[StealTask] = deque()
        self._results: Dict[str, object] = {}
        self._failures: Dict[str, TaskFailure] = {}
        self._closed = False
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.steals = 0
        self.requeues = 0

    # -- Workers ---------------------------------------------------------------------

    def register_worker(self, worker_id: str) -> None:
        with self._cond:
            if worker_id in self._queues:
                raise ValueError("worker %r already registered" % worker_id)
            self._queues[worker_id] = deque()
            self._cond.notify_all()

    def unregister_worker(self, worker_id: str) -> None:
        """Drop a worker; its queued and in-flight tasks re-queue.

        An in-flight task counts the lost run as an attempt (the
        worker may have died *because* of it); queued tasks re-queue
        for free."""
        with self._cond:
            queued = self._queues.pop(worker_id, None) or ()
            inflight = [
                task for (wid, _), task in list(self._inflight.items())
                if wid == worker_id
            ]
            for key in [key for key in self._inflight
                        if key[0] == worker_id]:
                del self._inflight[key]
            for task in inflight:
                task.attempts += 1
                self._retire_or_requeue(
                    task, "worker %s disconnected" % worker_id
                )
            for task in queued:
                self.requeues += 1
                self._backlog.append(task)
            self._cond.notify_all()

    def worker_count(self) -> int:
        with self._cond:
            return len(self._queues)

    def is_registered(self, worker_id: str) -> bool:
        with self._cond:
            return not self._closed and worker_id in self._queues

    # -- Submission ------------------------------------------------------------------

    def submit(self, tasks: Sequence[StealTask]) -> None:
        """Queue a batch: heaviest-first onto the least-loaded worker
        queues (LPT), or onto the backlog when no worker is up yet."""
        with self._cond:
            if self._closed:
                raise RuntimeError("queue is closed")
            ordered = sorted(tasks, key=lambda t: (-t.weight, t.task_id))
            loads = {
                wid: sum(t.weight for t in q)
                for wid, q in self._queues.items()
            }
            for task in ordered:
                self.submitted += 1
                if not loads:
                    self._backlog.append(task)
                    continue
                wid = min(sorted(loads), key=lambda w: loads[w])
                self._queues[wid].append(task)
                loads[wid] += task.weight
            self._cond.notify_all()

    # -- Dispatch --------------------------------------------------------------------

    def next_for(self, worker_id: str,
                 timeout: Optional[float] = None) -> Optional[StealTask]:
        """Next task for ``worker_id``: own queue, backlog, or stolen
        from the most-loaded peer.  Blocks up to ``timeout`` (None =
        forever); returns None on timeout, queue close, or if the
        worker was unregistered while waiting."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                if self._closed or worker_id not in self._queues:
                    return None
                task = self._take_locked(worker_id)
                if task is not None:
                    self._inflight[(worker_id, task.task_id)] = task
                    return task
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    return None
                self._cond.wait(timeout=remaining)

    def _take_locked(self, worker_id: str) -> Optional[StealTask]:
        own = self._queues[worker_id]
        if own:
            return own.popleft()
        if self._backlog:
            return self._backlog.popleft()
        victim = None
        victim_load = 0
        for wid in sorted(self._queues):
            if wid == worker_id:
                continue
            load = sum(t.weight for t in self._queues[wid])
            if load > victim_load:
                victim, victim_load = wid, load
        if victim is not None and self._queues[victim]:
            self.steals += 1
            return self._queues[victim].pop()  # tail: victim keeps its head
        return None

    # -- Completion ------------------------------------------------------------------

    def complete(self, worker_id: str, task_id: str, result) -> None:
        with self._cond:
            self._inflight.pop((worker_id, task_id), None)
            self._results[task_id] = result
            self.completed += 1
            self._cond.notify_all()

    def fail(self, worker_id: str, task_id: str, reason: str) -> None:
        """A worker reported failure; re-queue or retire the task."""
        with self._cond:
            task = self._inflight.pop((worker_id, task_id), None)
            if task is None:
                return
            task.attempts += 1
            self._retire_or_requeue(task, reason)
            self._cond.notify_all()

    def _retire_or_requeue(self, task: StealTask, reason: str) -> None:
        if task.attempts > self.retry_limit:
            self.failed += 1
            self._failures[task.task_id] = TaskFailure(
                task.task_id, task.attempts, reason
            )
        else:
            self.requeues += 1
            self._backlog.append(task)

    # -- Waiting ---------------------------------------------------------------------

    def wait(self, task_ids: Sequence[str],
             timeout: Optional[float] = None) -> Dict[str, object]:
        """Block until every task finished; returns ``{id: result}``.

        Raises :class:`TaskFailure` when any task exhausted its
        retries and ``TimeoutError`` when ``timeout`` elapses first.
        Finished tasks are consumed (removed from the queue's result
        map) so ids can be reused across batches."""
        deadline = None if timeout is None else time.monotonic() + timeout
        wanted = list(task_ids)
        with self._cond:
            while True:
                for task_id in wanted:
                    failure = self._failures.get(task_id)
                    if failure is not None:
                        del self._failures[task_id]
                        raise failure
                if all(tid in self._results for tid in wanted):
                    return {tid: self._results.pop(tid) for tid in wanted}
                if self._closed:
                    raise TaskFailure(
                        "?", 0, "queue closed while waiting"
                    )
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    missing = [tid for tid in wanted
                               if tid not in self._results]
                    raise TimeoutError(
                        "timed out waiting for %d task(s): %s"
                        % (len(missing), ", ".join(missing[:4]))
                    )
                self._cond.wait(timeout=remaining)

    # -- Lifecycle / stats -----------------------------------------------------------

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def stats(self) -> Dict[str, int]:
        with self._cond:
            return {
                "workers": len(self._queues),
                "queued": (len(self._backlog)
                           + sum(len(q) for q in self._queues.values())),
                "inflight": len(self._inflight),
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "steals": self.steals,
                "requeues": self.requeues,
            }
