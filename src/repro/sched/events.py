"""Build-event tracing.

Every scheduled task emits structured start/finish/cache-hit/error
events with wall-clock spans.  The log exports two ways:

* :meth:`EventLog.to_chrome_trace` -- Chrome ``trace_event`` JSON
  (load in ``chrome://tracing`` / Perfetto); complete events
  (``"ph": "X"``) for spans, instants (``"ph": "i"``) for cache hits
  and errors, with one row per worker;
* :meth:`EventLog.summary` -- a text report alongside
  :class:`~repro.driver.compiler.BuildTimings`: per-category totals,
  slowest tasks, cache hits.

Timestamps are ``perf_counter`` microseconds relative to the log's
creation; appends are lock-protected so worker threads can emit
concurrently.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, List, Optional


class BuildEvent:
    """One structured build event.

    ``kind`` is "span" (has a duration), "instant" (cache_hit, error)
    or "counter".  ``ts_us``/``dur_us`` are microseconds since the
    owning log's epoch.
    """

    __slots__ = ("name", "category", "kind", "ts_us", "dur_us", "worker",
                 "args")

    def __init__(
        self,
        name: str,
        category: str,
        kind: str,
        ts_us: int,
        dur_us: int = 0,
        worker: int = 0,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        self.name = name
        self.category = category
        self.kind = kind
        self.ts_us = ts_us
        self.dur_us = dur_us
        self.worker = worker
        self.args = args or {}

    def __repr__(self) -> str:
        return "<BuildEvent %s %s @%dus +%dus w%d>" % (
            self.kind, self.name, self.ts_us, self.dur_us, self.worker
        )


class _Span:
    """Context manager recording one complete event on exit."""

    def __init__(self, log: "EventLog", name: str, category: str,
                 worker: int, args: Optional[Dict[str, object]]) -> None:
        self.log = log
        self.name = name
        self.category = category
        self.worker = worker
        self.args = args

    def __enter__(self) -> "_Span":
        self.start_us = self.log.now_us()
        return self

    def __exit__(self, exc_type, exc, _tb) -> None:
        end_us = self.log.now_us()
        args = dict(self.args or {})
        if exc is not None:
            args["error"] = "%s: %s" % (type(exc).__name__, exc)
        self.log.append(BuildEvent(
            self.name, self.category, "span",
            self.start_us, end_us - self.start_us, self.worker, args,
        ))
        if exc is not None:
            self.log.instant("error:%s" % self.name, category="error",
                             worker=self.worker, args=args)


class EventLog:
    """Thread-safe accumulator of build events."""

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._local = threading.local()
        self.events: List[BuildEvent] = []

    def now_us(self) -> int:
        return int((time.perf_counter() - self._epoch) * 1_000_000)

    def clear(self) -> None:
        """Drop recorded events and restart the epoch.

        A warm compile session reuses one log across builds; clearing
        at build start keeps per-build task counts and trace exports
        scoped to the build that produced them."""
        with self._lock:
            self.events = []
            self._epoch = time.perf_counter()

    def append(self, event: BuildEvent) -> None:
        with self._lock:
            self.events.append(event)

    # -- Per-thread default worker ------------------------------------------------

    def set_worker(self, worker: int) -> None:
        """Bind this thread's default worker lane.

        Executor worker threads (and partition runners) call this so
        spans emitted deep inside a task -- where no worker id is in
        scope -- still land on the right trace row.
        """
        self._local.worker = worker

    def current_worker(self) -> int:
        return getattr(self._local, "worker", 0)

    def span(self, name: str, category: str = "task",
             worker: Optional[int] = None,
             args: Optional[Dict[str, object]] = None) -> _Span:
        """``with log.span("compile:m1", "compile"): ...``

        ``worker=None`` uses the thread's bound lane (see
        :meth:`set_worker`).
        """
        if worker is None:
            worker = self.current_worker()
        return _Span(self, name, category, worker, args)

    def instant(self, name: str, category: str = "event",
                worker: Optional[int] = None,
                args: Optional[Dict[str, object]] = None) -> None:
        if worker is None:
            worker = self.current_worker()
        self.append(BuildEvent(name, category, "instant", self.now_us(),
                               0, worker, args))

    # -- Queries -----------------------------------------------------------------

    def spans(self, category: Optional[str] = None) -> List[BuildEvent]:
        return [e for e in self.events if e.kind == "span"
                and (category is None or e.category == category)]

    def count(self, kind: Optional[str] = None,
              category: Optional[str] = None) -> int:
        return sum(
            1 for e in self.events
            if (kind is None or e.kind == kind)
            and (category is None or e.category == category)
        )

    # -- Chrome trace_event export -----------------------------------------------

    def to_chrome_trace(self) -> Dict[str, object]:
        """The log as a Chrome ``trace_event`` JSON object."""
        trace_events: List[Dict[str, object]] = []
        workers = sorted({e.worker for e in self.events})
        for worker in workers:
            trace_events.append({
                "name": "thread_name", "ph": "M", "pid": 1, "tid": worker,
                "args": {"name": "worker-%d" % worker},
            })
        for event in self.events:
            record: Dict[str, object] = {
                "name": event.name,
                "cat": event.category,
                "pid": 1,
                "tid": event.worker,
                "ts": event.ts_us,
            }
            if event.kind == "span":
                record["ph"] = "X"
                record["dur"] = event.dur_us
            else:
                record["ph"] = "i"
                record["s"] = "t"
            if event.args:
                record["args"] = {k: str(v) for k, v in event.args.items()}
            trace_events.append(record)
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome_trace(), handle, indent=1)
            handle.write("\n")

    # -- Text report ---------------------------------------------------------------

    def summary(self, top: int = 5) -> str:
        """Per-category span totals plus the slowest individual tasks."""
        by_category: Dict[str, List[BuildEvent]] = {}
        for event in self.spans():
            by_category.setdefault(event.category, []).append(event)
        lines = ["build events: %d (%d spans)"
                 % (len(self.events), len(self.spans()))]
        for category in sorted(by_category):
            events = by_category[category]
            total_ms = sum(e.dur_us for e in events) / 1000.0
            lines.append("  %-10s %4d tasks  %8.2fms total"
                         % (category, len(events), total_ms))
        slowest = sorted(self.spans(), key=lambda e: -e.dur_us)[:top]
        if slowest:
            lines.append("  slowest:")
            for event in slowest:
                lines.append("    %-28s %8.2fms (worker %d)"
                             % (event.name, event.dur_us / 1000.0,
                                event.worker))
        hits = self.count(kind="instant", category="cache")
        if hits:
            lines.append("  cache hits: %d" % hits)
        errors = self.count(category="error")
        if errors:
            lines.append("  errors: %d" % errors)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "<EventLog %d events>" % len(self.events)
