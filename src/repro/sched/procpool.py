"""A persistent pool of worker *processes* for CPU-bound tasks.

The thread-backed :class:`~repro.sched.executor.Executor` is the
right tool for tasks that release the GIL (I/O, subprocesses); the
partitioned LTRANS phase is pure Python and fully GIL-serialized, so
``--hlo-jobs 4`` on threads buys zero CPU parallelism (see
BENCH_hlo_parallel.json before this backend existed: 1.05x best
case).  :class:`ProcessWorkerPool` runs the same task shape --
``worker_fn(payload) -> result`` -- on N child processes instead.

Design points:

* **Spawn-safe protocol.**  ``worker_fn`` must be a module-level
  importable callable and payloads/results must be picklable; each
  worker is a :func:`_worker_main` loop over one duplex pipe
  (``recv (task_id, payload)`` -> ``send (task_id, ok, result)``).
  The default start method is ``fork`` where the platform offers it
  (cheapest; Linux), falling back to ``spawn`` -- and the protocol
  works identically under both, which the test suite pins.
* **Crash containment.**  A worker that dies mid-task (OOM kill,
  SIGKILL, segfault in an extension) surfaces as EOF on its pipe; the
  task is re-queued with its attempt count bumped, bounded by
  ``retry_limit`` exactly like the farm's
  :class:`~repro.sched.steal.StealQueue` -- exhaustion raises the
  same :class:`~repro.sched.steal.TaskFailure`.  A replacement worker
  is spawned while work remains.
* **Warm reuse.**  The pool survives between batches: the daemon
  keeps one across requests so warm builds skip process spawn (and
  the workers' decoded-context caches stay hot).  :meth:`reap_idle`
  retires workers that have sat idle, and :meth:`close` drains the
  pool (stop sentinel, join, escalating to terminate/kill) -- the
  daemon calls it from its SIGTERM path.
* **Observability.**  Per-task spans land in the caller's
  :class:`~repro.sched.events.EventLog` on one lane per worker
  (send-to-completion wall clock, measured by the parent), and the
  pool tracks ``spawn_seconds`` / ``crashes`` / ``requeues`` so
  benchmarks can split startup cost from steady-state throughput.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import threading
import time
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from .events import BuildEvent, EventLog
from .steal import TaskFailure

#: First message on every worker pipe (carries the worker's pid);
#: consumed by the parent to measure ready latency.
_READY = "__procpool_ready__"


def default_start_method() -> str:
    """``fork`` where available (cheap, Linux), else the platform
    default (``spawn`` on macOS/Windows)."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


def processes_available() -> bool:
    """Whether this platform can run the process backend at all."""
    try:
        return bool(multiprocessing.get_all_start_methods())
    except (ImportError, NotImplementedError):  # pragma: no cover
        return False


def cpu_count() -> int:
    """Schedulable CPUs for *this* process (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return max(1, os.cpu_count() or 1)


def _identity(payload):
    """Module-level echo; used by tests to pin spawn-safety."""
    return payload


def _worker_main(conn, worker_fn) -> None:
    """Child process body: serve tasks until the stop sentinel/EOF."""
    try:
        conn.send((_READY, os.getpid()))
    except (OSError, BrokenPipeError, EOFError):
        return
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        task_id, payload = message
        try:
            result = worker_fn(payload)
        except BaseException as exc:  # noqa: BLE001 - reported, not fatal
            try:
                conn.send((task_id, False,
                           "%s: %s" % (type(exc).__name__, exc)))
            except (OSError, BrokenPipeError, EOFError):
                return
            continue
        try:
            conn.send((task_id, True, result))
        except (OSError, BrokenPipeError, EOFError):
            return


class _Task:
    __slots__ = ("task_id", "payload", "weight", "attempts")

    def __init__(self, task_id: str, payload, weight: int) -> None:
        self.task_id = task_id
        self.payload = payload
        self.weight = weight
        self.attempts = 0


class _Worker:
    __slots__ = ("lane", "process", "conn", "task", "sent_us",
                 "started_at", "ready_seen", "last_used")

    def __init__(self, lane: int, process, conn) -> None:
        self.lane = lane
        self.process = process
        self.conn = conn
        self.task: Optional[_Task] = None
        self.sent_us = 0
        self.started_at = time.perf_counter()
        self.ready_seen = False
        self.last_used = time.monotonic()


class ProcessWorkerPool:
    """N worker processes running one importable ``worker_fn``."""

    def __init__(
        self,
        worker_fn,
        start_method: Optional[str] = None,
        retry_limit: int = 2,
        idle_seconds: float = 30.0,
    ) -> None:
        if retry_limit < 0:
            raise ValueError("retry_limit must be >= 0")
        self.worker_fn = worker_fn
        self.start_method = start_method or default_start_method()
        self.retry_limit = retry_limit
        self.idle_seconds = idle_seconds
        self._ctx = multiprocessing.get_context(self.start_method)
        self._lock = threading.Lock()
        self._workers: List[_Worker] = []
        self._next_lane = 0
        self.closed = False
        #: Wall-clock from ``Process.start()`` to the worker's ready
        #: handshake, summed over every spawn.
        self.spawn_seconds = 0.0
        self.spawned = 0
        self.crashes = 0
        self.requeues = 0
        self.tasks_done = 0
        self.tasks_failed = 0

    # -- Worker lifecycle --------------------------------------------------------

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.worker_fn),
            daemon=True,
            name="procpool-%d" % self._next_lane,
        )
        worker = _Worker(self._next_lane, process, parent_conn)
        self._next_lane += 1
        process.start()
        child_conn.close()
        self.spawned += 1
        return worker

    def _stop_worker(self, worker: _Worker, timeout: float = 2.0) -> None:
        try:
            worker.conn.send(None)
        except (OSError, BrokenPipeError, ValueError):
            pass
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.process.join(timeout)
        if worker.process.is_alive():
            worker.process.terminate()  # SIGTERM
            worker.process.join(1.0)
        if worker.process.is_alive():  # pragma: no cover - stuck child
            worker.process.kill()
            worker.process.join(1.0)

    def _discard_crashed(self, worker: _Worker) -> None:
        """Drop a worker whose pipe broke; never blocks long."""
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.process.join(1.0)
        if worker.process.is_alive():  # pragma: no cover
            worker.process.kill()
            worker.process.join(1.0)
        if worker in self._workers:
            self._workers.remove(worker)

    # -- Batch execution ---------------------------------------------------------

    def run_batch(
        self,
        tasks: Sequence[Tuple[str, object, int]],
        jobs: int = 1,
        events: Optional[EventLog] = None,
        category: str = "ltrans",
    ) -> Dict[str, object]:
        """Run ``(task_id, payload, weight)`` tasks on up to ``jobs``
        workers; returns ``{task_id: result}``.

        Heaviest-first dispatch (the same greedy LPT bound the thread
        executor and the farm queue rely on).  Raises
        :class:`TaskFailure` when any task exhausts its retry budget;
        one batch runs at a time (the pool lock serializes callers).
        """
        if not tasks:
            return {}
        with self._lock:
            if self.closed:
                raise RuntimeError("pool is closed")
            return self._run_batch_locked(tasks, jobs, events, category)

    def _run_batch_locked(self, tasks, jobs, events, category):
        target = max(1, min(int(jobs), len(tasks)))
        while len(self._workers) < target:
            self._workers.append(self._spawn())
        eligible = self._workers[:target]

        pending = deque(sorted(
            (_Task(tid, payload, weight) for tid, payload, weight in tasks),
            key=lambda task: -task.weight,
        ))
        results: Dict[str, object] = {}
        expected = len(tasks)
        try:
            while len(results) < expected:
                self._assign(eligible, pending, events)
                busy = [w for w in eligible if w.task is not None]
                if not busy:
                    if pending:
                        # Every eligible worker crashed and could not
                        # be replaced; surface the head task.
                        task = pending[0]
                        raise TaskFailure(
                            task.task_id, task.attempts + 1,
                            "no live worker processes",
                        )
                    break
                ready = multiprocessing.connection.wait(
                    [w.conn for w in busy], timeout=1.0
                )
                for conn in ready:
                    worker = next(w for w in busy if w.conn is conn)
                    self._drain_one(worker, eligible, pending, results,
                                    events, category)
            return results
        except BaseException:
            # A failed batch leaves in-flight workers in an unknown
            # protocol state; drop them so the next batch starts clean.
            for worker in list(self._workers):
                if worker.task is not None:
                    self._discard_crashed(worker)
            raise

    def _assign(self, eligible: List[_Worker], pending,
                events: Optional[EventLog]) -> None:
        for worker in eligible:
            if not pending:
                return
            if worker.task is not None:
                continue
            task = pending.popleft()
            worker.task = task
            worker.sent_us = events.now_us() if events is not None else 0
            try:
                worker.conn.send((task.task_id, task.payload))
            except (OSError, BrokenPipeError, ValueError):
                self._on_crash(worker, eligible, pending)

    def _drain_one(self, worker: _Worker, eligible: List[_Worker],
                   pending, results: Dict[str, object],
                   events: Optional[EventLog], category: str) -> None:
        try:
            message = worker.conn.recv()
        except (EOFError, OSError):
            self._on_crash(worker, eligible, pending)
            return
        if isinstance(message, tuple) and message and message[0] == _READY:
            if not worker.ready_seen:
                worker.ready_seen = True
                self.spawn_seconds += time.perf_counter() - worker.started_at
            return
        task_id, ok, payload = message
        task = worker.task
        worker.task = None
        worker.last_used = time.monotonic()
        if task is None or task.task_id != task_id:  # pragma: no cover
            # Protocol skew (should be impossible); drop the worker.
            self._discard_crashed(worker)
            if worker in eligible:
                eligible.remove(worker)
            return
        if ok:
            results[task_id] = payload
            self.tasks_done += 1
            if events is not None:
                now = events.now_us()
                events.append(BuildEvent(
                    task_id, category, "span", worker.sent_us,
                    now - worker.sent_us, worker.lane,
                ))
        else:
            self._retire_or_requeue(task, pending, str(payload))

    def _on_crash(self, worker: _Worker, eligible: List[_Worker],
                  pending) -> None:
        self.crashes += 1
        task = worker.task
        worker.task = None
        self._discard_crashed(worker)
        if worker in eligible:
            eligible.remove(worker)
        if task is not None:
            self._retire_or_requeue(task, pending,
                                    "worker process died", requeue_front=True)
        if pending or any(w.task is not None for w in eligible):
            replacement = self._spawn()
            self._workers.append(replacement)
            eligible.append(replacement)

    def _retire_or_requeue(self, task: _Task, pending, reason: str,
                           requeue_front: bool = False) -> None:
        task.attempts += 1
        if task.attempts > self.retry_limit:
            self.tasks_failed += 1
            raise TaskFailure(task.task_id, task.attempts, reason)
        self.requeues += 1
        if requeue_front:
            pending.appendleft(task)
        else:
            pending.append(task)

    # -- Housekeeping ------------------------------------------------------------

    def reap_idle(self, idle_seconds: Optional[float] = None) -> int:
        """Retire workers idle for at least ``idle_seconds``; returns
        how many were reaped.  The daemon calls this between requests
        so a burst of parallel builds doesn't pin worker processes
        forever."""
        limit = self.idle_seconds if idle_seconds is None else idle_seconds
        now = time.monotonic()
        with self._lock:
            reap = [w for w in self._workers
                    if w.task is None and now - w.last_used >= limit]
            for worker in reap:
                self._workers.remove(worker)
        for worker in reap:
            self._stop_worker(worker)
        return len(reap)

    def worker_pids(self) -> List[int]:
        with self._lock:
            return [w.process.pid for w in self._workers
                    if w.process.pid is not None]

    def stats(self) -> Dict[str, object]:
        with self._lock:
            workers = len(self._workers)
        return {
            "workers": workers,
            "start_method": self.start_method,
            "spawned": self.spawned,
            "spawn_seconds": self.spawn_seconds,
            "crashes": self.crashes,
            "requeues": self.requeues,
            "tasks_done": self.tasks_done,
            "tasks_failed": self.tasks_failed,
        }

    def close(self, timeout: float = 5.0) -> None:
        """Drain the pool: stop sentinel, join, escalate to
        terminate/kill for stragglers.  Idempotent."""
        with self._lock:
            if self.closed:
                return
            self.closed = True
            workers = list(self._workers)
            self._workers = []
        deadline = time.monotonic() + timeout
        for worker in workers:
            remaining = max(0.5, deadline - time.monotonic())
            self._stop_worker(worker, timeout=remaining)

    def __enter__(self) -> "ProcessWorkerPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return "<ProcessWorkerPool %s %d workers, %d done>" % (
            self.start_method, len(self._workers), self.tasks_done,
        )
