"""The task executor: runs a :class:`TaskGraph` on a worker pool.

``jobs=1`` is a pure serial loop (no threads, no locks on the hot
path) and is the reference semantics; ``jobs>1`` dispatches ready
tasks onto a ``ThreadPoolExecutor`` as their dependencies complete.
Either way results land keyed by task id and consumers read them in
graph insertion order, so parallel and serial builds observe the same
result ordering -- the determinism the driver's byte-identical-output
guarantee rests on.

Failures never abort the whole run: a failing task cancels only its
transitive dependents (via :meth:`TaskGraph.mark_failed`) and the
executor keeps draining every task that remains runnable, so all
diagnostics are collected in one pass.
"""

from __future__ import annotations

import threading
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Dict, List, Optional

from .events import EventLog
from .graph import Task, TaskGraph, TaskState


class TaskError(Exception):
    """One or more tasks failed; carries every collected diagnostic."""

    def __init__(self, failures: Dict[str, BaseException],
                 cancelled: List[str]) -> None:
        self.failures = failures
        self.cancelled = cancelled
        inner = "; ".join(
            "%s: %s" % (tid, exc) for tid, exc in failures.items()
        )
        super().__init__(
            "%d task(s) failed (%d cancelled): %s"
            % (len(failures), len(cancelled), inner)
        )


class ExecutionOutcome:
    """Everything one executor run produced, in graph insertion order."""

    def __init__(self) -> None:
        #: task id -> result, for every DONE task.
        self.results: Dict[str, object] = {}
        #: task id -> exception, for every FAILED task.
        self.failures: Dict[str, BaseException] = {}
        #: ids cancelled because an ancestor failed.
        self.cancelled: List[str] = []

    @property
    def ok(self) -> bool:
        return not self.failures

    def raise_first(self) -> None:
        """Re-raise the first failure (graph insertion order) verbatim."""
        for exc in self.failures.values():
            raise exc

    def raise_all(self) -> None:
        """Raise a :class:`TaskError` bundling every diagnostic."""
        if self.failures:
            raise TaskError(dict(self.failures), list(self.cancelled))

    def __repr__(self) -> str:
        return "<ExecutionOutcome %d done, %d failed, %d cancelled>" % (
            len(self.results), len(self.failures), len(self.cancelled)
        )


class Executor:
    """Runs task graphs with a configurable degree of parallelism."""

    def __init__(self, jobs: int = 1,
                 events: Optional[EventLog] = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.events = events if events is not None else EventLog()

    # -- Entry point -------------------------------------------------------------

    def run(self, graph: TaskGraph) -> ExecutionOutcome:
        graph.validate()
        if self.jobs == 1:
            self._run_serial(graph)
        else:
            self._run_parallel(graph)
        # Report in graph insertion order, whatever the completion
        # order was.
        outcome = ExecutionOutcome()
        for task_id, task in graph.tasks.items():
            if task.state == TaskState.DONE:
                outcome.results[task_id] = task.result
            elif task.state == TaskState.FAILED:
                assert task.error is not None
                outcome.failures[task_id] = task.error
            elif task.state == TaskState.CANCELLED:
                outcome.cancelled.append(task_id)
        return outcome

    # -- Serial reference semantics ----------------------------------------------

    def _run_serial(self, graph: TaskGraph) -> None:
        while True:
            ready = graph.ready()
            if not ready:
                break  # settled, or blocked behind failures
            for task in ready:
                graph.mark_running(task.task_id)
                self._settle(graph, task, self._call(graph, task, worker=0))

    # -- Worker-pool path --------------------------------------------------------

    def _run_parallel(self, graph: TaskGraph) -> None:
        lock = threading.Lock()
        worker_ids: Dict[int, int] = {}

        def current_worker() -> int:
            ident = threading.get_ident()
            with lock:
                return worker_ids.setdefault(ident, len(worker_ids))

        with ThreadPoolExecutor(
            max_workers=self.jobs, thread_name_prefix="sched"
        ) as pool:
            in_flight = {}

            def submit_ready() -> None:
                for task in graph.ready():
                    graph.mark_running(task.task_id)
                    future = pool.submit(
                        lambda t=task: self._call(graph, t, current_worker())
                    )
                    in_flight[future] = task

            submit_ready()
            while in_flight:
                finished, _ = wait(in_flight, return_when=FIRST_COMPLETED)
                for future in finished:
                    task = in_flight.pop(future)
                    self._settle(graph, task, future.result())
                submit_ready()

    # -- Shared task plumbing ------------------------------------------------------

    def _call(self, graph: TaskGraph, task: Task,
              worker: int) -> Optional[BaseException]:
        """Run one task body; returns the exception instead of raising.

        The result is parked on ``task.result``; the graph state
        machine advances in :meth:`_settle` (main thread only, so
        graph mutation needs no locking).
        """
        # Dependencies are DONE before submission; reading their
        # results is race-free.
        inputs = {dep: graph.tasks[dep].result for dep in task.deps}
        # Bind the lane so spans emitted inside the task body (which
        # has no worker id in scope) land on this worker's trace row.
        self.events.set_worker(worker)
        try:
            with self.events.span(task.task_id, task.category, worker):
                task.result = task.fn(inputs)
            return None
        except BaseException as exc:  # collected, not raised
            return exc

    def _settle(self, graph: TaskGraph, task: Task,
                error: Optional[BaseException]) -> None:
        if error is None:
            graph.mark_done(task.task_id, task.result)
        else:
            graph.mark_failed(task.task_id, error)

    def __repr__(self) -> str:
        return "<Executor jobs=%d>" % self.jobs
