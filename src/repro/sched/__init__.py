"""Build orchestration: task DAG, parallel executor, artifact cache,
build-event tracing.

The paper's framework makes cross-module optimization *scale*; this
package makes the surrounding build scale the same way GCC's WHOPR
does -- per-module frontend/codegen work is embarrassingly parallel,
so the driver models a build as a task DAG (per-module compile tasks
feeding one link task), dispatches ready tasks onto a worker pool, and
memoizes compiled objects in a content-addressed artifact cache shared
across build engines.  Every task emits structured build events that
export as Chrome ``trace_event`` JSON.

Layering: ``graph`` (pure DAG) <- ``executor`` (worker pool) and
``artifacts``/``events`` (storage / telemetry); ``repro.driver`` wires
them into :class:`~repro.driver.build.BuildEngine` and
:meth:`~repro.driver.compiler.Compiler.build`.
"""

from .artifacts import PIPELINE_EPOCH, ArtifactCache, CacheStats
from .events import BuildEvent, EventLog
from .executor import ExecutionOutcome, Executor, TaskError
from .graph import Task, TaskGraph, TaskState
from .steal import StealQueue, StealTask, TaskFailure

__all__ = [
    "PIPELINE_EPOCH",
    "ArtifactCache",
    "CacheStats",
    "BuildEvent",
    "EventLog",
    "ExecutionOutcome",
    "Executor",
    "TaskError",
    "Task",
    "TaskGraph",
    "TaskState",
    "StealQueue",
    "StealTask",
    "TaskFailure",
]
