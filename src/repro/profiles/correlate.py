"""Profile-to-code correlation (paper §3, §6.2).

The compiler "correlates profile information from the database with
current program structures".  We checksum each routine's control-flow
structure; a profile whose checksum matches is exact.  When the source
has changed since training, the checksum differs and the profile is
*stale*: we then fall back to label-based partial matching, keeping
counts for blocks that still exist (the paper notes stale profiles
degrade gracefully, citing Grove's receiver-class-profile result).
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Optional

from ..ir.instructions import Opcode
from ..ir.routine import Routine

if TYPE_CHECKING:  # pragma: no cover
    from .database import ProfileDatabase, RoutineProfile


def checksum_routine(routine: Routine) -> int:
    """A stable checksum of a routine's control-flow structure.

    Includes block labels, terminator shapes and call sites -- the
    features profiles are keyed by -- but not straight-line arithmetic,
    so trivial edits don't needlessly invalidate profiles.
    """
    parts = [routine.name, str(routine.n_params)]
    for block in routine.blocks:
        parts.append(block.label)
        term = block.terminator
        if term is not None:
            parts.append(term.op.value)
            parts.extend(term.targets)
        for index, instr in enumerate(block.instrs):
            if instr.op is Opcode.CALL:
                parts.append("%d@%s" % (index, instr.sym))
    blob = "\x00".join(parts).encode("utf-8")
    return zlib.crc32(blob) & 0xFFFFFFFF


def correlate(
    database: "ProfileDatabase", routine: Routine
) -> Optional["RoutineProfile"]:
    """Find usable profile data for ``routine``.

    Returns the stored profile when the structure checksum matches; a
    label-filtered *stale* copy when it does not but some block labels
    still exist; None when there is no data at all.
    """
    profile = database.routines.get(routine.name)
    if profile is None:
        return None
    if profile.checksum == checksum_routine(routine):
        return profile
    labels = set(routine.block_labels())
    surviving = {
        label: count
        for label, count in profile.block_counts.items()
        if label in labels
    }
    if not surviving:
        return None
    stale = profile.filtered_to_labels(labels)
    stale.stale = True
    return stale
