"""Profile-based optimization support: probes, databases, correlation."""

from .correlate import checksum_routine, correlate
from .database import (
    DEFAULT_DECAY,
    ProfileDatabase,
    ProfileFormatError,
    RoutineProfile,
)
from .probes import (
    EdgeSource,
    ProbeInfo,
    ProbeTable,
    instrument_program,
    instrument_routine,
)

__all__ = [
    "checksum_routine",
    "correlate",
    "DEFAULT_DECAY",
    "ProfileDatabase",
    "ProfileFormatError",
    "RoutineProfile",
    "EdgeSource",
    "ProbeInfo",
    "ProbeTable",
    "instrument_program",
    "instrument_routine",
]
