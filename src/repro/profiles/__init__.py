"""Profile-based optimization support: probes, databases, correlation."""

from .correlate import checksum_routine, correlate
from .database import ProfileDatabase, RoutineProfile
from .probes import (
    EdgeSource,
    ProbeInfo,
    ProbeTable,
    instrument_program,
    instrument_routine,
)

__all__ = [
    "checksum_routine",
    "correlate",
    "ProfileDatabase",
    "RoutineProfile",
    "EdgeSource",
    "ProbeInfo",
    "ProbeTable",
    "instrument_program",
    "instrument_routine",
]
