"""Probe insertion for profile collection (paper §3, "+I").

The instrumenter inserts counting probes into each routine:

* one **block probe** at the top of every basic block, and
* one **edge probe** on every critical conditional-branch edge (an edge
  whose target has multiple predecessors), realized by splitting the
  edge with a trampoline block.

Together these yield exact basic-block execution counts and exact
conditional-edge counts.  Call-site counts are derived (a call executes
exactly as often as its containing block).  Probe ids are program-wide
and dense; the :class:`ProbeTable` records what each id means plus the
structure checksum used later for stale-profile correlation.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..ir.basic_block import BasicBlock
from ..ir.instructions import Instr, Opcode
from ..ir.program import Program
from ..ir.routine import Routine
from .correlate import checksum_routine


class ProbeInfo:
    """What one probe id measures."""

    __slots__ = ("probe_id", "routine", "kind", "key")

    def __init__(self, probe_id: int, routine: str, kind: str, key: Tuple) -> None:
        self.probe_id = probe_id
        self.routine = routine
        #: "block" (key = (label,)) or "edge" (key = (from_label, to_label)).
        self.kind = kind
        self.key = key

    def __repr__(self) -> str:
        return "<ProbeInfo %d %s %s%r>" % (
            self.probe_id,
            self.routine,
            self.kind,
            self.key,
        )


class EdgeSource:
    """How to obtain one conditional edge's count from probe counts."""

    __slots__ = ("from_label", "to_label", "probe_id")

    def __init__(self, from_label: str, to_label: str, probe_id: int) -> None:
        self.from_label = from_label
        self.to_label = to_label
        self.probe_id = probe_id


class ProbeTable:
    """Program-wide probe bookkeeping produced by instrumentation."""

    def __init__(self) -> None:
        self.probes: List[ProbeInfo] = []
        #: routine -> original structure checksum (pre-instrumentation).
        self.checksums: Dict[str, int] = {}
        #: routine -> conditional edges and their count sources.
        self.edges: Dict[str, List[EdgeSource]] = {}
        #: routine -> original block labels, in layout order.
        self.block_labels: Dict[str, List[str]] = {}
        #: routine -> call sites (block, index, callee) pre-instrumentation.
        self.call_sites: Dict[str, List[Tuple[str, int, str]]] = {}
        #: routine -> {original label: block probe id}.
        self.block_probe: Dict[str, Dict[str, int]] = {}

    def new_probe(self, routine: str, kind: str, key: Tuple) -> int:
        probe_id = len(self.probes)
        self.probes.append(ProbeInfo(probe_id, routine, kind, key))
        return probe_id

    def probes_for(self, routine: str) -> List[ProbeInfo]:
        return [p for p in self.probes if p.routine == routine]

    def __len__(self) -> int:
        return len(self.probes)


def instrument_routine(routine: Routine, table: ProbeTable) -> None:
    """Insert probes into ``routine`` in place and record bookkeeping."""
    name = routine.name
    table.checksums[name] = checksum_routine(routine)
    table.block_labels[name] = routine.block_labels()
    table.call_sites[name] = routine.call_sites()

    preds = routine.predecessors()
    edge_sources: List[EdgeSource] = []
    trampolines: List[BasicBlock] = []
    pending_edges: List[Tuple[str, str]] = []
    used_labels = {block.label for block in routine.blocks}

    # Split critical conditional edges with probe trampolines.
    for block in routine.blocks:
        term = block.terminator
        if term is None or term.op is not Opcode.BR:
            continue
        targets = term.targets
        if targets[0] == targets[1]:
            # Degenerate branch: a single edge, counted by the target's
            # block probe.
            continue
        new_targets = []
        for target in targets:
            if len(preds[target]) > 1:
                label = "%s_to_%s" % (block.label, target)
                serial = 0
                while label in used_labels:
                    serial += 1
                    label = "%s_to_%s_%d" % (block.label, target, serial)
                used_labels.add(label)
                probe_id = table.new_probe(name, "edge", (block.label, target))
                tramp = BasicBlock(label)
                tramp.append(Instr(Opcode.PROBE, imm=probe_id))
                tramp.set_terminator(Instr(Opcode.JMP, targets=(target,)))
                trampolines.append(tramp)
                edge_sources.append(EdgeSource(block.label, target, probe_id))
                new_targets.append(label)
            else:
                pending_edges.append((block.label, target))
                new_targets.append(target)
        term.targets = tuple(new_targets)

    # Block probes at the top of every original block.
    block_probe: Dict[str, int] = {}
    for block in routine.blocks:
        probe_id = table.new_probe(name, "block", (block.label,))
        block.instrs.insert(0, Instr(Opcode.PROBE, imm=probe_id))
        block_probe[block.label] = probe_id
    table.block_probe[name] = block_probe

    routine.blocks.extend(trampolines)

    # Non-split conditional edges: counted by the target's block probe
    # (valid because the target has a unique predecessor).
    for from_label, to_label in pending_edges:
        edge_sources.append(
            EdgeSource(from_label, to_label, block_probe[to_label])
        )
    table.edges[name] = edge_sources
    routine.invalidate()


def instrument_program(program: Program) -> ProbeTable:
    """Instrument every routine in ``program`` (in place)."""
    table = ProbeTable()
    for module in program.module_list():
        for routine in module.routine_list():
            instrument_routine(routine, table)
    return table
