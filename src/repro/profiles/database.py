"""The profile database (paper §3).

Running an instrumented program produces raw probe counts; collection
turns those into per-routine block/edge/call counts stored in a
:class:`ProfileDatabase`.  Databases persist as JSON, merge across runs
("generated, or added to, if data from an earlier run already exists"),
and are handed to the compiler to enable PBO.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Set, Tuple

from .probes import ProbeTable

_FORMAT_VERSION = 2
#: Versions ``from_json`` understands; older ones are migrated on load.
_SUPPORTED_VERSIONS = (1, 2)

#: Default per-epoch decay factor for streamed databases.  A power of two
#: keeps aging IEEE-exact: scaling integer counts by ``0.5 ** k`` never
#: rounds, so interleaved batch merges commute bit-for-bit (see
#: ``merge_delta``).
DEFAULT_DECAY = 0.5

#: Routines whose total block weight decays below this are dropped by
#: ``age_to`` — they have not been sampled for so long that their counts
#: carry no signal.
_PRUNE_FLOOR = 2.0 ** -20

#: Snapshot count resolution (power of two, see ``normalized_snapshot``).
_SNAPSHOT_RESOLUTION = 4096


def _quantize(count: float, reference: float) -> int:
    """Map ``count`` onto ``0..resolution`` relative to ``reference``.

    ``count / reference`` is invariant when both are scaled by the same
    power of two, which is exactly what uniform decay does — so snapshots
    do not drift as a database ages without new samples.  Non-zero counts
    never quantize to zero (a cold-but-live call site must stay ranked
    above a dead one).
    """
    if count <= 0 or reference <= 0:
        return 0
    return max(1, int(round(count / reference * _SNAPSHOT_RESOLUTION)))


class ProfileFormatError(ValueError):
    """A profile database file has an unknown or malformed format.

    Carries the offending version so callers (CLI, daemon) can report
    it without string-parsing the message.
    """

    def __init__(self, message: str, found: object = None) -> None:
        super().__init__(message)
        self.found = found
        self.expected = _FORMAT_VERSION


class RoutineProfile:
    """Dynamic execution counts for one routine."""

    __slots__ = ("name", "checksum", "entry_label", "block_counts",
                 "edge_counts", "call_counts", "stale", "last_epoch")

    def __init__(self, name: str, checksum: int, entry_label: str = "") -> None:
        self.name = name
        self.checksum = checksum
        #: Label of the routine's entry block (drives entry_count).
        self.entry_label = entry_label
        #: block label -> execution count.
        self.block_counts: Dict[str, int] = {}
        #: (from_label, to_label) -> count, for conditional edges.
        self.edge_counts: Dict[Tuple[str, str], int] = {}
        #: (block_label, instr_index, callee) -> count.
        self.call_counts: Dict[Tuple[str, int, str], int] = {}
        #: True when correlation degraded this profile (structure changed).
        self.stale = False
        #: Ingest epoch of the freshest sample merged in (0 = offline).
        self.last_epoch = 0

    @property
    def entry_count(self) -> int:
        """Executions of the routine (its entry block's count)."""
        return self.block_counts.get(self.entry_label, 0)

    def block_count(self, label: str) -> int:
        return self.block_counts.get(label, 0)

    def edge_count(self, from_label: str, to_label: str) -> int:
        return self.edge_counts.get((from_label, to_label), 0)

    def call_count(self, block_label: str, instr_index: int, callee: str) -> int:
        return self.call_counts.get((block_label, instr_index, callee), 0)

    def total_block_weight(self) -> int:
        return sum(self.block_counts.values())

    def filtered_to_labels(self, labels: Set[str]) -> "RoutineProfile":
        """Copy keeping only data about blocks in ``labels`` (staleness)."""
        copy = RoutineProfile(self.name, self.checksum, self.entry_label)
        copy.block_counts = {
            label: count
            for label, count in self.block_counts.items()
            if label in labels
        }
        copy.edge_counts = {
            key: count
            for key, count in self.edge_counts.items()
            if key[0] in labels and key[1] in labels
        }
        copy.call_counts = {
            key: count for key, count in self.call_counts.items() if key[0] in labels
        }
        return copy

    def merge(self, other: "RoutineProfile", weight: float = 1) -> None:
        for label, count in other.block_counts.items():
            self.block_counts[label] = (
                self.block_counts.get(label, 0) + count * weight
            )
        for key, count in other.edge_counts.items():
            self.edge_counts[key] = self.edge_counts.get(key, 0) + count * weight
        for key, count in other.call_counts.items():
            self.call_counts[key] = self.call_counts.get(key, 0) + count * weight

    def scale(self, factor: float) -> None:
        """Multiply every count by ``factor`` (exponential-decay aging)."""
        for label in self.block_counts:
            self.block_counts[label] *= factor
        for key in self.edge_counts:
            self.edge_counts[key] *= factor
        for key in self.call_counts:
            self.call_counts[key] *= factor

    def __repr__(self) -> str:
        return "<RoutineProfile %s entry=%d blocks=%d%s>" % (
            self.name,
            self.entry_count,
            len(self.block_counts),
            " STALE" if self.stale else "",
        )


class ProfileDatabase:
    """All routines' profiles for one application."""

    def __init__(self, decay: float = DEFAULT_DECAY) -> None:
        self.routines: Dict[str, RoutineProfile] = {}
        #: How many training runs were merged in.
        self.run_count = 0
        #: Current ingest epoch (0 = offline database, never streamed to).
        self.epoch = 0
        #: Per-epoch decay factor applied by :meth:`age_to`.  ``1.0``
        #: disables aging and keeps every count integral.
        self.decay = decay

    # -- Collection ------------------------------------------------------------

    @staticmethod
    def from_probe_counts(
        table: ProbeTable, counts: Mapping[int, int]
    ) -> "ProfileDatabase":
        """Build a database from raw probe counts of one training run.

        ``counts`` maps probe id -> hit count (missing ids count 0); it
        accepts both the interpreter's dict and a dense list wrapped in
        ``dict(enumerate(...))``.
        """
        database = ProfileDatabase()
        database.run_count = 1
        for name, checksum in table.checksums.items():
            labels = table.block_labels.get(name, [])
            profile = RoutineProfile(name, checksum, labels[0] if labels else "")
            block_probe = table.block_probe.get(name, {})
            for label in labels:
                probe_id = block_probe[label]
                profile.block_counts[label] = counts.get(probe_id, 0)
            for edge in table.edges.get(name, []):
                profile.edge_counts[(edge.from_label, edge.to_label)] = counts.get(
                    edge.probe_id, 0
                )
            for block_label, index, callee in table.call_sites.get(name, []):
                profile.call_counts[(block_label, index, callee)] = (
                    profile.block_counts.get(block_label, 0)
                )
            database.routines[name] = profile
        return database

    @staticmethod
    def from_probe_list(table: ProbeTable, counts: List[int]) -> "ProfileDatabase":
        """Variant taking the VM's dense probe-count list."""
        return ProfileDatabase.from_probe_counts(table, dict(enumerate(counts)))

    # -- Merging ---------------------------------------------------------------

    def merge(self, other: "ProfileDatabase") -> None:
        """Accumulate another run's counts into this database."""
        for name, profile in other.routines.items():
            mine = self.routines.get(name)
            if mine is None or mine.checksum != profile.checksum:
                # New or structurally changed routine: newest wins.
                self.routines[name] = profile
            else:
                mine.merge(profile)
        self.run_count += other.run_count

    # -- Streaming merges (continuous profile service) -------------------------
    #
    # Fleet batches arrive tagged with an ingest epoch.  Aging scales every
    # count by ``decay ** elapsed_epochs``; a delta sampled at an older epoch
    # is merged with the matching residual weight.  Because the default decay
    # is a power of two and raw probe counts are integers, every contribution
    # is an exact dyadic float, so merging the same set of batches in any
    # interleaving yields a bit-identical database (tested via ``to_json``
    # equality) as long as counts stay within float's 53-bit significand.

    def age_to(self, epoch: int) -> int:
        """Advance to ``epoch``, decaying all counts.  Returns routines pruned.

        Routines whose total block weight decays below a floor are removed
        entirely — they have not been sampled for many epochs and would
        otherwise linger as near-zero noise in selectivity ranking.
        """
        if epoch <= self.epoch:
            return 0
        factor = self.decay ** (epoch - self.epoch)
        self.epoch = epoch
        if factor == 1:
            return 0
        pruned = []
        for name, profile in self.routines.items():
            profile.scale(factor)
            if profile.total_block_weight() < _PRUNE_FLOOR:
                pruned.append(name)
        for name in pruned:
            del self.routines[name]
        return len(pruned)

    def merge_delta(self, delta: RoutineProfile, epoch: int) -> str:
        """Merge one routine's sampled delta observed at ``epoch``.

        Returns ``"created"``, ``"merged"``, or ``"stale"``.  A checksum
        mismatch marks the resident profile stale and discards the delta
        (the fleet is running a drifted binary; mixing counts across
        structures would poison PBO).  Deltas older than the database's
        epoch are merged at their decayed residual weight, which is what
        makes merge order irrelevant.
        """
        if epoch > self.epoch:
            self.age_to(epoch)
        weight = self.decay ** (self.epoch - epoch)
        mine = self.routines.get(delta.name)
        if mine is None:
            fresh = RoutineProfile(delta.name, delta.checksum, delta.entry_label)
            fresh.merge(delta, weight)
            fresh.last_epoch = epoch
            self.routines[delta.name] = fresh
            return "created"
        if mine.checksum != delta.checksum:
            mine.stale = True
            return "stale"
        mine.merge(delta, weight)
        mine.last_epoch = max(mine.last_epoch, epoch)
        mine.stale = False
        return "merged"

    def stale_routines(self) -> List[str]:
        return sorted(
            name for name, profile in self.routines.items() if profile.stale
        )

    def normalized_snapshot(self) -> "ProfileDatabase":
        """Fixed-resolution integer snapshot for feeding a build.

        Counts are rescaled to integers — block/edge counts relative to
        each routine's hottest block, call counts relative to the hottest
        call site in the database — so the snapshot is invariant under
        uniform decay: aging a database without new samples produces the
        *same* snapshot, keeping rebuilds byte-identical until fresh
        profile data actually changes the picture.  Stale routines are
        excluded (correlation would reject them anyway).
        """
        snapshot = ProfileDatabase(decay=self.decay)
        snapshot.run_count = 1
        max_call = 0.0
        for profile in self.routines.values():
            if profile.stale:
                continue
            for count in profile.call_counts.values():
                if count > max_call:
                    max_call = count
        for name in sorted(self.routines):
            profile = self.routines[name]
            if profile.stale:
                continue
            copy = RoutineProfile(name, profile.checksum, profile.entry_label)
            max_block = max(profile.block_counts.values(), default=0)
            copy.block_counts = {
                label: _quantize(count, max_block)
                for label, count in profile.block_counts.items()
            }
            copy.edge_counts = {
                key: _quantize(count, max_block)
                for key, count in profile.edge_counts.items()
            }
            copy.call_counts = {
                key: _quantize(count, max_call)
                for key, count in profile.call_counts.items()
            }
            snapshot.routines[name] = copy
        return snapshot

    # -- Queries -----------------------------------------------------------------

    def profile_for(self, routine_name: str) -> Optional[RoutineProfile]:
        return self.routines.get(routine_name)

    def call_site_weights(self) -> Dict[Tuple[str, str, int], int]:
        """{(caller, block, index): count} over the whole program."""
        weights: Dict[Tuple[str, str, int], int] = {}
        for profile in self.routines.values():
            for (block, index, _callee), count in profile.call_counts.items():
                weights[(profile.name, block, index)] = count
        return weights

    def total_call_count(self) -> int:
        return sum(
            count
            for profile in self.routines.values()
            for count in profile.call_counts.values()
        )

    def hottest_routines(self, limit: int = 10) -> List[Tuple[str, int]]:
        ranked = sorted(
            ((name, p.total_block_weight()) for name, p in self.routines.items()),
            key=lambda item: (-item[1], item[0]),
        )
        return ranked[:limit]

    # -- Persistence -----------------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "version": _FORMAT_VERSION,
            "run_count": self.run_count,
            "epoch": self.epoch,
            "decay": self.decay,
            "routines": {
                name: {
                    "checksum": profile.checksum,
                    "entry_label": profile.entry_label,
                    "last_epoch": profile.last_epoch,
                    "stale": profile.stale,
                    "blocks": profile.block_counts,
                    "edges": [
                        [f, t, count] for (f, t), count in profile.edge_counts.items()
                    ],
                    "calls": [
                        [block, index, callee, count]
                        for (block, index, callee), count in
                        profile.call_counts.items()
                    ],
                }
                for name, profile in self.routines.items()
            },
        }
        return json.dumps(payload, indent=1, sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "ProfileDatabase":
        """Parse a database, migrating version-1 files transparently.

        Version 1 predates the streaming pipeline: it lacks
        ``epoch``/``decay`` and per-routine ``last_epoch``/``stale``, all
        of which default to the offline state (epoch 0, nothing stale).
        Saving a migrated database rewrites it as version 2.  Anything
        else raises :class:`ProfileFormatError`.
        """
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise ProfileFormatError(
                "profile database is not valid JSON: %s" % exc
            )
        if not isinstance(payload, dict):
            raise ProfileFormatError(
                "profile database must be a JSON object, got %s"
                % type(payload).__name__
            )
        version = payload.get("version")
        if version not in _SUPPORTED_VERSIONS:
            raise ProfileFormatError(
                "unsupported profile database version %r (supported: %s)"
                % (version, ", ".join(str(v) for v in _SUPPORTED_VERSIONS)),
                found=version,
            )
        database = ProfileDatabase(decay=payload.get("decay", DEFAULT_DECAY))
        database.run_count = payload.get("run_count", 1)
        database.epoch = payload.get("epoch", 0)
        for name, entry in payload["routines"].items():
            profile = RoutineProfile(
                name, entry["checksum"], entry.get("entry_label", "")
            )
            profile.block_counts = dict(entry["blocks"])
            profile.edge_counts = {
                (f, t): count for f, t, count in entry["edges"]
            }
            profile.call_counts = {
                (block, index, callee): count
                for block, index, callee, count in entry["calls"]
            }
            if version >= 2:
                profile.last_epoch = entry.get("last_epoch", 0)
                profile.stale = bool(entry.get("stale", False))
            database.routines[name] = profile
        return database

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @staticmethod
    def load(path: str) -> "ProfileDatabase":
        with open(path, "r", encoding="utf-8") as handle:
            return ProfileDatabase.from_json(handle.read())

    def __len__(self) -> int:
        return len(self.routines)

    def __repr__(self) -> str:
        return "<ProfileDatabase (%d routines, %d runs)>" % (
            len(self.routines),
            self.run_count,
        )
