"""The profile database (paper §3).

Running an instrumented program produces raw probe counts; collection
turns those into per-routine block/edge/call counts stored in a
:class:`ProfileDatabase`.  Databases persist as JSON, merge across runs
("generated, or added to, if data from an earlier run already exists"),
and are handed to the compiler to enable PBO.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Set, Tuple

from .probes import ProbeTable

_FORMAT_VERSION = 1


class RoutineProfile:
    """Dynamic execution counts for one routine."""

    __slots__ = ("name", "checksum", "entry_label", "block_counts",
                 "edge_counts", "call_counts", "stale")

    def __init__(self, name: str, checksum: int, entry_label: str = "") -> None:
        self.name = name
        self.checksum = checksum
        #: Label of the routine's entry block (drives entry_count).
        self.entry_label = entry_label
        #: block label -> execution count.
        self.block_counts: Dict[str, int] = {}
        #: (from_label, to_label) -> count, for conditional edges.
        self.edge_counts: Dict[Tuple[str, str], int] = {}
        #: (block_label, instr_index, callee) -> count.
        self.call_counts: Dict[Tuple[str, int, str], int] = {}
        #: True when correlation degraded this profile (structure changed).
        self.stale = False

    @property
    def entry_count(self) -> int:
        """Executions of the routine (its entry block's count)."""
        return self.block_counts.get(self.entry_label, 0)

    def block_count(self, label: str) -> int:
        return self.block_counts.get(label, 0)

    def edge_count(self, from_label: str, to_label: str) -> int:
        return self.edge_counts.get((from_label, to_label), 0)

    def call_count(self, block_label: str, instr_index: int, callee: str) -> int:
        return self.call_counts.get((block_label, instr_index, callee), 0)

    def total_block_weight(self) -> int:
        return sum(self.block_counts.values())

    def filtered_to_labels(self, labels: Set[str]) -> "RoutineProfile":
        """Copy keeping only data about blocks in ``labels`` (staleness)."""
        copy = RoutineProfile(self.name, self.checksum, self.entry_label)
        copy.block_counts = {
            label: count
            for label, count in self.block_counts.items()
            if label in labels
        }
        copy.edge_counts = {
            key: count
            for key, count in self.edge_counts.items()
            if key[0] in labels and key[1] in labels
        }
        copy.call_counts = {
            key: count for key, count in self.call_counts.items() if key[0] in labels
        }
        return copy

    def merge(self, other: "RoutineProfile") -> None:
        for label, count in other.block_counts.items():
            self.block_counts[label] = self.block_counts.get(label, 0) + count
        for key, count in other.edge_counts.items():
            self.edge_counts[key] = self.edge_counts.get(key, 0) + count
        for key, count in other.call_counts.items():
            self.call_counts[key] = self.call_counts.get(key, 0) + count

    def __repr__(self) -> str:
        return "<RoutineProfile %s entry=%d blocks=%d%s>" % (
            self.name,
            self.entry_count,
            len(self.block_counts),
            " STALE" if self.stale else "",
        )


class ProfileDatabase:
    """All routines' profiles for one application."""

    def __init__(self) -> None:
        self.routines: Dict[str, RoutineProfile] = {}
        #: How many training runs were merged in.
        self.run_count = 0

    # -- Collection ------------------------------------------------------------

    @staticmethod
    def from_probe_counts(
        table: ProbeTable, counts: Mapping[int, int]
    ) -> "ProfileDatabase":
        """Build a database from raw probe counts of one training run.

        ``counts`` maps probe id -> hit count (missing ids count 0); it
        accepts both the interpreter's dict and a dense list wrapped in
        ``dict(enumerate(...))``.
        """
        database = ProfileDatabase()
        database.run_count = 1
        for name, checksum in table.checksums.items():
            labels = table.block_labels.get(name, [])
            profile = RoutineProfile(name, checksum, labels[0] if labels else "")
            block_probe = table.block_probe.get(name, {})
            for label in labels:
                probe_id = block_probe[label]
                profile.block_counts[label] = counts.get(probe_id, 0)
            for edge in table.edges.get(name, []):
                profile.edge_counts[(edge.from_label, edge.to_label)] = counts.get(
                    edge.probe_id, 0
                )
            for block_label, index, callee in table.call_sites.get(name, []):
                profile.call_counts[(block_label, index, callee)] = (
                    profile.block_counts.get(block_label, 0)
                )
            database.routines[name] = profile
        return database

    @staticmethod
    def from_probe_list(table: ProbeTable, counts: List[int]) -> "ProfileDatabase":
        """Variant taking the VM's dense probe-count list."""
        return ProfileDatabase.from_probe_counts(table, dict(enumerate(counts)))

    # -- Merging ---------------------------------------------------------------

    def merge(self, other: "ProfileDatabase") -> None:
        """Accumulate another run's counts into this database."""
        for name, profile in other.routines.items():
            mine = self.routines.get(name)
            if mine is None or mine.checksum != profile.checksum:
                # New or structurally changed routine: newest wins.
                self.routines[name] = profile
            else:
                mine.merge(profile)
        self.run_count += other.run_count

    # -- Queries -----------------------------------------------------------------

    def profile_for(self, routine_name: str) -> Optional[RoutineProfile]:
        return self.routines.get(routine_name)

    def call_site_weights(self) -> Dict[Tuple[str, str, int], int]:
        """{(caller, block, index): count} over the whole program."""
        weights: Dict[Tuple[str, str, int], int] = {}
        for profile in self.routines.values():
            for (block, index, _callee), count in profile.call_counts.items():
                weights[(profile.name, block, index)] = count
        return weights

    def total_call_count(self) -> int:
        return sum(
            count
            for profile in self.routines.values()
            for count in profile.call_counts.values()
        )

    def hottest_routines(self, limit: int = 10) -> List[Tuple[str, int]]:
        ranked = sorted(
            ((name, p.total_block_weight()) for name, p in self.routines.items()),
            key=lambda item: (-item[1], item[0]),
        )
        return ranked[:limit]

    # -- Persistence -----------------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "version": _FORMAT_VERSION,
            "run_count": self.run_count,
            "routines": {
                name: {
                    "checksum": profile.checksum,
                    "entry_label": profile.entry_label,
                    "blocks": profile.block_counts,
                    "edges": [
                        [f, t, count] for (f, t), count in profile.edge_counts.items()
                    ],
                    "calls": [
                        [block, index, callee, count]
                        for (block, index, callee), count in
                        profile.call_counts.items()
                    ],
                }
                for name, profile in self.routines.items()
            },
        }
        return json.dumps(payload, indent=1, sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "ProfileDatabase":
        payload = json.loads(text)
        if payload.get("version") != _FORMAT_VERSION:
            raise ValueError("unsupported profile database version")
        database = ProfileDatabase()
        database.run_count = payload.get("run_count", 1)
        for name, entry in payload["routines"].items():
            profile = RoutineProfile(
                name, entry["checksum"], entry.get("entry_label", "")
            )
            profile.block_counts = dict(entry["blocks"])
            profile.edge_counts = {
                (f, t): count for f, t, count in entry["edges"]
            }
            profile.call_counts = {
                (block, index, callee): count
                for block, index, callee, count in entry["calls"]
            }
            database.routines[name] = profile
        return database

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @staticmethod
    def load(path: str) -> "ProfileDatabase":
        with open(path, "r", encoding="utf-8") as handle:
            return ProfileDatabase.from_json(handle.read())

    def __len__(self) -> int:
        return len(self.routines)

    def __repr__(self) -> str:
        return "<ProfileDatabase (%d routines, %d runs)>" % (
            len(self.routines),
            self.run_count,
        )
