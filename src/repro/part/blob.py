"""One-copy publication of partition inputs to local worker processes.

The farm ships partition inputs through a socket-backed CAS; the
local process backend has a cheaper option: write every section (the
shared-context blob plus each routine's compact IR) into **one**
shared-memory segment and let all N workers map the same physical
pages.  Pickling the sections into each worker pipe would copy the
bytes N times; this copies them once.

Layout: ``u64le index_length | index JSON | payload`` where the index
maps section key -> ``[offset, length]`` relative to the payload
start.  Keys are content hashes (the runner's ``put_blob`` already
names sections that way), so the blob is position-independent and a
reader can verify sections if it cares to.

Transport resolution:

* **Primary**: ``multiprocessing.shared_memory.SharedMemory``.
  Readers on Linux open ``/dev/shm/<name>`` directly as a file and
  ``mmap`` it, side-stepping the ``resource_tracker`` registration
  that attaching a ``SharedMemory`` object performs on Python < 3.13
  (the tracker would unlink the segment when the *first* worker
  exits, breaking its siblings; the ``track=False`` knob only exists
  on 3.13+).  Non-Linux readers fall back to a real ``SharedMemory``
  attach.
* **Fallback**: a temp file + ``mmap`` when shared memory is
  unavailable (or ``prefer_shm=False``); same layout, same API, the
  page cache makes it nearly as cheap.

The publisher owns the segment: :meth:`BlobPublication.close` unlinks
it.  Readers copy sections out (``bytes``), so nothing outlives the
mapping.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import tempfile
from typing import Dict, Optional, Tuple

_INDEX_HEADER = struct.Struct("<Q")


class BlobError(Exception):
    """A malformed or unreachable published blob."""


def _pack_sections(sections: Dict[str, bytes]) -> bytes:
    index: Dict[str, Tuple[int, int]] = {}
    offset = 0
    for key in sections:
        data = sections[key]
        index[key] = (offset, len(data))
        offset += len(data)
    index_bytes = json.dumps(
        index, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    parts = [_INDEX_HEADER.pack(len(index_bytes)), index_bytes]
    parts.extend(sections.values())
    return b"".join(parts)


class BlobPublication:
    """A published section blob, owned by the build coordinator."""

    def __init__(self, kind: str, size: int, shm=None,
                 path: Optional[str] = None) -> None:
        self.kind = kind  # "shm" | "file"
        self.size = size
        self._shm = shm
        self._path = path
        self._closed = False

    def ref(self) -> Dict[str, object]:
        """The JSON-safe handle workers attach with."""
        if self.kind == "shm":
            return {"kind": "shm", "name": self._shm.name,
                    "size": self.size}
        return {"kind": "file", "path": self._path, "size": self.size}

    def close(self) -> None:
        """Release and unlink the backing segment.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._shm is not None:
            try:
                self._shm.close()
            except (OSError, BufferError):
                pass
            try:
                self._shm.unlink()
            except (OSError, FileNotFoundError):
                pass
        elif self._path is not None:
            try:
                os.unlink(self._path)
            except OSError:
                pass

    def __enter__(self) -> "BlobPublication":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return "<BlobPublication %s %d bytes>" % (self.kind, self.size)


def publish_sections(sections: Dict[str, bytes],
                     prefer_shm: bool = True) -> BlobPublication:
    """Pack ``{key: bytes}`` into one shared segment; see module doc."""
    packed = _pack_sections(sections)
    if prefer_shm:
        try:
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(create=True, size=len(packed))
            shm.buf[:len(packed)] = packed
            return BlobPublication("shm", len(packed), shm=shm)
        except (ImportError, OSError, ValueError):
            pass  # no shared memory here; fall through to the tempfile
    handle = tempfile.NamedTemporaryFile(
        prefix="repro-blob-", suffix=".bin", delete=False
    )
    try:
        handle.write(packed)
    finally:
        handle.close()
    return BlobPublication("file", len(packed), path=handle.name)


class AttachedBlob:
    """A reader's view of a published blob (one per process per blob)."""

    def __init__(self, ref: Dict[str, object]) -> None:
        self.ref_key = _ref_key(ref)
        self._mmap = None
        self._file = None
        self._shm = None
        size = int(ref.get("size", 0))
        if ref.get("kind") == "shm":
            name = str(ref["name"])
            view = self._attach_shm(name, size)
        elif ref.get("kind") == "file":
            path = str(ref["path"])
            try:
                self._file = open(path, "rb")
                self._mmap = mmap.mmap(self._file.fileno(), size,
                                       access=mmap.ACCESS_READ)
            except (OSError, ValueError) as exc:
                self.close()
                raise BlobError("cannot map blob file %r: %s" % (path, exc))
            view = memoryview(self._mmap)
        else:
            raise BlobError("unknown blob ref %r" % (ref,))
        try:
            if size < _INDEX_HEADER.size:
                raise BlobError("blob too small for its header")
            (index_len,) = _INDEX_HEADER.unpack(
                bytes(view[:_INDEX_HEADER.size])
            )
            index_end = _INDEX_HEADER.size + index_len
            if index_end > size:
                raise BlobError("blob index overruns the segment")
            index = json.loads(
                bytes(view[_INDEX_HEADER.size:index_end]).decode("utf-8")
            )
        except (ValueError, UnicodeDecodeError) as exc:
            self.close()
            raise BlobError("undecodable blob index: %s" % exc)
        except BlobError:
            self.close()
            raise
        self._view = view
        self._payload_start = index_end
        self._index = {
            key: (int(offset), int(length))
            for key, (offset, length) in index.items()
        }

    def _attach_shm(self, name: str, size: int):
        # Linux: the segment is a file under /dev/shm; opening it
        # directly avoids registering with the resource tracker (which
        # on Python < 3.13 would unlink the segment when this process
        # exits, breaking sibling workers and the publisher).
        shm_path = "/dev/shm/" + name.lstrip("/")
        if os.path.exists(shm_path):
            try:
                self._file = open(shm_path, "rb")
                self._mmap = mmap.mmap(self._file.fileno(), size,
                                       access=mmap.ACCESS_READ)
                return memoryview(self._mmap)
            except (OSError, ValueError):
                self.close()
        try:
            from multiprocessing import shared_memory

            self._shm = shared_memory.SharedMemory(name=name)
            return memoryview(self._shm.buf)
        except (ImportError, OSError, ValueError) as exc:
            self.close()
            raise BlobError("cannot attach shm %r: %s" % (name, exc))

    def keys(self):
        return self._index.keys()

    def get(self, key: str) -> bytes:
        """Copy one section out of the mapping."""
        entry = self._index.get(key)
        if entry is None:
            raise KeyError("no blob section %r" % key)
        offset, length = entry
        start = self._payload_start + offset
        return bytes(self._view[start:start + length])

    def close(self) -> None:
        view = getattr(self, "_view", None)
        if view is not None:
            try:
                view.release()
            except (AttributeError, BufferError):
                pass
            self._view = None
        if self._shm is not None:
            try:
                self._shm.close()  # close only; the publisher unlinks
            except (OSError, BufferError):
                pass
            self._shm = None
        if self._mmap is not None:
            try:
                self._mmap.close()
            except (OSError, BufferError):
                pass
            self._mmap = None
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None

    def __repr__(self) -> str:
        return "<AttachedBlob %s %d sections>" % (
            self.ref_key, len(self._index),
        )


def _ref_key(ref: Dict[str, object]) -> str:
    if ref.get("kind") == "shm":
        return "shm:%s" % ref.get("name")
    return "file:%s" % ref.get("path")


def attach_blob(ref: Dict[str, object]) -> AttachedBlob:
    """Attach to a published blob from its :meth:`ref` handle."""
    return AttachedBlob(ref)
