"""Partitioned parallel whole-program optimization (WHOPR-style).

The serial whole-program phases (DFE, IPCP, cloning, inlining -- the
WPA half) stay in :mod:`repro.hlo.driver`; this package supplies the
LTRANS half: :func:`partition_unit` splits the post-inline CMO unit
into profile-weight-balanced partitions, and :class:`PartitionRunner`
executes the scalar pipeline + LLO codegen for each partition on a
worker pool, splicing results back in canonical unit order so the
final image is byte-identical to a serial build.

Three executor backends share that contract: thread workers
(:mod:`.runner`), local worker processes over one shared-memory
context blob (:mod:`.procexec` + :mod:`.blob` -- real CPU
parallelism past the GIL), and farm workers over TCP
(:mod:`.remote` + :mod:`.wire`).
"""

from .partition import Partition, partition_unit
from .runner import PartitionRunner, PartitionRunResult

__all__ = [
    "Partition",
    "partition_unit",
    "PartitionRunner",
    "PartitionRunResult",
]

# repro.part.remote / repro.part.wire (farm dispatch) and
# repro.part.procexec / repro.part.blob (process backend) are imported
# directly by their users; keeping them out of this namespace avoids
# pulling multiprocessing and the serve transport into every build.
