"""Partition serialization: LTRANS jobs that cross process boundaries.

The farm coordinator runs the serial WPA half, then ships each
partition to a worker daemon.  Everything a worker needs is built
from primitives that already round-trip deterministically:

* the **shared context** -- program symbol table (with its exact PID
  order, which IR compaction encodes against), HLO/LLO/NAIM options,
  mod/ref analysis, profile views, interprocedural facts and the
  scalar worklist -- encoded once per build as one canonical JSON
  blob.  Canonical here means ``sort_keys`` + fixed separators: a
  warm rebuild of the same program produces the identical blob, so
  the content-addressed store deduplicates it farm-wide.
* each **routine's IR** as NAIM compact bytes (the same encoding the
  offload repository stores), shipped as content-addressed blobs.
* each **outcome** -- machine code via
  :func:`~repro.linker.objects.encode_machine_routines`, final pool
  payloads, and the worker's loader/accountant/LLO/pass statistics --
  as a JSON object the coordinator folds back with the *same*
  ``_fold`` the in-process runner uses, in partition index order, so
  every observable number is independent of which host ran what.

:func:`execute_partition_job` is the worker-side mirror of
:meth:`~repro.part.runner.PartitionRunner._run_partition`: same
private loader over an overlay, same prefetch window, same pin /
scalar / codegen / unload sequence -- so farm images are byte-for-byte
the images the single-process build produces.
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List, Optional, Tuple

from ..hlo.analysis.modref import ModRefAnalysis, ModRefInfo
from ..hlo.driver import standard_pipeline
from ..hlo.options import HloOptions
from ..hlo.thin import WpaPlan, replay_plan
from ..hlo.passes import OptContext, PassStats
from ..hlo.profile_view import ProfileView
from ..ir.symbols import GlobalVar, ProgramSymbolTable
from ..linker.objects import decode_machine_routines, encode_machine_routines
from ..llo.driver import LloOptions, LloStats, LowLevelOptimizer
from ..naim.compaction import compact_routine
from ..naim.config import NaimConfig, NaimLevel
from ..naim.loader import Loader, LoaderStats
from ..naim.memory import MemoryAccountant
from ..naim.pools import KIND_IR, PoolState
from ..naim.repository import OverlayRepository
from ..serve.protocol import decode_bytes, encode_bytes
from .runner import _PartitionOutcome, _PoolTransfer

#: Version tag inside the shared-context blob; a worker rejects
#: contexts it does not speak rather than miscompiling them.
#: v2 added the optional thin-WPA replay plan and job import lists.
WIRE_VERSION = 2


class WireError(Exception):
    """A malformed or version-skewed partition payload."""


# -- Shared context ----------------------------------------------------------------


def _symtab_payload(symtab: ProgramSymbolTable) -> Dict:
    return {
        "globals": [
            [var.name, var.size, list(var.init), var.defining_module,
             bool(var.exported)]
            for var in symtab.globals.values()
        ],
        "routines": [
            [name, module] for name, module in symtab.routines.items()
        ],
        # PID order is load-bearing: compact IR encodes symbol
        # references as indexes into this list.
        "pid_order": list(symtab._name_by_pid),
    }


def _decode_symtab(payload: Dict) -> ProgramSymbolTable:
    # Names are canonicalized through sys.intern: pool decoders on
    # this worker intern their strings too, so symbol-table lookups hit
    # CPython's pointer-equality fast path instead of comparing bytes.
    intern = sys.intern
    symtab = ProgramSymbolTable()
    for name, size, init, module, exported in payload["globals"]:
        name = intern(name)
        symtab.globals[name] = GlobalVar(
            name, size, init, module, bool(exported)
        )
    for name, module in payload["routines"]:
        symtab.routines[intern(name)] = module
    for name in payload["pid_order"]:
        symtab.pid_of(intern(name))
    return symtab


def _views_payload(views: Dict[str, ProfileView]) -> Dict:
    return {
        name: {
            "blocks": dict(view.block_counts),
            "edges": [
                [from_label, to_label, count]
                for (from_label, to_label), count
                in view.edge_counts.items()
            ],
            "static": bool(view.is_static_estimate),
            "stale": bool(view.stale),
        }
        for name, view in views.items()
    }


def _decode_views(payload: Dict) -> Dict[str, ProfileView]:
    return {
        name: ProfileView(
            name,
            block_counts=entry.get("blocks") or {},
            edge_counts={
                (from_label, to_label): count
                for from_label, to_label, count in entry.get("edges", [])
            },
            is_static_estimate=bool(entry.get("static")),
            stale=bool(entry.get("stale")),
        )
        for name, entry in payload.items()
    }


def _modref_payload(modref: Optional[ModRefAnalysis]) -> Optional[Dict]:
    if modref is None:
        return None
    return {
        name: {
            "mod": sorted(info.mod),
            "ref": sorted(info.ref),
            "unknown": bool(info.unknown),
            "has_calls": bool(info.has_calls),
        }
        for name, info in modref.info.items()
    }


def _decode_modref(payload: Optional[Dict]) -> Optional[ModRefAnalysis]:
    if payload is None:
        return None
    analysis = ModRefAnalysis()
    for name, entry in payload.items():
        info = ModRefInfo()
        info.mod = set(entry.get("mod", ()))
        info.ref = set(entry.get("ref", ()))
        info.unknown = bool(entry.get("unknown"))
        info.has_calls = bool(entry.get("has_calls"))
        analysis.info[name] = info
    return analysis


def _naim_payload(config: NaimConfig) -> Dict:
    return {
        "physical_memory_bytes": config.physical_memory_bytes,
        "level": None if config.level is None else int(config.level),
        "ir_compact_fraction": config.ir_compact_fraction,
        "st_compact_fraction": config.st_compact_fraction,
        "offload_fraction": config.offload_fraction,
        "cache_pools": config._cache_pools,
        "cache_fraction": config.cache_fraction,
        "avg_pool_bytes_hint": config.avg_pool_bytes_hint,
        "repo_compress_level": config.repo_compress_level,
        "repo_compress_min_bytes": config.repo_compress_min_bytes,
        "repo_segment_bytes": config.repo_segment_bytes,
        "repo_prefetch_depth": config.repo_prefetch_depth,
        "repo_layout": config.repo_layout,
    }


def _decode_naim(payload: Dict) -> NaimConfig:
    level = payload.get("level")
    return NaimConfig(
        physical_memory_bytes=payload["physical_memory_bytes"],
        level=None if level is None else NaimLevel(level),
        ir_compact_fraction=payload["ir_compact_fraction"],
        st_compact_fraction=payload["st_compact_fraction"],
        offload_fraction=payload["offload_fraction"],
        cache_pools=payload.get("cache_pools"),
        cache_fraction=payload["cache_fraction"],
        avg_pool_bytes_hint=payload["avg_pool_bytes_hint"],
        repo_compress_level=payload["repo_compress_level"],
        repo_compress_min_bytes=payload["repo_compress_min_bytes"],
        repo_segment_bytes=payload["repo_segment_bytes"],
        repo_prefetch_depth=payload["repo_prefetch_depth"],
        repo_layout=payload["repo_layout"],
    )


def _plan_payload(hlo_result) -> Optional[Dict]:
    """The pending thin-WPA replay plan, or None.

    A plan ships only while it is still pending: once the link side
    has replayed it (or under materializing WPA, where none exists),
    workers receive final bodies and must not re-apply mutations."""
    plan = getattr(hlo_result, "plan", None)
    if plan is None or getattr(hlo_result, "_plan_replayed", False):
        return None
    return plan.to_dict()


def encode_shared_context(hlo_result, llo_options: LloOptions,
                          naim_config: NaimConfig,
                          scalar_names) -> bytes:
    """One canonical blob of everything partition-independent.

    Warm rebuilds of an unchanged program re-encode to identical
    bytes, so the CAS stores it once per program state."""
    ctx = hlo_result.ctx
    payload = {
        "wire": WIRE_VERSION,
        "plan": _plan_payload(hlo_result),
        "symtab": _symtab_payload(ctx.symtab),
        "hlo_options": dict(ctx.options.__dict__),
        "llo_options": {
            "opt_level": llo_options.opt_level,
            "use_profile": llo_options.use_profile,
            "schedule_window": llo_options.schedule_window,
        },
        "naim": _naim_payload(naim_config),
        "modref": _modref_payload(ctx.modref),
        "views": _views_payload(ctx.views),
        "readonly_globals": sorted(ctx.readonly_globals),
        "const_returns": dict(ctx.const_returns),
        "scalar": sorted(scalar_names),
    }
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def _context_fingerprint(hlo_result, llo_options: LloOptions,
                         naim_config: NaimConfig, scalar_names) -> int:
    """A fast structural hash of everything the context blob encodes.

    Traverses the same data :func:`encode_shared_context` serializes
    but skips the (dominant) JSON string building, so a cache keyed on
    it is sound: any change that would alter the blob changes the
    fingerprint.  Process-local only (``hash`` is salted per process),
    which matches the cache's lifetime."""
    ctx = hlo_result.ctx
    symtab = ctx.symtab
    acc = hash(("wire", WIRE_VERSION))

    def mix(value):
        return hash((acc, value))

    for var in symtab.globals.values():
        acc = mix((var.name, var.size, tuple(var.init),
                   var.defining_module, bool(var.exported)))
    acc = mix(tuple(symtab.routines.items()))
    acc = mix(tuple(symtab._name_by_pid))
    acc = mix(tuple(sorted(ctx.options.__dict__.items())))
    acc = mix((llo_options.opt_level, llo_options.use_profile,
               llo_options.schedule_window))
    acc = mix(tuple(sorted(_naim_payload(naim_config).items())))
    if ctx.modref is not None:
        for name, info in ctx.modref.info.items():
            acc = mix((name, tuple(sorted(info.mod)),
                       tuple(sorted(info.ref)),
                       bool(info.unknown), bool(info.has_calls)))
    for name, view in ctx.views.items():
        acc = mix((name, tuple(sorted(view.block_counts.items())),
                   tuple(sorted(view.edge_counts.items())),
                   bool(view.is_static_estimate), bool(view.stale)))
    acc = mix(tuple(sorted(ctx.readonly_globals)))
    acc = mix(tuple(sorted(ctx.const_returns.items())))
    acc = mix(tuple(sorted(scalar_names)))
    # Lockstep with the blob's "plan" field: a pending replay plan is
    # part of the context, so its content must move the fingerprint.
    plan_payload = _plan_payload(hlo_result)
    if plan_payload is None:
        acc = mix(None)
    else:
        acc = mix(json.dumps(plan_payload, sort_keys=True,
                             separators=(",", ":")))
    return acc


def build_context_blob(hlo_result, llo_options: LloOptions,
                       naim_config: NaimConfig, scalar_names) -> bytes:
    """Shared-context blob, cached on the link repository.

    Both the farm coordinator and the local process backend encode the
    same canonical blob; warm rebuilds of an unchanged program would
    re-serialize identical bytes every link.  The cache lives on the
    link repository object and is keyed by its mutation ``epoch``
    (bumped only on real content changes, never on identical re-store
    skips) plus a structural fingerprint of the context -- the epoch
    invalidates cheaply on repository writes, the fingerprint covers
    context changes that never touch the repository (e.g. profile or
    option changes on an in-memory link repo)."""
    repository = hlo_result.loader.repository
    epoch = getattr(repository, "epoch", None)
    fingerprint = _context_fingerprint(
        hlo_result, llo_options, naim_config, scalar_names
    )
    cached = getattr(repository, "_context_blob_cache", None)
    if cached is not None and cached[0] == epoch and \
            cached[1] == fingerprint:
        return cached[2]
    blob = encode_shared_context(
        hlo_result, llo_options, naim_config, scalar_names
    )
    try:
        repository._context_blob_cache = (epoch, fingerprint, blob)
    except AttributeError:  # pragma: no cover - slotted/readonly repo
        pass
    return blob


class SharedJobContext:
    """A decoded shared context, reusable across a worker's jobs.

    Everything here is read-only during partition execution *except*
    profile views, which the scalar passes mutate per routine -- so
    views are rebuilt fresh from the raw payload for every job
    (:meth:`fresh_views`) while the symbol table, options and
    analysis results are decoded once and shared."""

    def __init__(self, payload: Dict) -> None:
        if payload.get("wire") != WIRE_VERSION:
            raise WireError(
                "unsupported wire version %r (worker speaks %d)"
                % (payload.get("wire"), WIRE_VERSION)
            )
        self.symtab = _decode_symtab(payload["symtab"])
        options = HloOptions()
        options.__dict__.update(payload["hlo_options"])
        self.hlo_options = options
        llo = payload["llo_options"]
        self.llo_options = LloOptions(
            opt_level=llo["opt_level"],
            use_profile=bool(llo["use_profile"]),
            schedule_window=llo["schedule_window"],
        )
        self.naim_config = _decode_naim(payload["naim"])
        self.modref = _decode_modref(payload.get("modref"))
        self._views_payload = payload.get("views") or {}
        self.readonly_globals = set(payload.get("readonly_globals", ()))
        self.const_returns = dict(payload.get("const_returns", {}))
        self.scalar_set = frozenset(payload.get("scalar", ()))
        plan_payload = payload.get("plan")
        #: Pending thin-WPA replay plan (None under materializing WPA
        #: or when the link side already replayed).  Read-only across
        #: jobs: replay_plan never mutates the plan itself.
        self.plan = (
            WpaPlan.from_dict(plan_payload)
            if plan_payload is not None else None
        )

    def fresh_views(self) -> Dict[str, ProfileView]:
        return _decode_views(self._views_payload)


def decode_shared_context(data: bytes) -> SharedJobContext:
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError("undecodable shared context: %s" % exc)
    if not isinstance(payload, dict):
        raise WireError("shared context must be a JSON object")
    return SharedJobContext(payload)


# -- Statistics --------------------------------------------------------------------


def _accountant_payload(accountant: MemoryAccountant) -> Dict:
    return {
        "usage": [
            [category, name, nbytes]
            for (category, name), nbytes in accountant._usage.items()
        ],
        "peak": accountant.peak,
        "samples": [[label, total] for label, total in accountant.samples],
        "mapped_bytes": accountant.mapped_bytes,
        "reclaimable_bytes": accountant.reclaimable_bytes,
    }


def _decode_accountant(payload: Dict) -> MemoryAccountant:
    accountant = MemoryAccountant()
    for category, name, nbytes in payload.get("usage", []):
        accountant.set_usage(category, name, nbytes)
    accountant.peak = max(accountant.peak, payload.get("peak", 0))
    accountant.samples = [
        (label, total) for label, total in payload.get("samples", [])
    ]
    accountant.mapped_bytes = payload.get("mapped_bytes", 0)
    accountant.reclaimable_bytes = payload.get("reclaimable_bytes", 0)
    return accountant


def _decode_loader_stats(payload: Dict) -> LoaderStats:
    stats = LoaderStats()
    for name, value in payload.items():
        if hasattr(stats, name):
            setattr(stats, name, value)
    return stats


def _decode_llo_stats(payload: Dict) -> LloStats:
    stats = LloStats()
    stats.routines = payload.get("routines", 0)
    stats.instructions = payload.get("instructions", 0)
    stats.spilled = payload.get("spilled", 0)
    stats.stall_fills = payload.get("stall_fills", 0)
    stats.peak_working_bytes = payload.get("peak_working_bytes", 0)
    return stats


# -- Outcomes ----------------------------------------------------------------------


def decode_outcome(partition, payload: Dict) -> _PartitionOutcome:
    """Rehydrate a worker's reply into the exact shape
    :meth:`PartitionRunner._fold` consumes."""
    outcome = _PartitionOutcome(partition)
    machines = decode_machine_routines(
        decode_bytes(payload["machines_b64"])
    )
    outcome.machines = {machine.name: machine for machine in machines}
    for name, blob in payload.get("returned", []):
        transfer = _PoolTransfer(name)
        transfer.compact_bytes = decode_bytes(blob)
        outcome.returned.append(transfer)
    outcome.loader_stats = _decode_loader_stats(
        payload.get("loader_stats", {})
    )
    outcome.accountant = _decode_accountant(payload.get("accountant", {}))
    outcome.llo_stats = _decode_llo_stats(payload.get("llo_stats", {}))
    stats = PassStats()
    stats.counts = dict(payload.get("pass_counts", {}))
    outcome.pass_stats = stats
    outcome.views = _decode_views(payload.get("views", {}))
    return outcome


# -- Worker-side execution ---------------------------------------------------------


def _replay_job_plan(shared: SharedJobContext, job: Dict,
                     worker_loader: Loader, handles: Dict,
                     ctx: OptContext) -> None:
    """Worker-side mirror of ``PartitionRunner._replay_in_worker``:
    apply the thin-WPA plan slice scoped to this job's locals plus
    its import list, creating clone bodies as needed."""
    scope = {entry["name"] for entry in job["routines"]}
    scope.update(entry["name"] for entry in job.get("imports") or [])

    def resolve(name):
        handle = handles.get(name)
        return handle.get() if handle is not None else None

    def adopt_clone(clone):
        handles[clone.name] = worker_loader.adopt_routine(
            clone.name, expanded=clone
        )

    def pin(name):
        handle = handles.get(name)
        if handle is not None:
            worker_loader.pin(handle)

    def release(name):
        handle = handles.get(name)
        if handle is not None:
            worker_loader.unpin(handle)
            worker_loader.reaccount(handle)
            handle.request_unload()

    def unload(name):
        handle = handles.get(name)
        if handle is not None:
            handle.request_unload()

    replay_plan(
        shared.plan, scope, resolve, ctx.views, shared.hlo_options,
        adopt_clone, pin=pin, release=release, unload=unload,
    )


def execute_partition_job(shared: SharedJobContext, job: Dict,
                          repository) -> Dict:
    """Run one partition exactly the way the in-process runner does.

    ``repository`` supplies every routine's compact IR under
    ``(KIND_IR, name)`` (see :class:`~repro.naim.remote.
    CasBackedRepository`); the mirror of ``_run_partition`` below
    keeps the pin / scalar / codegen / unload sequence -- and with it
    byte-identical machine code."""
    index = job["index"]
    names: List[str] = [entry["name"] for entry in job["routines"]]
    worker_loader = Loader(
        shared.naim_config,
        shared.symtab,
        MemoryAccountant(),
        OverlayRepository(repository),
    )
    # Entries without a "pool" are thin-WPA clones: no body exists yet,
    # the plan replay below creates it.  Imports are read-only callee
    # bodies the replay reads; they are released before compilation.
    handles = {
        entry["name"]: worker_loader.adopt_routine(
            entry["name"], offloaded=True
        )
        for entry in job["routines"] if "pool" in entry
    }
    import_entries = job.get("imports") or []
    for entry in import_entries:
        if "pool" in entry and entry["name"] not in handles:
            handles[entry["name"]] = worker_loader.adopt_routine(
                entry["name"], offloaded=True
            )
    depth = worker_loader.config.repo_prefetch_depth
    if depth:
        worker_loader.prefetch(
            handles[name] for name in names[:depth] if name in handles
        )

    ctx = OptContext(shared.symtab, shared.hlo_options, shared.modref)
    ctx.views = shared.fresh_views()
    ctx.readonly_globals = shared.readonly_globals
    ctx.const_returns = shared.const_returns

    if shared.plan is not None:
        _replay_job_plan(shared, job, worker_loader, handles, ctx)
        for entry in import_entries:
            handle = handles.pop(entry["name"], None)
            if handle is not None:
                worker_loader.release(handle)

    llo = LowLevelOptimizer(shared.llo_options, worker_loader.accountant)
    pipeline = standard_pipeline()
    machines: List = []

    for position, name in enumerate(names):
        if depth:
            worker_loader.prefetch(
                handles[other]
                for other in names[position + 1:position + 1 + depth]
                if other in handles
            )
        handle = handles.get(name)
        if handle is None:
            continue
        routine = handle.get()
        if routine is None:
            continue
        if name in shared.scalar_set:
            worker_loader.pin(handle)
            pipeline.run_routine(routine, ctx)
            worker_loader.unpin(handle)
            worker_loader.reaccount(handle)
        machines.append(llo.compile_routine(routine, ctx.views.get(name)))
        handle.request_unload()
    worker_loader.stop_prefetch()
    worker_loader.accountant.mark("ltrans:p%d" % index)

    returned: List[Tuple[str, str]] = []
    for name in names:
        handle = handles.get(name)
        if handle is None:
            continue
        pool = handle.pool
        if pool.state is PoolState.EXPANDED:
            data = compact_routine(pool.expanded, shared.symtab)
        elif pool.state is PoolState.COMPACT:
            data = pool.compact_bytes
        else:
            data = worker_loader.repository.fetch(KIND_IR, name)
        worker_loader.release(handle)
        returned.append((name, encode_bytes(data)))

    return {
        "index": index,
        "machines_b64": encode_bytes(encode_machine_routines(machines)),
        "returned": [[name, blob] for name, blob in returned],
        "loader_stats": worker_loader.stats.as_dict(),
        "accountant": _accountant_payload(worker_loader.accountant),
        "llo_stats": {
            "routines": llo.stats.routines,
            "instructions": llo.stats.instructions,
            "spilled": llo.stats.spilled,
            "stall_fills": llo.stats.stall_fills,
            "peak_working_bytes": llo.stats.peak_working_bytes,
        },
        "pass_counts": dict(ctx.stats.counts),
        "views": _views_payload({
            name: ctx.views[name]
            for name in names if name in ctx.views
        }),
    }
