"""The partition runner: parallel scalar pipeline + LLO codegen.

Executes the LTRANS half of the WHOPR-style split.  Each partition
becomes one task on a :class:`~repro.sched.executor.Executor` worker
pool; each worker owns a private :class:`~repro.naim.loader.Loader`
and :class:`~repro.naim.memory.MemoryAccountant` over an
:class:`~repro.naim.repository.OverlayRepository` wrapping the shared
link repository, so NAIM thresholds apply per worker and worker
evictions never mutate shared state.

Determinism: the scalar passes only mutate their own routine (plus the
per-routine view and pass counters), and LLO compiles one routine at a
time from that routine and its view alone, so fusing scalar + codegen
per routine inside a partition produces exactly the machine code the
serial two-loop driver does.  Workers return machine routines keyed by
name; the caller splices them in canonical unit order, and all stats
(loader, accountant, pass counters, LLO) are folded back in partition
index order -- so every observable number is independent of worker
interleaving, and the image is byte-identical to the serial build.

Ownership transfer: the link thread extracts each pool's payload and
releases it from the link loader *before* workers start (offloaded
pools stay fetchable in the shared repository), and re-adopts the
final payloads afterwards, so ``HloResult.unit`` remains fully usable
after a parallel run.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..hlo.driver import HloResult, standard_pipeline
from ..hlo.passes import OptContext
from ..hlo.thin import replay_plan
from ..llo.driver import LloOptions, LloStats, LowLevelOptimizer
from ..naim.compaction import compact_routine
from ..naim.config import NaimConfig
from ..naim.loader import Loader
from ..naim.memory import MemoryAccountant
from ..naim.pools import KIND_IR, PoolState
from ..naim.repository import OverlayRepository
from ..sched.events import EventLog
from ..sched.executor import Executor
from ..sched.graph import TaskGraph
from ..vm.image import MachineRoutine
from .partition import Partition


class _PoolTransfer:
    """One routine's payload, moving between loaders."""

    __slots__ = ("name", "expanded", "compact_bytes", "offloaded")

    def __init__(self, name: str) -> None:
        self.name = name
        self.expanded = None
        self.compact_bytes: Optional[bytes] = None
        self.offloaded = False


class _PartitionOutcome:
    """Everything one worker hands back for deterministic folding."""

    def __init__(self, partition: Partition) -> None:
        self.partition = partition
        self.machines: Dict[str, MachineRoutine] = {}
        self.returned: List[_PoolTransfer] = []
        self.loader_stats = None
        self.accountant: Optional[MemoryAccountant] = None
        self.llo_stats: Optional[LloStats] = None
        self.pass_stats = None
        self.views: Dict[str, object] = {}


class PartitionRunResult:
    """The folded outcome of a partitioned LTRANS run."""

    def __init__(self) -> None:
        #: routine name -> compiled machine routine.
        self.machines: Dict[str, MachineRoutine] = {}
        self.llo_stats = LloStats()
        self.partitions: List[Partition] = []

    def __repr__(self) -> str:
        return "<PartitionRunResult %d routines over %d partitions>" % (
            len(self.machines), len(self.partitions)
        )


class PartitionRunner:
    """Runs partitions of the post-WPA unit on a worker pool."""

    def __init__(
        self,
        hlo_result: HloResult,
        llo_options: LloOptions,
        naim_config: Optional[NaimConfig] = None,
        jobs: int = 1,
        events: Optional[EventLog] = None,
    ) -> None:
        self.hlo_result = hlo_result
        self.llo_options = llo_options
        self.naim_config = naim_config or NaimConfig()
        self.jobs = max(1, jobs)
        self.events = events
        #: Routines the scalar pipeline must visit (selectivity and
        #: incremental reuse already applied); everything else in a
        #: partition is codegen-only.
        self.scalar_set = frozenset(hlo_result.scalar_worklist())
        #: Summary-only WPA: the body-mutation plan each worker replays
        #: over its locals + imports before the scalar loop (None once
        #: bodies are already materialized).
        self.plan = (
            hlo_result.plan
            if hlo_result.plan is not None
            and not hlo_result._plan_replayed
            else None
        )

    # -- Entry point -------------------------------------------------------------

    def run(self, partitions: List[Partition]) -> PartitionRunResult:
        result = PartitionRunResult()
        result.partitions = partitions
        if not partitions:
            return result

        # Imports are copied out before locals are *released*: a body
        # one partition imports is usually another partition's local.
        import_batches = [
            self._extract_imports(partition) for partition in partitions
        ]
        transfers = [self._extract(partition) for partition in partitions]

        graph = TaskGraph()
        for partition, batch, imports in zip(
            partitions, transfers, import_batches
        ):

            def run_partition(_inputs, partition=partition, batch=batch,
                              imports=imports):
                return self._run_partition(partition, batch, imports)

            graph.add("ltrans:p%d" % partition.index, run_partition,
                      category="ltrans")
        executor = Executor(jobs=self.jobs, events=self.events)
        outcome = executor.run(graph)
        if not outcome.ok:
            outcome.raise_first()

        # Fold every worker's results back in partition index order, so
        # stats and accounting are deterministic regardless of which
        # worker finished first.
        for partition in partitions:
            self._fold(result, outcome.results["ltrans:p%d" % partition.index])
        if self.plan is not None:
            self.hlo_result._plan_replayed = True
        return result

    # -- Link-thread side --------------------------------------------------------

    def _extract(self, partition: Partition) -> List[_PoolTransfer]:
        """Pull partition pools out of the link loader (payload + state).

        Offloaded payloads stay behind in the shared repository; the
        worker's overlay reads them from there.
        """
        unit = self.hlo_result.unit
        loader = self.hlo_result.loader
        batch: List[_PoolTransfer] = []
        for name in partition.routines:
            handle = unit.handle(name)
            if handle is None:
                continue
            pool = handle.pool
            transfer = _PoolTransfer(name)
            if pool.state is PoolState.EXPANDED:
                if pool.expanded is None:
                    continue
                transfer.expanded = pool.expanded
            elif pool.state is PoolState.COMPACT:
                transfer.compact_bytes = pool.compact_bytes
            elif pool.state is PoolState.OFFLOADED:
                transfer.offloaded = True
            loader.release(handle)
            batch.append(transfer)
        return batch

    def _extract_imports(self, partition: Partition) -> List[_PoolTransfer]:
        """Copy the partition's import payloads without releasing them.

        Imports are read-only callee bodies for the worker's plan
        replay; the link loader keeps ownership (several partitions may
        import the same routine).  Payloads travel as compact bytes --
        the codec round-trip gives every worker a private expanded
        copy, so worker-side binding replay on an imported body never
        touches a shared object.
        """
        if not partition.imports:
            return []
        unit = self.hlo_result.unit
        symtab = self.hlo_result.ctx.symtab
        batch: List[_PoolTransfer] = []
        for name in partition.imports:
            handle = unit.handle(name)
            if handle is None:
                continue  # a clone: the worker's replay creates it
            pool = handle.pool
            transfer = _PoolTransfer(name)
            if pool.state is PoolState.EXPANDED:
                if pool.expanded is None:
                    continue
                transfer.compact_bytes = compact_routine(
                    pool.expanded, symtab
                )
            elif pool.state is PoolState.COMPACT:
                transfer.compact_bytes = pool.compact_bytes
            elif pool.state is PoolState.OFFLOADED:
                transfer.offloaded = True
            batch.append(transfer)
        return batch

    def _fold(self, result: PartitionRunResult,
              outcome: _PartitionOutcome) -> None:
        hlo_result = self.hlo_result
        unit = hlo_result.unit
        loader = hlo_result.loader

        result.machines.update(outcome.machines)
        result.llo_stats.merge(outcome.llo_stats)
        loader.stats.merge(outcome.loader_stats)
        loader.accountant.merge(outcome.accountant)
        hlo_result.ctx.stats.merge(outcome.pass_stats)
        hlo_result.ctx.views.update(outcome.views)

        # Re-adopt final pool payloads so the unit stays usable (and
        # mirrors the serial end state: optimized routines behind
        # unload-requested handles).
        for transfer in outcome.returned:
            if transfer.expanded is not None:
                handle = loader.adopt_routine(
                    transfer.name, expanded=transfer.expanded
                )
                handle.request_unload()
            elif transfer.compact_bytes is not None:
                handle = loader.adopt_routine(
                    transfer.name, compact_bytes=transfer.compact_bytes
                )
            else:
                continue
            unit.routine_handles[transfer.name] = handle

    # -- Worker side -------------------------------------------------------------

    def _run_partition(
        self, partition: Partition, batch: List[_PoolTransfer],
        imports: List[_PoolTransfer] = (),
    ) -> _PartitionOutcome:
        hlo_result = self.hlo_result
        shared_ctx = hlo_result.ctx
        worker_loader = Loader(
            self.naim_config,
            shared_ctx.symtab,
            MemoryAccountant(),
            OverlayRepository(hlo_result.loader.repository),
        )
        handles = {}
        for transfer in batch:
            handles[transfer.name] = worker_loader.adopt_routine(
                transfer.name,
                expanded=transfer.expanded,
                compact_bytes=transfer.compact_bytes,
                offloaded=transfer.offloaded,
            )
        for transfer in imports:
            handles[transfer.name] = worker_loader.adopt_routine(
                transfer.name,
                compact_bytes=transfer.compact_bytes,
                offloaded=transfer.offloaded,
            )
        # Warm offloaded pools a window ahead of the optimization loop:
        # the pipeline fetches + decodes the next routines' pools on a
        # background thread while this one is being compiled.
        depth = worker_loader.config.repo_prefetch_depth
        if depth:
            worker_loader.prefetch(
                handles[t.name] for t in batch[:depth]
            )

        # Private context: views/stats are written per routine; the
        # symbol table, mod/ref info and interprocedural facts are
        # shared read-only.
        ctx = OptContext(shared_ctx.symtab, shared_ctx.options,
                         shared_ctx.modref)
        ctx.views = dict(shared_ctx.views)
        ctx.readonly_globals = shared_ctx.readonly_globals
        ctx.const_returns = shared_ctx.const_returns

        # Summary-only WPA: materialize this partition's slice of the
        # plan (locals mutate; imports are read as splice callees and
        # clone origins) before any scalar work.
        names = [transfer.name for transfer in batch]
        if self.plan is not None:
            names = list(partition.routines)
            self._replay_in_worker(partition, worker_loader, handles, ctx)
            for transfer in imports:
                handle = handles.pop(transfer.name, None)
                if handle is not None:
                    worker_loader.release(handle)

        llo = LowLevelOptimizer(self.llo_options, worker_loader.accountant)
        pipeline = standard_pipeline()
        outcome = _PartitionOutcome(partition)

        for index, name in enumerate(names):
            if depth:
                worker_loader.prefetch(
                    handles[other]
                    for other in names[index + 1:index + 1 + depth]
                    if other in handles
                )
            handle = handles.get(name)
            if handle is None:
                continue
            routine = handle.get()
            if routine is None:
                continue
            if name in self.scalar_set:
                worker_loader.pin(handle)
                pipeline.run_routine(routine, ctx)
                worker_loader.unpin(handle)
                worker_loader.reaccount(handle)
            outcome.machines[name] = llo.compile_routine(
                routine, ctx.views.get(name)
            )
            handle.request_unload()
        worker_loader.stop_prefetch()
        worker_loader.accountant.mark("ltrans:p%d" % partition.index)

        # Package final pool payloads for re-adoption, then release so
        # the merged accountant doesn't double-count resident pools.
        for name in names:
            handle = handles.get(name)
            if handle is None:
                continue
            pool = handle.pool
            returned = _PoolTransfer(name)
            if pool.state is PoolState.EXPANDED:
                returned.expanded = pool.expanded
            elif pool.state is PoolState.COMPACT:
                returned.compact_bytes = pool.compact_bytes
            elif pool.state is PoolState.OFFLOADED:
                returned.compact_bytes = worker_loader.repository.fetch(
                    KIND_IR, name
                )
            worker_loader.release(handle)
            outcome.returned.append(returned)

        outcome.loader_stats = worker_loader.stats
        outcome.accountant = worker_loader.accountant
        outcome.llo_stats = llo.stats
        outcome.pass_stats = ctx.stats
        outcome.views = {
            name: ctx.views[name]
            for name in names
            if name in ctx.views
        }
        return outcome

    def _replay_in_worker(self, partition: Partition, worker_loader,
                          handles, ctx) -> None:
        """Replay the plan slice whose mutations land in this partition."""
        scope = set(partition.routines) | set(partition.imports)

        def resolve(name):
            handle = handles.get(name)
            return handle.get() if handle is not None else None

        def adopt_clone(clone):
            handles[clone.name] = worker_loader.adopt_routine(
                clone.name, expanded=clone
            )

        def pin(name):
            handle = handles.get(name)
            if handle is not None:
                worker_loader.pin(handle)

        def release(name):
            handle = handles.get(name)
            if handle is not None:
                worker_loader.unpin(handle)
                worker_loader.reaccount(handle)
                handle.request_unload()

        def unload(name):
            handle = handles.get(name)
            if handle is not None:
                handle.request_unload()

        replay_plan(
            self.plan, scope, resolve, ctx.views, ctx.options,
            adopt_clone, pin=pin, release=release, unload=unload,
        )
