"""Process-parallel LTRANS: partitions executed by local child processes.

The thread-backed :class:`~repro.part.runner.PartitionRunner` cannot
scale the pure-Python scalar+LLO phase past the GIL; this backend
runs each partition in a worker *process* instead -- the WHOPR model
(one LTRANS process per partition) executed locally.

:class:`ProcessPartitionRunner` subclasses the farm's
:class:`~repro.part.remote.RemotePartitionRunner` and keeps its whole
contract: ``_extract`` empties the link loader first, routines travel
as compact NAIM bytes, the canonical shared-context blob is encoded
*after* compaction (the PID-interning invariant), outcomes are folded
with ``decode_outcome`` in partition index order.  Only the transport
changes:

* ``put_blob`` collects sections in memory instead of a socket CAS;
* ``dispatch`` publishes them once via :mod:`repro.part.blob` (shared
  memory, tempfile+mmap fallback) and runs the jobs on a
  :class:`~repro.sched.procpool.ProcessWorkerPool` -- either an
  ephemeral pool (cold CLI) or a persistent one injected by the
  daemon's warm state.

:func:`run_partition_job` is the worker-process body: attach the
blob (cached per process per blob), decode the shared context (cached
per process by content hash, so a warm daemon pool skips symtab
reconstruction exactly like a farm worker), then call the same
:func:`~repro.part.wire.execute_partition_job` the farm runs --
inheriting its byte-identical-output property.

Because the farm already proved the wire round-trip byte-identical,
the only new trust surface here is the transport; the property suite
pins serial == threads == processes anyway.
"""

from __future__ import annotations

import hashlib
import os
import signal
from collections import OrderedDict
from typing import Dict, List, Optional

from ..hlo.driver import HloResult
from ..llo.driver import LloOptions
from ..naim.config import NaimConfig
from ..naim.pools import KIND_IR
from ..naim.remote import CasBackedRepository
from ..sched.events import EventLog
from ..sched.procpool import ProcessWorkerPool, processes_available
from .blob import AttachedBlob, attach_blob, publish_sections
from .remote import RemotePartitionRunner
from .wire import SharedJobContext, decode_shared_context, \
    execute_partition_job

#: Test hook: when this environment variable names an existing file,
#: the first worker process to claim it (atomically, via unlink)
#: SIGKILLs itself mid-batch -- exercising the crash re-queue path in
#: end-to-end builds.  Unset in normal operation.
KILL_MARKER_ENV = "REPRO_TEST_LTRANS_KILL"

#: Decoded shared contexts kept per worker process (mirrors the farm
#: worker's cache): a persistent daemon pool decodes each program
#: state once, however many partitions and builds it serves.
CONTEXT_CACHE_ENTRIES = 4


def processes_supported() -> bool:
    """Whether the local process backend can run on this platform."""
    return processes_available()


class ProcessPartitionRunner(RemotePartitionRunner):
    """Partitioned LTRANS over local worker processes."""

    DISPATCH_SPAN = "proc-dispatch"
    # The per-partition spans come from the pool (category "ltrans",
    # one per job); keep the dispatch envelope out of that category so
    # span counts match the thread backend partition for partition.
    DISPATCH_CATEGORY = "dispatch"

    def __init__(
        self,
        hlo_result: HloResult,
        llo_options: LloOptions,
        naim_config: Optional[NaimConfig] = None,
        jobs: int = 1,
        events: Optional[EventLog] = None,
        pool: Optional[ProcessWorkerPool] = None,
        retry_limit: int = 2,
    ) -> None:
        super().__init__(
            hlo_result, llo_options, naim_config, jobs=jobs, events=events,
            dispatch=self._dispatch_local, put_blob=self._collect_blob,
        )
        self._sections: "OrderedDict[str, bytes]" = OrderedDict()
        self._pool = pool
        self._owns_pool = pool is None
        self.retry_limit = retry_limit
        #: Filled by :meth:`_dispatch_local` for bench/report use.
        self.blob_bytes = 0
        self.spawn_seconds = 0.0
        self.workers_used = 0
        self.crashes = 0
        self.requeues = 0

    # -- Transport ---------------------------------------------------------------

    def _collect_blob(self, data: bytes) -> str:
        key = hashlib.sha256(data).hexdigest()
        if key not in self._sections:
            self._sections[key] = data
        return key

    def _dispatch_local(self, jobs: List[Dict]) -> List[Dict]:
        publication = publish_sections(self._sections)
        self.blob_bytes = publication.size
        pool = self._pool
        if pool is None:
            pool = ProcessWorkerPool(run_partition_job,
                                     retry_limit=self.retry_limit)
        kill_marker = os.environ.get(KILL_MARKER_ENV)
        ref = publication.ref()
        tasks = []
        for job in jobs:
            payload = {"blob": ref, "job": job}
            if kill_marker:
                payload["kill_marker"] = kill_marker
            tasks.append((
                "ltrans:p%d" % job["index"], payload,
                int(job.get("weight", 1)),
            ))
        spawn_before = pool.spawn_seconds
        crashes_before = pool.crashes
        requeues_before = pool.requeues
        try:
            results = pool.run_batch(
                tasks, jobs=self.jobs, events=self.events,
                category="ltrans",
            )
        finally:
            self.spawn_seconds = pool.spawn_seconds - spawn_before
            self.crashes = pool.crashes - crashes_before
            self.requeues = pool.requeues - requeues_before
            self.workers_used = min(self.jobs, len(tasks))
            publication.close()
            self._sections.clear()
            if self._owns_pool:
                pool.close()
        return [results["ltrans:p%d" % job["index"]] for job in jobs]


# -- Worker-process side -----------------------------------------------------------

#: One attached blob per process: each build publishes a fresh
#: segment, so a cache depth of one is exactly "the current build".
_blob_cache: Optional[AttachedBlob] = None

_ctx_cache: "OrderedDict[str, SharedJobContext]" = OrderedDict()


class _BlobStore:
    """The ``get_blob``/``get_blobs`` surface
    :class:`~repro.naim.remote.CasBackedRepository` wants, served from
    one attached blob."""

    def __init__(self, blob: AttachedBlob) -> None:
        self._blob = blob

    def get_blob(self, key: str) -> bytes:
        return self._blob.get(key)

    def get_blobs(self, keys) -> Dict[str, bytes]:
        return {key: self._blob.get(key) for key in keys}


def _attached(ref: Dict) -> AttachedBlob:
    global _blob_cache
    cached = _blob_cache
    if cached is not None and cached.ref_key == _ref_key(ref):
        return cached
    if cached is not None:
        cached.close()
    _blob_cache = attach_blob(ref)
    return _blob_cache


def _ref_key(ref: Dict) -> str:
    from .blob import _ref_key as key_fn

    return key_fn(ref)


def _shared_context(key: str, store: _BlobStore) -> SharedJobContext:
    cached = _ctx_cache.get(key)
    if cached is not None:
        _ctx_cache.move_to_end(key)
        return cached
    shared = decode_shared_context(store.get_blob(key))
    _ctx_cache[key] = shared
    while len(_ctx_cache) > CONTEXT_CACHE_ENTRIES:
        _ctx_cache.popitem(last=False)
    return shared


def _maybe_die_for_test(payload: Dict) -> None:
    marker = payload.get("kill_marker")
    if not marker:
        return
    try:
        os.unlink(marker)
    except OSError:
        return  # another worker claimed it (or it never existed)
    os.kill(os.getpid(), signal.SIGKILL)


def run_partition_job(payload: Dict) -> Dict:
    """Worker-process task body (module-level: spawn-picklable)."""
    _maybe_die_for_test(payload)
    blob = _attached(payload["blob"])
    store = _BlobStore(blob)
    job = payload["job"]
    shared = _shared_context(str(job["ctx"]), store)
    # Entries without a "pool" are thin-WPA clones (the worker-side
    # plan replay creates their bodies); imports are extra read-only
    # callee bodies that replay reads.
    entries = list(job["routines"]) + list(job.get("imports") or [])
    repository = CasBackedRepository(store, {
        (KIND_IR, entry["name"]): entry["pool"]
        for entry in entries if "pool" in entry
    })
    return execute_partition_job(shared, job, repository)
