"""Remote LTRANS: partitions executed by farm workers.

:class:`RemotePartitionRunner` is a drop-in for
:class:`~repro.part.runner.PartitionRunner` whose partitions run on
whatever workers the farm coordinator has connected, instead of local
threads.  It reuses the local runner's ``_extract`` (pull pools out
of the link loader before dispatch) and ``_fold`` (splice results
back in partition index order), so determinism and the post-run state
of the CMO unit are exactly the in-process runner's; only the middle
-- who executes the scalar+codegen loop -- changes.

The runner is transport-blind: it receives two callables,

* ``put_blob(data) -> key`` -- publish bytes to the shared
  content-addressed store, returning their content hash;
* ``dispatch(jobs) -> outcomes`` -- run the job descriptions on the
  farm (the coordinator backs this with its work-stealing queue) and
  return one outcome payload per job, in any order.

so it can be driven by the real coordinator or byte-for-byte verified
in-process by tests with a loopback dispatcher.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..hlo.driver import HloResult
from ..llo.driver import LloOptions
from ..naim.compaction import compact_routine
from ..naim.config import NaimConfig
from ..naim.pools import KIND_IR
from ..sched.events import EventLog
from .partition import Partition
from .runner import PartitionRunner, PartitionRunResult
from .wire import build_context_blob, decode_outcome


class RemoteDispatchError(Exception):
    """The farm could not complete a partition batch."""


class RemotePartitionRunner(PartitionRunner):
    """Partitioned LTRANS over farm workers (see module docstring)."""

    #: Name/category of the span wrapping the whole dispatch; the
    #: local process backend overrides these (its per-partition spans
    #: come from the worker pool instead of farm workers).
    DISPATCH_SPAN = "farm-dispatch"
    DISPATCH_CATEGORY = "ltrans"

    def __init__(
        self,
        hlo_result: HloResult,
        llo_options: LloOptions,
        naim_config: Optional[NaimConfig] = None,
        jobs: int = 1,
        events: Optional[EventLog] = None,
        dispatch: Optional[Callable[[List[Dict]], List[Dict]]] = None,
        put_blob: Optional[Callable[[bytes], str]] = None,
    ) -> None:
        super().__init__(hlo_result, llo_options, naim_config,
                         jobs=jobs, events=events)
        if dispatch is None or put_blob is None:
            raise ValueError("dispatch and put_blob are required")
        self.dispatch = dispatch
        self.put_blob = put_blob

    def run(self, partitions: List[Partition]) -> PartitionRunResult:
        result = PartitionRunResult()
        result.partitions = partitions
        if not partitions:
            return result

        # Pull pools out of the link loader first, exactly like the
        # local runner: imports are copied before locals are released
        # (an import is usually another partition's local), and after
        # this the unit is empty until _fold re-adopts the workers'
        # final payloads.
        import_batches = [
            self._extract_imports(partition) for partition in partitions
        ]
        transfers = [self._extract(partition) for partition in partitions]

        symtab = self.hlo_result.ctx.symtab
        link_repo = self.hlo_result.loader.repository

        jobs: List[Dict] = []
        for partition, batch, imports in zip(
            partitions, transfers, import_batches
        ):
            local_by_name = {t.name: t for t in batch}
            routines = []
            for name in partition.routines:
                transfer = local_by_name.get(name)
                if transfer is None:
                    # A thin-WPA clone: no body yet -- the worker's
                    # plan replay creates it.
                    routines.append({"name": name})
                    continue
                if transfer.expanded is not None:
                    data = compact_routine(transfer.expanded, symtab)
                elif transfer.compact_bytes is not None:
                    data = transfer.compact_bytes
                else:
                    data = link_repo.fetch(KIND_IR, transfer.name)
                routines.append({
                    "name": transfer.name,
                    "pool": self.put_blob(data),
                })
            job = {
                "index": partition.index,
                "weight": partition.weight,
                "routines": routines,
            }
            if partition.imports:
                import_by_name = {t.name: t for t in imports}
                entries = []
                for name in partition.imports:
                    transfer = import_by_name.get(name)
                    if transfer is None:
                        entries.append({"name": name})  # imported clone
                        continue
                    if transfer.compact_bytes is not None:
                        data = transfer.compact_bytes
                    else:
                        data = link_repo.fetch(KIND_IR, name)
                    entries.append({
                        "name": name,
                        "pool": self.put_blob(data),
                    })
                job["imports"] = entries
            jobs.append(job)

        # Encode the shared context only after every routine has been
        # compacted: compaction interns symbols on demand, and the
        # workers rebuild the symtab from the shipped PID order, so the
        # snapshot must come last to cover every reference in the
        # compact IR.  build_context_blob caches the canonical bytes on
        # the link repository (keyed by mutation epoch + structural
        # fingerprint), so warm rebuilds of an unchanged program skip
        # the re-encode on the farm and local process paths alike.
        context_key = self.put_blob(build_context_blob(
            self.hlo_result, self.llo_options, self.naim_config,
            self.scalar_set,
        ))
        for job in jobs:
            job["ctx"] = context_key

        span = (self.events.span(self.DISPATCH_SPAN,
                                 category=self.DISPATCH_CATEGORY)
                if self.events is not None else None)
        if span is not None:
            with span:
                outcomes = self.dispatch(jobs)
        else:
            outcomes = self.dispatch(jobs)

        by_index = {}
        for payload in outcomes:
            if payload is None:
                continue
            by_index[payload.get("index")] = payload
        for partition in partitions:
            payload = by_index.get(partition.index)
            if payload is None:
                raise RemoteDispatchError(
                    "no outcome for partition %d" % partition.index
                )
            self._fold(result, decode_outcome(partition, payload))
        if self.plan is not None:
            # Workers replayed their plan slices; the returned pools
            # are final bodies, so phase 5 must not replay again.
            self.hlo_result._plan_replayed = True
        return result
