"""Callgraph partitioning for the parallel LTRANS backend.

Splits the post-inline CMO unit into N partitions of roughly equal
profile weight, keeping modules that inlining tied together in the
same partition where balance allows (a balanced min-cut heuristic in
the spirit of GCC's WHOPR ``lto-partition``):

1. every non-reused module gets a weight -- the summed profile-view
   block counts of its routines plus a fixed per-routine cost, all
   derived from data the serial phases already hold, so no pool is
   loaded to plan the split;
2. inline affinity edges (the per-module-pair inline counts recorded
   by the inline engine) are folded strongest-first with a union-find,
   refusing any merge that would push a cluster past the balance cap;
3. clusters are packed onto N partitions largest-first (LPT), always
   onto the lightest bin.

Every step iterates sorted data, so the result is deterministic given
the program and profile.  Partitioning never affects correctness --
each routine is optimized independently -- only locality and balance.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from ..hlo.driver import HloResult

#: Fixed modeled cost of one routine, so modules without profile
#: weight still occupy space in the balance computation.
ROUTINE_BASE_WEIGHT = 16

#: A cluster may grow to this multiple of the ideal partition weight
#: before an affinity merge is refused.
BALANCE_SLACK = 1.25


class Partition:
    """One LTRANS work unit: a set of modules and their routines."""

    def __init__(self, index: int, modules: List[str],
                 routines: List[str], weight: int,
                 imports: List[str] = None) -> None:
        self.index = index
        self.modules = modules
        #: Routine names in canonical unit order (the order downstream
        #: splicing preserves).
        self.routines = routines
        self.weight = weight
        #: Summary-only WPA: non-local routine bodies this partition's
        #: plan replay reads (splice callees and clone origins, closed
        #: transitively).  Workers import exactly these -- read-only --
        #: and nothing else; empty under materializing WPA and for
        #: partitions whose replay is self-contained.
        self.imports: List[str] = imports or []

    def __repr__(self) -> str:
        return "<Partition %d: %d modules, %d routines, weight=%d>" % (
            self.index, len(self.modules), len(self.routines), self.weight
        )


def module_weights(hlo_result: "HloResult") -> Dict[str, int]:
    """Profile weight per non-reused module, from views alone."""
    views = hlo_result.ctx.views
    weights: Dict[str, int] = {}
    for name in hlo_result.unit.routine_names():
        module = hlo_result.unit.routine_module.get(name)
        if module is None or module in hlo_result.reused_modules:
            continue
        weight = ROUTINE_BASE_WEIGHT
        view = views.get(name)
        if view is not None:
            weight += int(sum(view.block_counts.values()))
        weights[module] = weights.get(module, 0) + weight
    return weights


class _UnionFind:
    def __init__(self, items: List[str]) -> None:
        self.parent = {item: item for item in items}

    def find(self, item: str) -> str:
        root = item
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[item] != root:
            self.parent[item], item = root, self.parent[item]
        return root

    def union(self, a: str, b: str) -> None:
        # Deterministic representative: the lexically smaller root.
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if rb < ra:
            ra, rb = rb, ra
        self.parent[rb] = ra


def partition_unit(hlo_result: "HloResult",
                   n_partitions: int) -> List[Partition]:
    """Split the unit into at most ``n_partitions`` balanced partitions.

    Reused (incremental-cache) modules are excluded -- they have no
    LTRANS work.  Empty partitions are dropped, so fewer than
    ``n_partitions`` may come back for small programs.
    """
    if n_partitions < 1:
        raise ValueError("n_partitions must be >= 1")
    weights = module_weights(hlo_result)
    modules = sorted(weights)
    if not modules:
        return []

    total = sum(weights.values())
    cap = max(
        int(total / n_partitions * BALANCE_SLACK),
        max(weights.values()),
    )

    # Fold inline affinity edges strongest-first under the balance cap.
    finder = _UnionFind(modules)
    cluster_weight = dict(weights)
    edges: List[Tuple[int, str, str]] = []
    for (caller_mod, callee_mod), count in (
        hlo_result.inline_stats.module_pairs.items()
    ):
        if caller_mod == callee_mod:
            continue
        if caller_mod in weights and callee_mod in weights:
            edges.append((count, caller_mod, callee_mod))
    edges.sort(key=lambda edge: (-edge[0], edge[1], edge[2]))
    for _count, a, b in edges:
        ra, rb = finder.find(a), finder.find(b)
        if ra == rb:
            continue
        if cluster_weight[ra] + cluster_weight[rb] > cap:
            continue
        finder.union(ra, rb)
        root = finder.find(ra)
        other = rb if root == ra else ra
        cluster_weight[root] = cluster_weight[ra] + cluster_weight[rb]
        del cluster_weight[other]

    clusters: Dict[str, List[str]] = {}
    for module in modules:
        clusters.setdefault(finder.find(module), []).append(module)

    # LPT bin packing: heaviest cluster first, always the lightest bin
    # (ties go to the lowest bin index).
    ordered = sorted(
        clusters.items(), key=lambda item: (-cluster_weight[item[0]], item[0])
    )
    bin_weight = [0] * n_partitions
    bin_modules: List[List[str]] = [[] for _ in range(n_partitions)]
    for root, members in ordered:
        lightest = min(range(n_partitions), key=lambda i: (bin_weight[i], i))
        bin_weight[lightest] += cluster_weight[root]
        bin_modules[lightest].extend(members)

    # Materialize, preserving canonical unit order inside each
    # partition and dropping empty bins.
    partitions: List[Partition] = []
    for index in range(n_partitions):
        if not bin_modules[index]:
            continue
        members = set(bin_modules[index])
        routines = [
            name
            for name in hlo_result.unit.routine_names()
            if hlo_result.unit.routine_module.get(name) in members
        ]
        partitions.append(
            Partition(
                len(partitions),
                sorted(members),
                routines,
                bin_weight[index],
            )
        )

    # Summary-only WPA: each partition lists the callee bodies its
    # plan replay must read from outside the partition, so workers
    # fetch exactly (locals + imports) and no more.
    plan = getattr(hlo_result, "plan", None)
    if plan is not None and not hlo_result._plan_replayed:
        for partition in partitions:
            partition.imports = plan.imports_for(partition.routines)
    return partitions
