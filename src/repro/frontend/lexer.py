"""Lexer for MLL, the small C-like source language.

MLL ("Massachusetts Language Lab" language) exists so that the compiler
pipeline has a real frontend stage: source text -> tokens -> AST -> IL.
The IL is language-neutral; HLO never sees MLL constructs (paper §3).
"""

from __future__ import annotations

import enum
from typing import Iterator, List, NamedTuple

from .errors import FrontendError

KEYWORDS = frozenset(
    {
        "func",
        "static",
        "global",
        "var",
        "if",
        "else",
        "while",
        "for",
        "return",
    }
)

#: Multi-character operators, longest first so maximal munch works.
_MULTI_OPS = (
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
)

_SINGLE_OPS = "+-*/%<>=!&|^~(){}[],;"


class TokKind(enum.Enum):
    """Token categories produced by the MLL lexer."""

    IDENT = "ident"
    NUMBER = "number"
    KEYWORD = "keyword"
    OP = "op"
    EOF = "eof"


class Token(NamedTuple):
    kind: TokKind
    text: str
    line: int
    col: int

    def is_op(self, text: str) -> bool:
        return self.kind is TokKind.OP and self.text == text

    def is_kw(self, text: str) -> bool:
        return self.kind is TokKind.KEYWORD and self.text == text


def tokenize(source: str) -> List[Token]:
    """Convert MLL source text into a token list ending with EOF."""
    tokens: List[Token] = []
    line = 1
    col = 1
    index = 0
    length = len(source)

    def error(message: str) -> FrontendError:
        return FrontendError("lex error at %d:%d: %s" % (line, col, message))

    while index < length:
        ch = source[index]
        if ch == "\n":
            line += 1
            col = 1
            index += 1
            continue
        if ch in " \t\r":
            index += 1
            col += 1
            continue
        if ch == "/" and index + 1 < length and source[index + 1] == "/":
            while index < length and source[index] != "\n":
                index += 1
            continue
        if ch.isdigit():
            start = index
            while index < length and source[index].isdigit():
                index += 1
            text = source[start:index]
            tokens.append(Token(TokKind.NUMBER, text, line, col))
            col += len(text)
            continue
        if ch.isalpha() or ch == "_":
            start = index
            while index < length and (source[index].isalnum() or source[index] == "_"):
                index += 1
            text = source[start:index]
            kind = TokKind.KEYWORD if text in KEYWORDS else TokKind.IDENT
            tokens.append(Token(kind, text, line, col))
            col += len(text)
            continue
        two = source[index : index + 2]
        if two in _MULTI_OPS:
            tokens.append(Token(TokKind.OP, two, line, col))
            index += 2
            col += 2
            continue
        if ch in _SINGLE_OPS:
            tokens.append(Token(TokKind.OP, ch, line, col))
            index += 1
            col += 1
            continue
        raise error("unexpected character %r" % ch)

    tokens.append(Token(TokKind.EOF, "", line, col))
    return tokens


def token_stream(source: str) -> Iterator[Token]:
    """Generator variant of :func:`tokenize`."""
    return iter(tokenize(source))
