"""Semantic checks for MLL modules.

Checks performed before lowering:

* duplicate top-level names (globals, functions);
* duplicate parameters and local redeclaration;
* use of undeclared locals is allowed only as a *global* reference --
  any name that is neither a parameter nor a ``var`` is treated as a
  global, and if this module does not declare it, it becomes an extern
  reference resolved at link time (C-style);
* arity checks for calls whose target is defined in the same module
  (cross-module arity mismatches are the linker's interface checker's
  job, mirroring the paper's §6.3 discussion).
"""

from __future__ import annotations

from typing import Dict, List, Set

from . import ast
from .errors import SemanticError


class ModuleInfo:
    """Name environment gathered from a module's top level."""

    def __init__(self, module: ast.ModuleAST) -> None:
        self.module = module
        self.global_decls: Dict[str, ast.GlobalDecl] = {}
        self.func_decls: Dict[str, ast.FuncDecl] = {}
        for decl in module.globals:
            if decl.name in self.global_decls:
                raise SemanticError(
                    "%s: duplicate global %r (line %d)"
                    % (module.name, decl.name, decl.line)
                )
            self.global_decls[decl.name] = decl
        for func in module.funcs:
            if func.name in self.func_decls:
                raise SemanticError(
                    "%s: duplicate function %r (line %d)"
                    % (module.name, func.name, func.line)
                )
            if func.name in self.global_decls:
                raise SemanticError(
                    "%s: %r is both a global and a function" % (module.name, func.name)
                )
            self.func_decls[func.name] = func


def _check_expr(expr: ast.Expr, locals_: Set[str], info: ModuleInfo) -> None:
    if isinstance(expr, ast.NumberExpr):
        return
    if isinstance(expr, ast.NameExpr):
        if expr.name in locals_:
            return
        decl = info.global_decls.get(expr.name)
        if decl is not None and decl.size > 1:
            raise SemanticError(
                "%s:%d: array %r used as a scalar"
                % (info.module.name, expr.line, expr.name)
            )
        return  # extern global reference, resolved at link time
    if isinstance(expr, ast.IndexExpr):
        if expr.name in locals_:
            raise SemanticError(
                "%s:%d: local %r indexed like an array"
                % (info.module.name, expr.line, expr.name)
            )
        decl = info.global_decls.get(expr.name)
        if decl is not None and decl.size == 1:
            raise SemanticError(
                "%s:%d: scalar %r indexed like an array"
                % (info.module.name, expr.line, expr.name)
            )
        _check_expr(expr.index, locals_, info)
        return
    if isinstance(expr, ast.UnaryExpr):
        _check_expr(expr.operand, locals_, info)
        return
    if isinstance(expr, ast.BinaryExpr):
        _check_expr(expr.left, locals_, info)
        _check_expr(expr.right, locals_, info)
        return
    if isinstance(expr, ast.CallExpr):
        if expr.callee in locals_:
            raise SemanticError(
                "%s:%d: local %r called like a function"
                % (info.module.name, expr.line, expr.callee)
            )
        func = info.func_decls.get(expr.callee)
        if func is not None and len(func.params) != len(expr.args):
            raise SemanticError(
                "%s:%d: call to %s with %d args, expects %d"
                % (
                    info.module.name,
                    expr.line,
                    expr.callee,
                    len(expr.args),
                    len(func.params),
                )
            )
        for arg in expr.args:
            _check_expr(arg, locals_, info)
        return
    raise SemanticError("unknown expression node %r" % type(expr).__name__)


def _check_stmts(
    stmts: List[ast.Stmt], locals_: Set[str], info: ModuleInfo
) -> None:
    for stmt in stmts:
        if isinstance(stmt, ast.VarDecl):
            if stmt.name in locals_:
                raise SemanticError(
                    "%s:%d: redeclaration of local %r"
                    % (info.module.name, stmt.line, stmt.name)
                )
            _check_expr(stmt.init, locals_, info)
            locals_.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            _check_expr(stmt.value, locals_, info)
            if stmt.name not in locals_:
                decl = info.global_decls.get(stmt.name)
                if decl is not None and decl.size > 1:
                    raise SemanticError(
                        "%s:%d: array %r assigned like a scalar"
                        % (info.module.name, stmt.line, stmt.name)
                    )
        elif isinstance(stmt, ast.StoreElem):
            decl = info.global_decls.get(stmt.name)
            if decl is not None and decl.size == 1:
                raise SemanticError(
                    "%s:%d: scalar %r indexed like an array"
                    % (info.module.name, stmt.line, stmt.name)
                )
            if stmt.name in locals_:
                raise SemanticError(
                    "%s:%d: local %r indexed like an array"
                    % (info.module.name, stmt.line, stmt.name)
                )
            _check_expr(stmt.index, locals_, info)
            _check_expr(stmt.value, locals_, info)
        elif isinstance(stmt, ast.ExprStmt):
            _check_expr(stmt.expr, locals_, info)
        elif isinstance(stmt, ast.IfStmt):
            _check_expr(stmt.cond, locals_, info)
            _check_stmts(stmt.then_body, locals_, info)
            if stmt.else_body is not None:
                _check_stmts(stmt.else_body, locals_, info)
        elif isinstance(stmt, ast.WhileStmt):
            _check_expr(stmt.cond, locals_, info)
            _check_stmts(stmt.body, locals_, info)
        elif isinstance(stmt, ast.ForStmt):
            if stmt.init is not None:
                _check_stmts([stmt.init], locals_, info)
            _check_expr(stmt.cond, locals_, info)
            if stmt.step is not None:
                _check_stmts([stmt.step], locals_, info)
            _check_stmts(stmt.body, locals_, info)
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is not None:
                _check_expr(stmt.value, locals_, info)
        else:
            raise SemanticError("unknown statement node %r" % type(stmt).__name__)


def check_module(module: ast.ModuleAST) -> ModuleInfo:
    """Run all semantic checks; return the name environment."""
    info = ModuleInfo(module)
    for func in module.funcs:
        params = set(func.params)
        if len(params) != len(func.params):
            raise SemanticError(
                "%s: duplicate parameter in %s (line %d)"
                % (module.name, func.name, func.line)
            )
        _check_stmts(func.body, set(params), info)
    return info
