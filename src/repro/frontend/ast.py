"""Abstract syntax tree for MLL.

Node classes are plain data holders; behaviour lives in the parser,
semantic checker and lowering pass.  Each node records the source line
that produced it, which feeds the per-routine line accounting used by
the paper's "lines of code" metrics.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


class Node:
    """Base AST node."""

    __slots__ = ("line",)

    def __init__(self, line: int) -> None:
        self.line = line


# -- Expressions ------------------------------------------------------------


class Expr(Node):
    __slots__ = ()


class NumberExpr(Expr):
    __slots__ = ("value",)

    def __init__(self, value: int, line: int) -> None:
        super().__init__(line)
        self.value = value


class NameExpr(Expr):
    """A variable reference (local, param or global scalar)."""

    __slots__ = ("name",)

    def __init__(self, name: str, line: int) -> None:
        super().__init__(line)
        self.name = name


class IndexExpr(Expr):
    """Global array element reference: ``name[index]``."""

    __slots__ = ("name", "index")

    def __init__(self, name: str, index: Expr, line: int) -> None:
        super().__init__(line)
        self.name = name
        self.index = index


class UnaryExpr(Expr):
    """op in {'-', '!', '~'}."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr, line: int) -> None:
        super().__init__(line)
        self.op = op
        self.operand = operand


class BinaryExpr(Expr):
    """Arithmetic/comparison/bitwise binary expression.

    Short-circuit '&&' and '||' are represented here too and lowered to
    control flow.
    """

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr, line: int) -> None:
        super().__init__(line)
        self.op = op
        self.left = left
        self.right = right


class CallExpr(Expr):
    __slots__ = ("callee", "args")

    def __init__(self, callee: str, args: Sequence[Expr], line: int) -> None:
        super().__init__(line)
        self.callee = callee
        self.args = list(args)


# -- Statements -----------------------------------------------------------------


class Stmt(Node):
    __slots__ = ()


class VarDecl(Stmt):
    """``var name = init;`` -- function-scoped local declaration."""

    __slots__ = ("name", "init")

    def __init__(self, name: str, init: Expr, line: int) -> None:
        super().__init__(line)
        self.name = name
        self.init = init


class Assign(Stmt):
    """``name = value;`` (local or global scalar)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: Expr, line: int) -> None:
        super().__init__(line)
        self.name = name
        self.value = value


class StoreElem(Stmt):
    """``name[index] = value;`` (global array)."""

    __slots__ = ("name", "index", "value")

    def __init__(self, name: str, index: Expr, value: Expr, line: int) -> None:
        super().__init__(line)
        self.name = name
        self.index = index
        self.value = value


class ExprStmt(Stmt):
    """Expression evaluated for side effects (typically a call)."""

    __slots__ = ("expr",)

    def __init__(self, expr: Expr, line: int) -> None:
        super().__init__(line)
        self.expr = expr


class IfStmt(Stmt):
    __slots__ = ("cond", "then_body", "else_body")

    def __init__(
        self,
        cond: Expr,
        then_body: List[Stmt],
        else_body: Optional[List[Stmt]],
        line: int,
    ) -> None:
        super().__init__(line)
        self.cond = cond
        self.then_body = then_body
        self.else_body = else_body


class WhileStmt(Stmt):
    __slots__ = ("cond", "body")

    def __init__(self, cond: Expr, body: List[Stmt], line: int) -> None:
        super().__init__(line)
        self.cond = cond
        self.body = body


class ForStmt(Stmt):
    """``for (init; cond; step) body`` where init/step are assignments."""

    __slots__ = ("init", "cond", "step", "body")

    def __init__(
        self,
        init: Optional[Stmt],
        cond: Expr,
        step: Optional[Stmt],
        body: List[Stmt],
        line: int,
    ) -> None:
        super().__init__(line)
        self.init = init
        self.cond = cond
        self.step = step
        self.body = body


class ReturnStmt(Stmt):
    __slots__ = ("value",)

    def __init__(self, value: Optional[Expr], line: int) -> None:
        super().__init__(line)
        self.value = value


# -- Top level ---------------------------------------------------------------------


class GlobalDecl(Node):
    """``global name = 3;`` / ``global name[16] = {...};`` (+ ``static``)."""

    __slots__ = ("name", "size", "init", "exported")

    def __init__(
        self,
        name: str,
        size: int,
        init: List[int],
        exported: bool,
        line: int,
    ) -> None:
        super().__init__(line)
        self.name = name
        self.size = size
        self.init = init
        self.exported = exported


class FuncDecl(Node):
    __slots__ = ("name", "params", "body", "exported", "end_line")

    def __init__(
        self,
        name: str,
        params: List[str],
        body: List[Stmt],
        exported: bool,
        line: int,
        end_line: int,
    ) -> None:
        super().__init__(line)
        self.name = name
        self.params = params
        self.body = body
        self.exported = exported
        self.end_line = end_line

    @property
    def source_lines(self) -> int:
        return max(1, self.end_line - self.line + 1)


class ModuleAST(Node):
    """A parsed MLL source file: globals + functions + line count."""

    __slots__ = ("name", "globals", "funcs", "total_lines")

    def __init__(self, name: str) -> None:
        super().__init__(1)
        self.name = name
        self.globals: List[GlobalDecl] = []
        self.funcs: List[FuncDecl] = []
        self.total_lines = 0
