"""MFL: a second frontend (FORTRAN-flavoured) onto the common IL.

The paper's applications are mixed-language ("Mcad2 is a mixture of C,
C++, and FORTRAN"), and the framework handles that because every
frontend lowers to the same IL: "because HLO works at the IL level, it
can freely optimize mixed-language applications.  In fact, HLO does not
need to know the source language of a module."  MFL exists to make that
claim testable: MFL and MLL modules link together, and cross-module
inlining happily splices FORTRAN-ish callees into C-ish callers.

The language (line-oriented, case-insensitive):

.. code-block:: none

    ! a comment
    INTEGER COUNT = 0              ! exported global scalar
    PRIVATE INTEGER SEED = 7       ! module-static global
    INTEGER TABLE(8) = 1,2,3,4,5,6,7,8   ! global array (1-based!)

    FUNCTION ADDUP(A, B)
      INTEGER T
      T = A + B
      IF (T .GT. 100) THEN
        RETURN 100
      ELSE
        RETURN T
      END IF
    END

    PRIVATE FUNCTION HELPER(X)     ! module-static function
      RETURN X * 2
    END

    FUNCTION LOOPY(N)
      INTEGER S
      S = 0
      DO I = 1, N                  ! inclusive bounds, optional step
        S = S + ADDUP(I, TABLE(1 + S - S))
      END DO
      RETURN S
    END

Operators: ``+ - * /`` and ``.GT. .GE. .LT. .LE. .EQ. .NE. .AND. .OR.
.NOT.`` plus the intrinsics ``MOD(a, b)`` and ``IAND(a, b)``.  Array indexing is
**1-based** and lowered to the IL's 0-based LOADE/STOREE.  Identifiers
are case-insensitive and lowered to lowercase IL names, so an MFL
``FUNCTION SCALE`` links against MLL calls to ``scale``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..ir.builder import IRBuilder
from ..ir.instructions import Opcode
from ..ir.module import Module
from ..ir.routine import Routine
from .errors import FrontendError

_DOT_OPS = {
    ".GT.": Opcode.GT,
    ".GE.": Opcode.GE,
    ".LT.": Opcode.LT,
    ".LE.": Opcode.LE,
    ".EQ.": Opcode.EQ,
    ".NE.": Opcode.NE,
}

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<dotop>\.(?:GT|GE|LT|LE|EQ|NE|AND|OR|NOT)\.)"
    r"|(?P<num>\d+)"
    r"|(?P<name>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<op>[-+*/(),=])"
    r")",
    re.IGNORECASE,
)


class _Line:
    __slots__ = ("number", "text")

    def __init__(self, number: int, text: str) -> None:
        self.number = number
        self.text = text


def _strip_lines(source: str) -> List[_Line]:
    lines: List[_Line] = []
    for number, raw in enumerate(source.splitlines(), start=1):
        text = raw.split("!", 1)[0].strip()
        if text:
            lines.append(_Line(number, text))
    return lines


def _tokenize_expr(text: str, line_no: int) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None or match.end() == position:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise FrontendError(
                "mfl line %d: cannot tokenize %r" % (line_no, remainder)
            )
        position = match.end()
        if match.group("dotop"):
            tokens.append(("dotop", match.group("dotop").upper()))
        elif match.group("num"):
            tokens.append(("num", match.group("num")))
        elif match.group("name"):
            tokens.append(("name", match.group("name").lower()))
        else:
            tokens.append(("op", match.group("op")))
    tokens.append(("eof", ""))
    return tokens


class _ExprParser:
    """Precedence-climbing parser producing IL through a builder.

    Grammar (loosest first): .OR. | .AND. | comparisons | additive |
    multiplicative | unary | primary.
    """

    def __init__(self, lowering: "_MflFunctionLowering",
                 tokens: List[Tuple[str, str]], line_no: int) -> None:
        self.lowering = lowering
        self.tokens = tokens
        self.position = 0
        self.line_no = line_no

    # -- Token helpers ------------------------------------------------------

    def peek(self) -> Tuple[str, str]:
        return self.tokens[self.position]

    def advance(self) -> Tuple[str, str]:
        token = self.tokens[self.position]
        if token[0] != "eof":
            self.position += 1
        return token

    def expect_op(self, op: str) -> None:
        kind, text = self.advance()
        if kind != "op" or text != op:
            raise FrontendError(
                "mfl line %d: expected %r, found %r"
                % (self.line_no, op, text)
            )

    def at_end(self) -> bool:
        return self.peek()[0] == "eof"

    # -- Grammar ----------------------------------------------------------------

    def parse(self) -> int:
        value = self.or_expr()
        if not self.at_end():
            raise FrontendError(
                "mfl line %d: trailing tokens after expression"
                % self.line_no
            )
        return value

    def or_expr(self) -> int:
        left = self.and_expr()
        while self.peek() == ("dotop", ".OR."):
            self.advance()
            right = self.and_expr()
            left = self._boolify_or(left, right)
        return left

    def and_expr(self) -> int:
        left = self.compare_expr()
        while self.peek() == ("dotop", ".AND."):
            self.advance()
            right = self.compare_expr()
            left = self._boolify_and(left, right)
        return left

    def compare_expr(self) -> int:
        left = self.additive()
        kind, text = self.peek()
        if kind == "dotop" and text in _DOT_OPS:
            self.advance()
            right = self.additive()
            return self.lowering.builder.binop(_DOT_OPS[text], left, right)
        return left

    def additive(self) -> int:
        left = self.multiplicative()
        while self.peek() in (("op", "+"), ("op", "-")):
            _, op = self.advance()
            right = self.multiplicative()
            opcode = Opcode.ADD if op == "+" else Opcode.SUB
            left = self.lowering.builder.binop(opcode, left, right)
        return left

    def multiplicative(self) -> int:
        left = self.unary()
        while self.peek() in (("op", "*"), ("op", "/")):
            _, op = self.advance()
            right = self.unary()
            opcode = Opcode.MUL if op == "*" else Opcode.DIV
            left = self.lowering.builder.binop(opcode, left, right)
        return left

    def unary(self) -> int:
        if self.peek() == ("op", "-"):
            self.advance()
            return self.lowering.builder.unop(Opcode.NEG, self.unary())
        if self.peek() == ("dotop", ".NOT."):
            self.advance()
            operand = self.unary()
            zero = self.lowering.builder.const(0)
            return self.lowering.builder.binop(Opcode.EQ, operand, zero)
        return self.primary()

    def primary(self) -> int:
        kind, text = self.advance()
        builder = self.lowering.builder
        if kind == "num":
            return builder.const(int(text))
        if kind == "op" and text == "(":
            value = self.or_expr()
            self.expect_op(")")
            return value
        if kind == "name":
            if self.peek() == ("op", "("):
                self.advance()
                arguments: List[int] = []
                if self.peek() != ("op", ")"):
                    while True:
                        arguments.append(self.or_expr())
                        if self.peek() == ("op", ","):
                            self.advance()
                            continue
                        break
                self.expect_op(")")
                return self.lowering.name_with_args(
                    text, arguments, self.line_no
                )
            return self.lowering.name_value(text, self.line_no)
        raise FrontendError(
            "mfl line %d: unexpected token %r" % (self.line_no, text)
        )

    # -- Logical helpers (MFL booleans are 0/1 ints; no short circuit,
    #    matching FORTRAN-77's unspecified evaluation order) ----------------

    def _boolify_and(self, a: int, b: int) -> int:
        builder = self.lowering.builder
        zero = builder.const(0)
        left = builder.binop(Opcode.NE, a, zero)
        right = builder.binop(Opcode.NE, b, zero)
        return builder.binop(Opcode.AND, left, right)

    def _boolify_or(self, a: int, b: int) -> int:
        builder = self.lowering.builder
        zero = builder.const(0)
        left = builder.binop(Opcode.NE, a, zero)
        right = builder.binop(Opcode.NE, b, zero)
        return builder.binop(Opcode.OR, left, right)


class _MflFunctionLowering:
    """Lowers one FUNCTION body, line by line."""

    def __init__(self, parser: "_MflParser", name: str, params: List[str],
                 exported: bool, start_line: int) -> None:
        self.parser = parser
        visible_name = name if exported else "%s::%s" % (parser.module_name,
                                                         name)
        self.routine = Routine(
            visible_name,
            module_name=parser.module_name,
            n_params=len(params),
            exported=exported,
            source_lines=1,
            source_language="mfl",
        )
        self.routine.annotations["start_line"] = start_line
        self.builder = IRBuilder(self.routine)
        self.locals: Dict[str, int] = {
            param: index for index, param in enumerate(params)
        }

    # -- Name resolution ----------------------------------------------------

    def local_reg(self, name: str, create: bool = False,
                  line_no: int = 0) -> Optional[int]:
        reg = self.locals.get(name)
        if reg is None and create:
            reg = self.routine.new_reg()
            self.locals[name] = reg
        return reg

    def global_symbol(self, name: str) -> str:
        if name in self.parser.static_globals:
            return "%s::%s" % (self.parser.module_name, name)
        return name

    def name_value(self, name: str, line_no: int) -> int:
        reg = self.locals.get(name)
        if reg is not None:
            return reg
        if name in self.parser.array_globals:
            raise FrontendError(
                "mfl line %d: array %s used without an index"
                % (line_no, name)
            )
        return self.builder.load_global(self.global_symbol(name))

    def name_with_args(self, name: str, arguments: List[int],
                       line_no: int) -> int:
        # Intrinsics: MOD and IAND (FORTRAN-77's bitwise AND).
        if name in ("mod", "iand"):
            if len(arguments) != 2:
                raise FrontendError(
                    "mfl line %d: %s takes two arguments"
                    % (line_no, name.upper())
                )
            opcode = Opcode.MOD if name == "mod" else Opcode.AND
            return self.builder.binop(opcode, arguments[0], arguments[1])
        # Array reference (1-based) when the name is a known array.
        if name in self.parser.array_globals:
            if len(arguments) != 1:
                raise FrontendError(
                    "mfl line %d: array %s takes one index"
                    % (line_no, name)
                )
            one = self.builder.const(1)
            index = self.builder.binop(Opcode.SUB, arguments[0], one)
            return self.builder.load_elem(self.global_symbol(name), index)
        # Otherwise a call; static functions are module-qualified.
        callee = name
        if name in self.parser.static_functions:
            callee = "%s::%s" % (self.parser.module_name, name)
        result = self.builder.call(callee, arguments)
        assert result is not None
        return result

    def store_name(self, name: str, value: int, line_no: int) -> None:
        if name in self.parser.array_globals:
            raise FrontendError(
                "mfl line %d: array %s assigned without an index"
                % (line_no, name)
            )
        if name in self.parser.scalar_globals:
            self.builder.store_global(self.global_symbol(name), value)
            return
        reg = self.local_reg(name, create=True, line_no=line_no)
        self.builder.mov(value, dst=reg)

    # -- Expression helper ---------------------------------------------------

    def eval_expr(self, text: str, line_no: int) -> int:
        tokens = _tokenize_expr(text, line_no)
        return _ExprParser(self, tokens, line_no).parse()


_ASSIGN_RE = re.compile(
    r"^(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*(?:\(\s*(?P<index>.*?)\s*\))?"
    r"\s*=\s*(?P<expr>.+)$"
)
_DO_RE = re.compile(
    r"^DO\s+(?P<var>[A-Za-z_][A-Za-z0-9_]*)\s*=\s*(?P<lo>[^,]+),"
    r"(?P<hi>[^,]+)(?:,(?P<step>.+))?$",
    re.IGNORECASE,
)
_IF_RE = re.compile(r"^IF\s*\((?P<cond>.*)\)\s*THEN$", re.IGNORECASE)
_FUNC_RE = re.compile(
    r"^(?P<private>PRIVATE\s+)?FUNCTION\s+(?P<name>[A-Za-z_][A-Za-z0-9_]*)"
    r"\s*\((?P<params>[^)]*)\)$",
    re.IGNORECASE,
)
_GLOBAL_RE = re.compile(
    r"^(?P<private>PRIVATE\s+)?INTEGER\s+(?P<name>[A-Za-z_][A-Za-z0-9_]*)"
    r"(?:\s*\(\s*(?P<size>\d+)\s*\))?(?:\s*=\s*(?P<init>.+))?$",
    re.IGNORECASE,
)


class _MflParser:
    """Parses one MFL source file into an IL module."""

    def __init__(self, source: str, module_name: str) -> None:
        self.module_name = module_name
        self.lines = _strip_lines(source)
        self.position = 0
        self.module = Module(
            module_name, source_lines=source.count("\n") + 1
        )
        self.scalar_globals: Dict[str, bool] = {}
        self.array_globals: Dict[str, int] = {}
        self.static_globals: Dict[str, bool] = {}
        self.static_functions: Dict[str, bool] = {}

    # -- Line helpers ---------------------------------------------------------

    def at_end(self) -> bool:
        return self.position >= len(self.lines)

    def peek(self) -> _Line:
        return self.lines[self.position]

    def advance(self) -> _Line:
        line = self.lines[self.position]
        self.position += 1
        return line

    def error(self, line: _Line, message: str) -> FrontendError:
        return FrontendError(
            "mfl %s:%d: %s" % (self.module_name, line.number, message)
        )

    # -- Module level -----------------------------------------------------------

    def parse_module(self) -> Module:
        # First pass: collect declarations so bodies can resolve names
        # regardless of order (FORTRAN programmers expect this).
        self._scan_declarations()
        while not self.at_end():
            line = self.advance()
            func_match = _FUNC_RE.match(line.text)
            if func_match:
                self._parse_function(func_match, line)
                continue
            if _GLOBAL_RE.match(line.text):
                self._define_global(line)
                continue
            raise self.error(line, "expected FUNCTION or INTEGER")
        return self.module

    def _scan_declarations(self) -> None:
        depth = 0
        for line in self.lines:
            upper = line.text.upper()
            func_match = _FUNC_RE.match(line.text)
            if func_match:
                if depth == 0 and func_match.group("private"):
                    self.static_functions[
                        func_match.group("name").lower()
                    ] = True
                depth += 1
                continue
            if upper == "END":
                depth = max(depth - 1, 0)
                continue
            if depth == 0:
                global_match = _GLOBAL_RE.match(line.text)
                if global_match:
                    name = global_match.group("name").lower()
                    private = bool(global_match.group("private"))
                    if global_match.group("size"):
                        self.array_globals[name] = int(
                            global_match.group("size")
                        )
                    else:
                        self.scalar_globals[name] = True
                    if private:
                        self.static_globals[name] = True

    def _define_global(self, line: _Line) -> None:
        match = _GLOBAL_RE.match(line.text)
        assert match is not None
        name = match.group("name").lower()
        private = bool(match.group("private"))
        visible = name if not private else "%s::%s" % (self.module_name,
                                                       name)
        init_text = match.group("init")
        if match.group("size"):
            size = int(match.group("size"))
            init = [0] * size
            if init_text:
                values = [v.strip() for v in init_text.split(",")]
                if len(values) > size:
                    raise self.error(line, "too many initializers")
                for index, value in enumerate(values):
                    init[index] = int(value)
            self.module.define_global(visible, size=size, init=init,
                                      exported=not private)
        else:
            value = int(init_text) if init_text else 0
            self.module.define_global(visible, init=[value],
                                      exported=not private)

    # -- Functions -----------------------------------------------------------------

    def _parse_function(self, match, header: _Line) -> None:
        name = match.group("name").lower()
        exported = not match.group("private")
        params_text = match.group("params").strip()
        params = (
            [p.strip().lower() for p in params_text.split(",")]
            if params_text
            else []
        )
        lowering = _MflFunctionLowering(self, name, params, exported,
                                        header.number)
        self._parse_body(lowering, terminators=("END",))
        end_line = self.lines[self.position - 1].number
        lowering.routine.source_lines = max(
            1, end_line - header.number + 1
        )
        del lowering.routine.annotations["start_line"]
        if not lowering.builder.is_terminated():
            lowering.builder.ret(lowering.builder.const(0))
        for block in lowering.routine.blocks:
            if not block.is_terminated():
                from ..ir.instructions import Instr

                reg = lowering.routine.new_reg()
                block.append(Instr(Opcode.CONST, dst=reg, imm=0))
                block.set_terminator(Instr(Opcode.RET, a=reg))
        lowering.routine.invalidate()
        self.module.add_routine(lowering.routine)

    def _parse_body(self, lowering: _MflFunctionLowering,
                    terminators: Tuple[str, ...]) -> str:
        """Parse statements until one of ``terminators``; returns it."""
        builder = lowering.builder
        while True:
            if self.at_end():
                raise FrontendError(
                    "mfl %s: unexpected end of file (missing %s)"
                    % (self.module_name, "/".join(terminators))
                )
            line = self.advance()
            upper = line.text.upper()
            if upper in terminators:
                return upper
            if upper.startswith("RETURN"):
                rest = line.text[len("RETURN"):].strip()
                if builder.is_terminated():
                    continue
                if rest:
                    builder.ret(lowering.eval_expr(rest, line.number))
                else:
                    builder.ret(builder.const(0))
                continue
            if builder.is_terminated():
                # Unreachable statement after RETURN: skip to keep
                # structure (matching the MLL frontend's behaviour).
                self._skip_statement(line)
                continue
            if upper.startswith("CALL "):
                expr = line.text[5:].strip()
                lowering.eval_expr(expr, line.number)
                continue
            if upper.startswith("INTEGER "):
                name = line.text.split(None, 1)[1].strip().lower()
                if not re.match(r"^[a-z_][a-z0-9_]*$", name):
                    raise self.error(line, "bad local declaration")
                lowering.local_reg(name, create=True, line_no=line.number)
                continue
            if_match = _IF_RE.match(line.text)
            if if_match:
                self._parse_if(lowering, if_match.group("cond"), line)
                continue
            do_match = _DO_RE.match(line.text)
            if do_match:
                self._parse_do(lowering, do_match, line)
                continue
            assign_match = _ASSIGN_RE.match(line.text)
            if assign_match:
                self._parse_assign(lowering, assign_match, line)
                continue
            raise self.error(line, "cannot parse statement")

    def _skip_statement(self, line: _Line) -> None:
        """Skip an unreachable statement (and any nested block)."""
        upper = line.text.upper()
        if _IF_RE.match(line.text) or _DO_RE.match(line.text):
            depth = 1
            while depth and not self.at_end():
                text = self.advance().text.upper()
                if _IF_RE.match(text) or _DO_RE.match(text):
                    depth += 1
                elif text in ("END IF", "ENDIF", "END DO", "ENDDO"):
                    depth -= 1

    def _parse_assign(self, lowering: _MflFunctionLowering, match,
                      line: _Line) -> None:
        name = match.group("name").lower()
        index_text = match.group("index")
        value = lowering.eval_expr(match.group("expr"), line.number)
        if index_text is not None and name in self.array_globals:
            index_value = lowering.eval_expr(index_text, line.number)
            one = lowering.builder.const(1)
            index = lowering.builder.binop(Opcode.SUB, index_value, one)
            lowering.builder.store_elem(
                lowering.global_symbol(name), index, value
            )
            return
        if index_text is not None:
            raise self.error(line, "%s is not an array" % name)
        lowering.store_name(name, value, line.number)

    def _parse_if(self, lowering: _MflFunctionLowering, cond_text: str,
                  line: _Line) -> None:
        builder = lowering.builder
        condition = lowering.eval_expr(cond_text, line.number)
        then_block = builder.new_block("then")
        join_block = builder.new_block("join")

        entry_block = builder.block  # holds the BR we may retarget
        builder.br(condition, then_block, join_block)
        builder.position_at(then_block)
        terminator = self._parse_body(
            lowering, terminators=("ELSE", "END IF", "ENDIF")
        )
        if terminator == "ELSE":
            else_block = builder.new_block("else")
            entry_block.retarget(join_block.label, else_block.label)
            if not builder.is_terminated():
                builder.jmp(join_block)
            builder.position_at(else_block)
            self._parse_body(lowering, terminators=("END IF", "ENDIF"))
        if not builder.is_terminated():
            builder.jmp(join_block)
        builder.position_at(join_block)

    def _parse_do(self, lowering: _MflFunctionLowering, match,
                  line: _Line) -> None:
        builder = lowering.builder
        var = match.group("var").lower()
        low = lowering.eval_expr(match.group("lo").strip(), line.number)
        high = lowering.eval_expr(match.group("hi").strip(), line.number)
        step_text = match.group("step")
        step = (
            lowering.eval_expr(step_text.strip(), line.number)
            if step_text
            else builder.const(1)
        )
        counter = lowering.local_reg(var, create=True, line_no=line.number)
        builder.mov(low, dst=counter)

        head = builder.new_block("do_head")
        body = builder.new_block("do_body")
        exit_block = builder.new_block("do_exit")
        builder.jmp(head)
        builder.position_at(head)
        # Inclusive upper bound (FORTRAN semantics); positive step only.
        in_range = builder.binop(Opcode.LE, counter, high)
        builder.br(in_range, body, exit_block)

        builder.position_at(body)
        self._parse_body(lowering, terminators=("END DO", "ENDDO"))
        if not builder.is_terminated():
            bumped = builder.binop(Opcode.ADD, counter, step)
            builder.mov(bumped, dst=counter)
            builder.jmp(head)
        builder.position_at(exit_block)


def compile_mfl_source(source: str, module_name: str) -> Module:
    """Compile one MFL source file into an IL module."""
    module = _MflParser(source, module_name).parse_module()
    for extern in module.external_callees():
        module.symtab.record_extern(extern)
    return module
