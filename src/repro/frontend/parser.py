"""Recursive-descent parser for MLL."""

from __future__ import annotations

from typing import List, Optional

from . import ast
from .errors import FrontendError
from .lexer import TokKind, Token, tokenize

#: Binary operator precedence, loosest binding first.
_PRECEDENCE = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]


class Parser:
    """Parses one MLL source file into a :class:`ModuleAST`."""

    def __init__(self, source: str, module_name: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0
        self.module_name = module_name
        self.total_lines = source.count("\n") + (0 if source.endswith("\n") else 1)

    # -- Token helpers --------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokKind.EOF:
            self.pos += 1
        return token

    def error(self, message: str) -> FrontendError:
        token = self.current
        return FrontendError(
            "%s:%d:%d: %s (at %r)"
            % (self.module_name, token.line, token.col, message, token.text)
        )

    def expect_op(self, text: str) -> Token:
        if not self.current.is_op(text):
            raise self.error("expected %r" % text)
        return self.advance()

    def expect_kw(self, text: str) -> Token:
        if not self.current.is_kw(text):
            raise self.error("expected keyword %r" % text)
        return self.advance()

    def expect_ident(self) -> Token:
        if self.current.kind is not TokKind.IDENT:
            raise self.error("expected identifier")
        return self.advance()

    def accept_op(self, text: str) -> bool:
        if self.current.is_op(text):
            self.advance()
            return True
        return False

    # -- Top level -------------------------------------------------------------

    def parse_module(self) -> ast.ModuleAST:
        module = ast.ModuleAST(self.module_name)
        module.total_lines = self.total_lines
        while self.current.kind is not TokKind.EOF:
            exported = True
            if self.current.is_kw("static"):
                self.advance()
                exported = False
            if self.current.is_kw("global"):
                module.globals.append(self._parse_global(exported))
            elif self.current.is_kw("func"):
                module.funcs.append(self._parse_func(exported))
            else:
                raise self.error("expected 'global' or 'func' at top level")
        return module

    def _parse_global(self, exported: bool) -> ast.GlobalDecl:
        line = self.current.line
        self.expect_kw("global")
        name = self.expect_ident().text
        size = 1
        init: List[int] = []
        if self.accept_op("["):
            size_tok = self.advance()
            if size_tok.kind is not TokKind.NUMBER:
                raise self.error("array size must be a literal")
            size = int(size_tok.text)
            self.expect_op("]")
        if self.accept_op("="):
            if self.accept_op("{"):
                while not self.current.is_op("}"):
                    init.append(self._parse_int_literal())
                    if not self.accept_op(","):
                        break
                self.expect_op("}")
            else:
                init.append(self._parse_int_literal())
        self.expect_op(";")
        if len(init) > size:
            raise self.error("too many initializers for %s[%d]" % (name, size))
        init.extend([0] * (size - len(init)))
        return ast.GlobalDecl(name, size, init, exported, line)

    def _parse_int_literal(self) -> int:
        negative = self.accept_op("-")
        token = self.advance()
        if token.kind is not TokKind.NUMBER:
            raise self.error("expected integer literal")
        value = int(token.text)
        return -value if negative else value

    def _parse_func(self, exported: bool) -> ast.FuncDecl:
        line = self.current.line
        self.expect_kw("func")
        name = self.expect_ident().text
        self.expect_op("(")
        params: List[str] = []
        if not self.current.is_op(")"):
            while True:
                params.append(self.expect_ident().text)
                if not self.accept_op(","):
                    break
        self.expect_op(")")
        body = self._parse_block()
        end_line = self.tokens[self.pos - 1].line
        return ast.FuncDecl(name, params, body, exported, line, end_line)

    # -- Statements ---------------------------------------------------------------

    def _parse_block(self) -> List[ast.Stmt]:
        self.expect_op("{")
        body: List[ast.Stmt] = []
        while not self.current.is_op("}"):
            body.append(self._parse_stmt())
        self.expect_op("}")
        return body

    def _parse_stmt(self) -> ast.Stmt:
        token = self.current
        if token.is_kw("var"):
            return self._parse_var_decl()
        if token.is_kw("if"):
            return self._parse_if()
        if token.is_kw("while"):
            return self._parse_while()
        if token.is_kw("for"):
            return self._parse_for()
        if token.is_kw("return"):
            return self._parse_return()
        return self._parse_simple_stmt(require_semi=True)

    def _parse_var_decl(self) -> ast.VarDecl:
        line = self.expect_kw("var").line
        name = self.expect_ident().text
        self.expect_op("=")
        init = self._parse_expr()
        self.expect_op(";")
        return ast.VarDecl(name, init, line)

    def _parse_if(self) -> ast.IfStmt:
        line = self.expect_kw("if").line
        self.expect_op("(")
        cond = self._parse_expr()
        self.expect_op(")")
        then_body = self._parse_block()
        else_body: Optional[List[ast.Stmt]] = None
        if self.current.is_kw("else"):
            self.advance()
            if self.current.is_kw("if"):
                else_body = [self._parse_if()]
            else:
                else_body = self._parse_block()
        return ast.IfStmt(cond, then_body, else_body, line)

    def _parse_while(self) -> ast.WhileStmt:
        line = self.expect_kw("while").line
        self.expect_op("(")
        cond = self._parse_expr()
        self.expect_op(")")
        body = self._parse_block()
        return ast.WhileStmt(cond, body, line)

    def _parse_for(self) -> ast.ForStmt:
        line = self.expect_kw("for").line
        self.expect_op("(")
        init: Optional[ast.Stmt] = None
        if not self.current.is_op(";"):
            if self.current.is_kw("var"):
                init = self._parse_var_decl()
            else:
                init = self._parse_simple_stmt(require_semi=True)
        else:
            self.expect_op(";")
        cond = self._parse_expr()
        self.expect_op(";")
        step: Optional[ast.Stmt] = None
        if not self.current.is_op(")"):
            step = self._parse_simple_stmt(require_semi=False)
        self.expect_op(")")
        body = self._parse_block()
        return ast.ForStmt(init, cond, step, body, line)

    def _parse_return(self) -> ast.ReturnStmt:
        line = self.expect_kw("return").line
        value: Optional[ast.Expr] = None
        if not self.current.is_op(";"):
            value = self._parse_expr()
        self.expect_op(";")
        return ast.ReturnStmt(value, line)

    def _parse_simple_stmt(self, require_semi: bool) -> ast.Stmt:
        """Assignment, array store or expression statement."""
        token = self.current
        stmt: ast.Stmt
        if token.kind is TokKind.IDENT:
            next_token = self.tokens[self.pos + 1]
            if next_token.is_op("="):
                name = self.advance().text
                self.advance()  # '='
                value = self._parse_expr()
                stmt = ast.Assign(name, value, token.line)
            elif next_token.is_op("["):
                saved = self.pos
                name = self.advance().text
                self.advance()  # '['
                index = self._parse_expr()
                self.expect_op("]")
                if self.accept_op("="):
                    value = self._parse_expr()
                    stmt = ast.StoreElem(name, index, value, token.line)
                else:
                    self.pos = saved
                    stmt = ast.ExprStmt(self._parse_expr(), token.line)
            else:
                stmt = ast.ExprStmt(self._parse_expr(), token.line)
        else:
            stmt = ast.ExprStmt(self._parse_expr(), token.line)
        if require_semi:
            self.expect_op(";")
        return stmt

    # -- Expressions ------------------------------------------------------------

    def _parse_expr(self, level: int = 0) -> ast.Expr:
        if level >= len(_PRECEDENCE):
            return self._parse_unary()
        left = self._parse_expr(level + 1)
        ops = _PRECEDENCE[level]
        while self.current.kind is TokKind.OP and self.current.text in ops:
            op_token = self.advance()
            right = self._parse_expr(level + 1)
            left = ast.BinaryExpr(op_token.text, left, right, op_token.line)
        return left

    def _parse_unary(self) -> ast.Expr:
        token = self.current
        if token.kind is TokKind.OP and token.text in ("-", "!", "~"):
            self.advance()
            operand = self._parse_unary()
            return ast.UnaryExpr(token.text, operand, token.line)
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind is TokKind.NUMBER:
            self.advance()
            return ast.NumberExpr(int(token.text), token.line)
        if token.kind is TokKind.IDENT:
            name = self.advance().text
            if self.accept_op("("):
                args: List[ast.Expr] = []
                if not self.current.is_op(")"):
                    while True:
                        args.append(self._parse_expr())
                        if not self.accept_op(","):
                            break
                self.expect_op(")")
                return ast.CallExpr(name, args, token.line)
            if self.accept_op("["):
                index = self._parse_expr()
                self.expect_op("]")
                return ast.IndexExpr(name, index, token.line)
            return ast.NameExpr(name, token.line)
        if self.accept_op("("):
            expr = self._parse_expr()
            self.expect_op(")")
            return expr
        raise self.error("expected expression")


def parse_source(source: str, module_name: str) -> ast.ModuleAST:
    """Parse MLL source text into an AST."""
    return Parser(source, module_name).parse_module()
