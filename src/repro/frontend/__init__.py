"""Frontends: MLL (C-like) and MFL (FORTRAN-like) onto the common IL."""

from ..ir.module import Module
from ..ir.program import Program
from .ast import ModuleAST
from .errors import FrontendError, SemanticError
from .lexer import TokKind, Token, tokenize
from .lower import lower_module
from .mfl import compile_mfl_source
from .parser import parse_source
from .sema import check_module


def compile_source(source: str, module_name: str,
                   language: str = "mll") -> Module:
    """Compile one source file into an IL module.

    ``language`` selects the frontend ("mll" or "mfl"); the IL is
    identical either way -- HLO never knows which frontend ran
    (paper section 3).
    """
    if language == "mll":
        return lower_module(parse_source(source, module_name))
    if language == "mfl":
        return compile_mfl_source(source, module_name)
    raise FrontendError("unknown source language %r" % language)


def detect_language(source: str) -> str:
    """Guess the frontend for a source text (FUNCTION => MFL)."""
    for line in source.splitlines():
        stripped = line.split("!", 1)[0].strip()
        if not stripped:
            continue
        upper = stripped.upper()
        if upper.startswith(("FUNCTION ", "PRIVATE FUNCTION ", "INTEGER ",
                             "PRIVATE INTEGER ")):
            return "mfl"
        return "mll"
    return "mll"


def compile_sources(sources: "dict[str, str]") -> Program:
    """Compile {module_name: source} into a linked Program.

    The language of each module is auto-detected, so mixed-language
    programs work out of the box.
    """
    return Program(
        compile_source(text, name, detect_language(text))
        for name, text in sources.items()
    )


__all__ = [
    "Module",
    "ModuleAST",
    "FrontendError",
    "SemanticError",
    "TokKind",
    "Token",
    "tokenize",
    "lower_module",
    "parse_source",
    "check_module",
    "compile_source",
    "compile_mfl_source",
    "compile_sources",
    "detect_language",
]
