"""Frontend errors."""


class FrontendError(Exception):
    """Base for lexical, syntactic and semantic frontend errors."""


class SemanticError(FrontendError):
    """Semantic-check failure (undeclared name, arity mismatch...)."""
