"""Lowering: MLL AST -> IL module.

Locals map to dedicated virtual registers (non-SSA: assignment rewrites
the register).  Short-circuit ``&&``/``||`` lower to control flow.
Module-static symbols are qualified as ``module::name`` so the IL's flat
namespace stays scope-free.
"""

from __future__ import annotations

from typing import Dict, List

from ..ir.builder import IRBuilder
from ..ir.instructions import Instr, Opcode
from ..ir.module import Module
from ..ir.routine import Routine
from . import ast
from .errors import SemanticError
from .sema import ModuleInfo, check_module

_BINOP_BY_TEXT = {
    "+": Opcode.ADD,
    "-": Opcode.SUB,
    "*": Opcode.MUL,
    "/": Opcode.DIV,
    "%": Opcode.MOD,
    "&": Opcode.AND,
    "|": Opcode.OR,
    "^": Opcode.XOR,
    "<<": Opcode.SHL,
    ">>": Opcode.SHR,
    "==": Opcode.EQ,
    "!=": Opcode.NE,
    "<": Opcode.LT,
    "<=": Opcode.LE,
    ">": Opcode.GT,
    ">=": Opcode.GE,
}


class _FuncLowering:
    """Lowers one function body."""

    def __init__(self, func: ast.FuncDecl, info: ModuleInfo, module_name: str) -> None:
        self.func = func
        self.info = info
        self.module_name = module_name
        name = func.name if func.exported else "%s::%s" % (module_name, func.name)
        self.routine = Routine(
            name,
            module_name=module_name,
            n_params=len(func.params),
            exported=func.exported,
            source_lines=func.source_lines,
        )
        self.builder = IRBuilder(self.routine)
        self.local_regs: Dict[str, int] = {
            param: index for index, param in enumerate(func.params)
        }

    # -- Symbol helpers -------------------------------------------------------

    def global_symbol(self, name: str) -> str:
        decl = self.info.global_decls.get(name)
        if decl is not None and not decl.exported:
            return "%s::%s" % (self.module_name, name)
        return name

    def callee_symbol(self, name: str) -> str:
        func = self.info.func_decls.get(name)
        if func is not None and not func.exported:
            return "%s::%s" % (self.module_name, name)
        return name

    # -- Expressions -------------------------------------------------------------

    def lower_expr(self, expr: ast.Expr) -> int:
        builder = self.builder
        if isinstance(expr, ast.NumberExpr):
            return builder.const(expr.value)
        if isinstance(expr, ast.NameExpr):
            reg = self.local_regs.get(expr.name)
            if reg is not None:
                return reg
            return builder.load_global(self.global_symbol(expr.name))
        if isinstance(expr, ast.IndexExpr):
            index = self.lower_expr(expr.index)
            return builder.load_elem(self.global_symbol(expr.name), index)
        if isinstance(expr, ast.UnaryExpr):
            operand = self.lower_expr(expr.operand)
            if expr.op == "-":
                return builder.unop(Opcode.NEG, operand)
            if expr.op == "~":
                return builder.unop(Opcode.NOT, operand)
            if expr.op == "!":
                zero = builder.const(0)
                return builder.binop(Opcode.EQ, operand, zero)
            raise SemanticError("unknown unary operator %r" % expr.op)
        if isinstance(expr, ast.BinaryExpr):
            if expr.op in ("&&", "||"):
                return self._lower_short_circuit(expr)
            opcode = _BINOP_BY_TEXT.get(expr.op)
            if opcode is None:
                raise SemanticError("unknown binary operator %r" % expr.op)
            left = self.lower_expr(expr.left)
            right = self.lower_expr(expr.right)
            return builder.binop(opcode, left, right)
        if isinstance(expr, ast.CallExpr):
            args = [self.lower_expr(arg) for arg in expr.args]
            result = builder.call(self.callee_symbol(expr.callee), args)
            assert result is not None
            return result
        raise SemanticError("unknown expression node %r" % type(expr).__name__)

    def _lower_short_circuit(self, expr: ast.BinaryExpr) -> int:
        """Lower ``a && b`` / ``a || b`` to control flow yielding 0/1."""
        builder = self.builder
        result = self.routine.new_reg()
        rhs_block = builder.new_block("sc_rhs")
        short_block = builder.new_block("sc_short")
        join_block = builder.new_block("sc_join")

        left = self.lower_expr(expr.left)
        if expr.op == "&&":
            builder.br(left, rhs_block, short_block)
            short_value = 0
        else:  # "||"
            builder.br(left, short_block, rhs_block)
            short_value = 1

        builder.position_at(short_block)
        builder.emit_const_into(result, short_value)
        builder.jmp(join_block)

        builder.position_at(rhs_block)
        right = self.lower_expr(expr.right)
        zero = builder.const(0)
        normalized = builder.binop(Opcode.NE, right, zero)
        builder.mov(normalized, dst=result)
        builder.jmp(join_block)

        builder.position_at(join_block)
        return result

    # -- Statements -----------------------------------------------------------------

    def lower_stmts(self, stmts: List[ast.Stmt]) -> None:
        for stmt in stmts:
            if self.builder.is_terminated():
                return  # unreachable code after return
            self.lower_stmt(stmt)

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        builder = self.builder
        if isinstance(stmt, ast.VarDecl):
            value = self.lower_expr(stmt.init)
            reg = self.routine.new_reg()
            builder.mov(value, dst=reg)
            self.local_regs[stmt.name] = reg
        elif isinstance(stmt, ast.Assign):
            value = self.lower_expr(stmt.value)
            reg = self.local_regs.get(stmt.name)
            if reg is not None:
                builder.mov(value, dst=reg)
            else:
                builder.store_global(self.global_symbol(stmt.name), value)
        elif isinstance(stmt, ast.StoreElem):
            index = self.lower_expr(stmt.index)
            value = self.lower_expr(stmt.value)
            builder.store_elem(self.global_symbol(stmt.name), index, value)
        elif isinstance(stmt, ast.ExprStmt):
            self.lower_expr(stmt.expr)
        elif isinstance(stmt, ast.IfStmt):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.ForStmt):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.ReturnStmt):
            value = self.lower_expr(stmt.value) if stmt.value is not None else None
            builder.ret(value)
        else:
            raise SemanticError("unknown statement node %r" % type(stmt).__name__)

    def _lower_if(self, stmt: ast.IfStmt) -> None:
        builder = self.builder
        then_block = builder.new_block("then")
        join_block = builder.new_block("join")
        else_block = builder.new_block("else") if stmt.else_body else join_block

        cond = self.lower_expr(stmt.cond)
        builder.br(cond, then_block, else_block)

        builder.position_at(then_block)
        self.lower_stmts(stmt.then_body)
        if not builder.is_terminated():
            builder.jmp(join_block)

        if stmt.else_body:
            builder.position_at(else_block)
            self.lower_stmts(stmt.else_body)
            if not builder.is_terminated():
                builder.jmp(join_block)

        builder.position_at(join_block)

    def _lower_while(self, stmt: ast.WhileStmt) -> None:
        builder = self.builder
        head = builder.new_block("loop_head")
        body = builder.new_block("loop_body")
        exit_block = builder.new_block("loop_exit")

        builder.jmp(head)
        builder.position_at(head)
        cond = self.lower_expr(stmt.cond)
        builder.br(cond, body, exit_block)

        builder.position_at(body)
        self.lower_stmts(stmt.body)
        if not builder.is_terminated():
            builder.jmp(head)

        builder.position_at(exit_block)

    def _lower_for(self, stmt: ast.ForStmt) -> None:
        builder = self.builder
        if stmt.init is not None:
            self.lower_stmt(stmt.init)
        head = builder.new_block("for_head")
        body = builder.new_block("for_body")
        exit_block = builder.new_block("for_exit")

        builder.jmp(head)
        builder.position_at(head)
        cond = self.lower_expr(stmt.cond)
        builder.br(cond, body, exit_block)

        builder.position_at(body)
        self.lower_stmts(stmt.body)
        if not builder.is_terminated():
            if stmt.step is not None:
                self.lower_stmt(stmt.step)
            builder.jmp(head)

        builder.position_at(exit_block)

    def finish(self) -> Routine:
        if not self.builder.is_terminated():
            zero = self.builder.const(0)
            self.builder.ret(zero)
        for block in self.routine.blocks:
            if not block.is_terminated():
                # Unreachable join blocks created by if/loop lowering when
                # every path returned; give them a trivial return.
                zero_reg = self.routine.new_reg()
                block.append(Instr(Opcode.CONST, dst=zero_reg, imm=0))
                block.set_terminator(Instr(Opcode.RET, a=zero_reg))
        self.routine.invalidate()
        return self.routine


def lower_module(module_ast: ast.ModuleAST) -> Module:
    """Lower a checked AST into an IL module."""
    info = check_module(module_ast)
    module = Module(module_ast.name, source_lines=module_ast.total_lines)
    for decl in module_ast.globals:
        name = decl.name if decl.exported else "%s::%s" % (module_ast.name, decl.name)
        module.define_global(
            name, size=decl.size, init=decl.init, exported=decl.exported
        )
    for func in module_ast.funcs:
        lowering = _FuncLowering(func, info, module_ast.name)
        lowering.lower_stmts(func.body)
        module.add_routine(lowering.finish())
    for extern in module.external_callees():
        module.symtab.record_extern(extern)
    return module
