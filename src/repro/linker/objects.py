"""Object files (paper §3, §6.1).

Two kinds exist, exactly as in the HP-UX scheme:

* **code objects** -- machine routines, produced by +O0/+O1/+O2
  compiles; the linker only relocates them;
* **IL ("fat") objects** -- the frontend "dumps the IL directly to
  object files"; at +O4 the linker routes these to HLO.

Keeping all persistent information in object files (rather than a
compiler database) is what makes the framework compatible with make
(§6.1): the build system sees ordinary source -> object dependencies,
and program-wide information is rebuilt at link/optimization time.

Object files serialize to a self-contained binary form (own string
table; no global PIDs -- a private symbol table scopes the encoding).
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Set

from ..ir.module import Module
from ..ir.routine import Routine
from ..ir.symbols import GlobalVar, ProgramSymbolTable
from ..naim.compaction import (
    Reader,
    Writer,
    compact_routine,
    uncompact_routine,
)
from ..vm.image import Executable, MachineRoutine, RoutineMeta
from ..vm.isa import MInstr, MOp

_OBJ_VERSION = 1
_MOP_LIST = list(MOp)
_MOP_INDEX = {op: i for i, op in enumerate(_MOP_LIST)}

# Reuse the IL wire numbering for ALU sub-opcodes.
from ..naim.compaction import OPCODE_WIRE_INDEX, OPCODE_WIRE_LIST

KIND_CODE = "code"
KIND_IL = "il"


class LinkError(Exception):
    """Raised on unresolved symbols, duplicates or format errors."""


class ObjectFile:
    """One compiled module, either machine code or fat IL."""

    def __init__(
        self,
        module_name: str,
        kind: str,
        machine_routines: Optional[List[MachineRoutine]] = None,
        il_module: Optional[Module] = None,
        globals_list: Optional[List[GlobalVar]] = None,
        referenced_routines: Optional[List[str]] = None,
        referenced_globals: Optional[List[str]] = None,
        source_fingerprint: str = "",
        source_lines: int = 0,
        opt_summary: str = "",
    ) -> None:
        if kind not in (KIND_CODE, KIND_IL):
            raise LinkError("bad object kind %r" % kind)
        self.module_name = module_name
        self.kind = kind
        self.machine_routines = machine_routines or []
        self.il_module = il_module
        #: Globals this module defines (code objects carry them here;
        #: IL objects carry them inside il_module's symtab).
        self.globals_list = globals_list or []
        self.referenced_routines = referenced_routines or []
        self.referenced_globals = referenced_globals or []
        #: Content hash of the source (drives incremental rebuilds).
        self.source_fingerprint = source_fingerprint
        self.source_lines = source_lines
        #: Human-readable note of how this object was compiled.
        self.opt_summary = opt_summary

    # -- Symbol queries -----------------------------------------------------------

    def defined_routines(self) -> List[str]:
        if self.kind == KIND_IL:
            assert self.il_module is not None
            return list(self.il_module.routines)
        return [routine.name for routine in self.machine_routines]

    def defined_globals(self) -> List[GlobalVar]:
        if self.kind == KIND_IL:
            assert self.il_module is not None
            return list(self.il_module.symtab.globals.values())
        return list(self.globals_list)

    def external_references(self) -> Set[str]:
        return set(self.referenced_routines) | set(self.referenced_globals)

    # -- Construction helpers --------------------------------------------------------

    @staticmethod
    def fingerprint(text: str) -> str:
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]

    @staticmethod
    def from_il_module(
        module: Module, source_fingerprint: str = ""
    ) -> "ObjectFile":
        referenced_routines = module.external_callees()
        defined_globals = set(module.symtab.globals)
        referenced_globals: List[str] = []
        for routine in module.routine_list():
            for sym in routine.referenced_globals():
                if sym not in defined_globals and sym not in referenced_globals:
                    referenced_globals.append(sym)
        return ObjectFile(
            module.name,
            KIND_IL,
            il_module=module,
            referenced_routines=referenced_routines,
            referenced_globals=referenced_globals,
            source_fingerprint=source_fingerprint,
            source_lines=module.source_lines,
            opt_summary="il",
        )

    @staticmethod
    def from_machine_routines(
        module: Module,
        machine_routines: List[MachineRoutine],
        source_fingerprint: str = "",
        opt_summary: str = "",
    ) -> "ObjectFile":
        defined = {routine.name for routine in machine_routines}
        defined_globals = set(module.symtab.globals)
        referenced_routines: List[str] = []
        referenced_globals: List[str] = []
        for machine in machine_routines:
            for instr in machine.instrs:
                if instr.op is MOp.CALL and instr.sym is not None:
                    if instr.sym not in defined and (
                        instr.sym not in referenced_routines
                    ):
                        referenced_routines.append(instr.sym)
                elif instr.sym is not None:
                    if instr.sym not in defined_globals and (
                        instr.sym not in referenced_globals
                    ):
                        referenced_globals.append(instr.sym)
        return ObjectFile(
            module.name,
            KIND_CODE,
            machine_routines=machine_routines,
            globals_list=list(module.symtab.globals.values()),
            referenced_routines=referenced_routines,
            referenced_globals=referenced_globals,
            source_fingerprint=source_fingerprint,
            source_lines=module.source_lines,
            opt_summary=opt_summary,
        )

    # -- Serialization -----------------------------------------------------------------

    def to_bytes(self) -> bytes:
        writer = Writer()
        writer.u(_OBJ_VERSION)
        writer.string_ref(self.module_name)
        writer.u(0 if self.kind == KIND_CODE else 1)
        writer.string_ref(self.source_fingerprint)
        writer.u(self.source_lines)
        writer.string_ref(self.opt_summary)

        writer.u(len(self.referenced_routines))
        for name in self.referenced_routines:
            writer.string_ref(name)
        writer.u(len(self.referenced_globals))
        for name in self.referenced_globals:
            writer.string_ref(name)

        global_vars = self.defined_globals()
        writer.u(len(global_vars))
        for var in global_vars:
            writer.string_ref(var.name)
            writer.u(var.size)
            writer.u(1 if var.exported else 0)
            significant = len(var.init)
            while significant and var.init[significant - 1] == 0:
                significant -= 1
            writer.u(significant)
            for value in var.init[:significant]:
                writer.s(value)

        if self.kind == KIND_IL:
            assert self.il_module is not None
            # A private symbol table scopes PIDs to this object.
            local = ProgramSymbolTable()
            routines = self.il_module.routine_list()
            encoded = [compact_routine(r, local) for r in routines]
            writer.u(len(local._name_by_pid))
            for name in local._name_by_pid:
                writer.string_ref(name)
            writer.u(len(encoded))
            for blob in encoded:
                writer.u(len(blob))
                writer.buf.extend(blob)
        else:
            writer.u(len(self.machine_routines))
            for machine in self.machine_routines:
                _encode_machine_routine(writer, machine)
        return writer.finish()

    @staticmethod
    def from_bytes(data: bytes) -> "ObjectFile":
        reader = Reader(data)
        version = reader.u()
        if version != _OBJ_VERSION:
            raise LinkError("unsupported object version %d" % version)
        module_name = reader.string_ref()
        kind = KIND_CODE if reader.u() == 0 else KIND_IL
        fingerprint = reader.string_ref()
        source_lines = reader.u()
        opt_summary = reader.string_ref()

        referenced_routines = [reader.string_ref() for _ in range(reader.u())]
        referenced_globals = [reader.string_ref() for _ in range(reader.u())]

        global_vars: List[GlobalVar] = []
        for _ in range(reader.u()):
            name = reader.string_ref()
            size = reader.u()
            exported = bool(reader.u())
            significant = reader.u()
            init = [reader.s() for _ in range(significant)]
            init.extend([0] * (size - significant))
            global_vars.append(
                GlobalVar(name, size=size, init=init,
                          defining_module=module_name, exported=exported)
            )

        if kind == KIND_IL:
            local = ProgramSymbolTable()
            for _ in range(reader.u()):
                local.pid_of(reader.string_ref())
            module = Module(module_name, source_lines=source_lines)
            for var in global_vars:
                module.symtab.define_global(var)
            for _ in range(reader.u()):
                length = reader.u()
                blob = reader.data[reader.pos : reader.pos + length]
                reader.pos += length
                module.add_routine(uncompact_routine(bytes(blob), local))
            return ObjectFile(
                module_name,
                KIND_IL,
                il_module=module,
                referenced_routines=referenced_routines,
                referenced_globals=referenced_globals,
                source_fingerprint=fingerprint,
                source_lines=source_lines,
                opt_summary=opt_summary,
            )

        machine_routines = [
            _decode_machine_routine(reader) for _ in range(reader.u())
        ]
        return ObjectFile(
            module_name,
            KIND_CODE,
            machine_routines=machine_routines,
            globals_list=global_vars,
            referenced_routines=referenced_routines,
            referenced_globals=referenced_globals,
            source_fingerprint=fingerprint,
            source_lines=source_lines,
            opt_summary=opt_summary,
        )

    def __repr__(self) -> str:
        return "<ObjectFile %s (%s, %d routines)>" % (
            self.module_name,
            self.kind,
            len(self.defined_routines()),
        )


def _encode_machine_routine(writer: Writer, machine: MachineRoutine) -> None:
    writer.string_ref(machine.name)
    writer.string_ref(machine.source_module)
    writer.u(machine.n_params)
    writer.u(machine.frame_size)
    writer.u(len(machine.instrs))
    for instr in machine.instrs:
        writer.u(_MOP_INDEX[instr.op])
        writer.u(0 if instr.subop is None else OPCODE_WIRE_INDEX[instr.subop] + 1)
        writer.opt_reg(instr.rd)
        writer.opt_reg(instr.rs1)
        writer.opt_reg(instr.rs2)
        if instr.imm is None:
            writer.u(0)
        else:
            writer.u(1)
            writer.s(instr.imm)
        writer.u(0 if instr.imm2 is None else instr.imm2 + 1)
        if instr.sym is None:
            writer.u(0)
        else:
            writer.u(1)
            writer.string_ref(instr.sym)


def encode_machine_routines(machines: List[MachineRoutine]) -> bytes:
    """Standalone blob of codegen output (incremental-CMO cache entry).

    Unlike a full :class:`ObjectFile` this carries no symbol or module
    metadata -- the incremental state stores one blob per CMO module,
    keyed by the module's reuse fingerprint, and the relinker splices
    the decoded routines back in unit order.
    """
    writer = Writer()
    writer.u(_OBJ_VERSION)
    writer.u(len(machines))
    for machine in machines:
        _encode_machine_routine(writer, machine)
    return writer.finish()


def decode_machine_routines(data: bytes) -> List[MachineRoutine]:
    """Inverse of :func:`encode_machine_routines`."""
    reader = Reader(data)
    version = reader.u()
    if version != _OBJ_VERSION:
        raise LinkError("unsupported machine-blob version %d" % version)
    return [_decode_machine_routine(reader) for _ in range(reader.u())]


def encode_executable(executable) -> bytes:
    """Canonical byte encoding of a linked :class:`Executable`.

    Covers everything observable about the image -- code, data segment,
    entry point, routine/data address maps, layout order -- so two
    images are behaviourally identical iff their encodings are equal.
    This is the witness for the scheduler's determinism guarantee
    (parallel and serial builds must produce byte-identical images).
    """
    writer = Writer()
    writer.u(len(executable.code))
    for instr in executable.code:
        _encode_minstr(writer, instr)
    writer.u(len(executable.data_init))
    for value in executable.data_init:
        writer.s(value)
    writer.u(executable.entry_addr)
    writer.u(len(executable.routine_meta))
    for name in sorted(executable.routine_meta):
        meta = executable.routine_meta[name]
        writer.string_ref(name)
        writer.u(meta.n_params)
        writer.u(meta.frame_size)
        writer.u(meta.addr)
        writer.u(meta.size)
    writer.u(len(executable.data_addr))
    for name in sorted(executable.data_addr):
        writer.string_ref(name)
        writer.u(executable.data_addr[name])
        writer.u(executable.data_size.get(name, 0))
    writer.u(len(executable.layout_order))
    for name in executable.layout_order:
        writer.string_ref(name)
    return writer.finish()


def decode_executable(data: bytes) -> Executable:
    """Inverse of :func:`encode_executable`.

    The build daemon ships linked images to its clients as encoded
    bytes; decoding reconstructs everything the VM needs to run them
    (probe bookkeeping is not carried -- instrumented builds stay
    in-process).
    """
    reader = Reader(data)
    executable = Executable()
    executable.code = [_decode_minstr(reader) for _ in range(reader.u())]
    executable.data_init = [reader.s() for _ in range(reader.u())]
    executable.entry_addr = reader.u()
    for _ in range(reader.u()):
        name = reader.string_ref()
        meta = RoutineMeta(
            name, reader.u(), reader.u(), reader.u(), reader.u()
        )
        executable.routine_meta[name] = meta
        executable.meta_by_addr[meta.addr] = meta
    for _ in range(reader.u()):
        name = reader.string_ref()
        executable.data_addr[name] = reader.u()
        executable.data_size[name] = reader.u()
    executable.layout_order = [
        reader.string_ref() for _ in range(reader.u())
    ]
    return executable


def _encode_minstr(writer: Writer, instr: MInstr) -> None:
    writer.u(_MOP_INDEX[instr.op])
    writer.u(0 if instr.subop is None else OPCODE_WIRE_INDEX[instr.subop] + 1)
    writer.opt_reg(instr.rd)
    writer.opt_reg(instr.rs1)
    writer.opt_reg(instr.rs2)
    if instr.imm is None:
        writer.u(0)
    else:
        writer.u(1)
        writer.s(instr.imm)
    writer.u(0 if instr.imm2 is None else instr.imm2 + 1)
    for symbolic in (instr.sym, instr.target):
        if symbolic is None:
            writer.u(0)
        else:
            writer.u(1)
            writer.string_ref(symbolic)


def _decode_minstr(reader: Reader) -> MInstr:
    op = _MOP_LIST[reader.u()]
    subop_raw = reader.u()
    subop = None if subop_raw == 0 else OPCODE_WIRE_LIST[subop_raw - 1]
    rd = reader.opt_reg()
    rs1 = reader.opt_reg()
    rs2 = reader.opt_reg()
    imm = reader.s() if reader.u() else None
    imm2_raw = reader.u()
    imm2 = None if imm2_raw == 0 else imm2_raw - 1
    sym = reader.string_ref() if reader.u() else None
    target = reader.string_ref() if reader.u() else None
    return MInstr(op, subop=subop, rd=rd, rs1=rs1, rs2=rs2, imm=imm,
                  imm2=imm2, sym=sym, target=target)


def _decode_machine_routine(reader: Reader) -> MachineRoutine:
    name = reader.string_ref()
    source_module = reader.string_ref()
    n_params = reader.u()
    frame_size = reader.u()
    count = reader.u()
    instrs: List[MInstr] = []
    for _ in range(count):
        op = _MOP_LIST[reader.u()]
        subop_raw = reader.u()
        subop = None if subop_raw == 0 else OPCODE_WIRE_LIST[subop_raw - 1]
        rd = reader.opt_reg()
        rs1 = reader.opt_reg()
        rs2 = reader.opt_reg()
        imm = reader.s() if reader.u() else None
        imm2_raw = reader.u()
        imm2 = None if imm2_raw == 0 else imm2_raw - 1
        sym = reader.string_ref() if reader.u() else None
        instrs.append(
            MInstr(op, subop=subop, rd=rd, rs1=rs1, rs2=rs2, imm=imm,
                   imm2=imm2, sym=sym)
        )
    return MachineRoutine(
        name, instrs, n_params=n_params, frame_size=frame_size,
        source_module=source_module
    )
