"""Profile-guided procedure clustering (Pettis-Hansen [13], paper §2).

"The linker also uses profile data to cluster frequently-used routines
together in the final program image": routines that call each other
often are placed adjacently, so the I-cache's direct-mapped lines hold
both caller and callee during hot call sequences.

Algorithm: build an undirected weighted graph over routines (edge
weight = total dynamic calls either way); repeatedly take the heaviest
edge and merge the two chains containing its endpoints, trying the four
end-to-end orientations and keeping the one that puts the endpoints
closest together.  Final order: the entry routine's chain first, then
chains by descending weight.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


def cluster_routines(
    routine_names: List[str],
    call_weights: Dict[Tuple[str, str], int],
    entry: Optional[str] = None,
) -> List[str]:
    """Order routines for the image; deterministic for equal weights.

    ``call_weights`` maps (caller, callee) -> dynamic call count (zero
    or missing edges are ignored).
    """
    names = list(routine_names)
    name_set = set(names)

    # Undirected accumulated weights.
    undirected: Dict[Tuple[str, str], int] = {}
    for (caller, callee), weight in call_weights.items():
        if weight <= 0 or caller not in name_set or callee not in name_set:
            continue
        if caller == callee:
            continue
        key = (caller, callee) if caller < callee else (callee, caller)
        undirected[key] = undirected.get(key, 0) + weight

    chain_of: Dict[str, int] = {name: i for i, name in enumerate(names)}
    chains: Dict[int, List[str]] = {i: [name] for i, name in enumerate(names)}
    chain_weight: Dict[int, int] = {i: 0 for i in chains}

    edges = sorted(
        undirected.items(), key=lambda item: (-item[1], item[0])
    )
    for (a, b), weight in edges:
        chain_a = chain_of[a]
        chain_b = chain_of[b]
        if chain_a == chain_b:
            continue
        left = chains[chain_a]
        right = chains[chain_b]
        # Choose the orientation that brings a and b closest: the merge
        # always concatenates left + right, so flip each side so that a
        # ends `left` and b starts `right`.
        if left[0] == a and len(left) > 1:
            left = list(reversed(left))
        if right[-1] == b and len(right) > 1:
            right = list(reversed(right))
        merged = left + right
        chains[chain_a] = merged
        chain_weight[chain_a] += chain_weight[chain_b] + weight
        for name in right:
            chain_of[name] = chain_a
        del chains[chain_b]
        del chain_weight[chain_b]

    ordered_chain_ids = sorted(
        chains,
        key=lambda cid: (-chain_weight[cid], chains[cid][0]),
    )
    if entry is not None and entry in chain_of:
        entry_chain = chain_of[entry]
        ordered_chain_ids.remove(entry_chain)
        ordered_chain_ids.insert(0, entry_chain)

    result: List[str] = []
    for cid in ordered_chain_ids:
        result.extend(chains[cid])
    return result
