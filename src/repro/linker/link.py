"""Final link: symbol resolution, layout, relocation, image assembly."""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.program import ENTRY_NAME, Program
from ..ir.symbols import GlobalVar
from ..profiles.probes import ProbeTable
from ..vm.image import Executable, MachineRoutine, ProbeInfo, RoutineMeta
from ..vm.isa import MInstr, MOp
from .objects import LinkError


def check_duplicate_symbols(
    machine_routines: List[MachineRoutine],
    global_vars: List[GlobalVar],
) -> None:
    """Reject multiply-defined routines or globals (LinkError)."""
    seen_routines: Dict[str, str] = {}
    for routine in machine_routines:
        prior = seen_routines.get(routine.name)
        if prior is not None:
            raise LinkError(
                "duplicate routine %s (modules %s and %s)"
                % (routine.name, prior, routine.source_module)
            )
        seen_routines[routine.name] = routine.source_module
    seen_globals: Dict[str, str] = {}
    for var in global_vars:
        prior = seen_globals.get(var.name)
        if prior is not None:
            raise LinkError(
                "duplicate global %s (modules %s and %s)"
                % (var.name, prior, var.defining_module)
            )
        seen_globals[var.name] = var.defining_module


def check_interfaces(program: Program) -> List[str]:
    """The link-time interface checker the paper advocates (§6.3).

    Compares every IL call site's argument count against the callee's
    declared parameter count.  Returns human-readable mismatch
    descriptions (empty = clean).
    """
    problems: List[str] = []
    table = program.symtab
    for module in program.module_list():
        for routine in module.routine_list():
            for block in routine.blocks:
                for _, instr in block.calls():
                    callee_name = instr.sym
                    if not table.has_routine(callee_name):
                        continue  # unresolved symbols reported elsewhere
                    callee = program.routine(callee_name)
                    if len(instr.args) != callee.n_params:
                        problems.append(
                            "%s calls %s with %d args (expects %d)"
                            % (
                                routine.name,
                                callee_name,
                                len(instr.args),
                                callee.n_params,
                            )
                        )
    return problems


def build_image(
    machine_routines: List[MachineRoutine],
    global_vars: List[GlobalVar],
    entry: str = ENTRY_NAME,
    layout_order: Optional[List[str]] = None,
    probe_table: Optional[ProbeTable] = None,
) -> Executable:
    """Assemble the final executable image.

    ``layout_order`` (from :mod:`repro.linker.clustering`) controls the
    code-address assignment; routines not mentioned go after the
    ordered ones, in input order.
    """
    check_duplicate_symbols(machine_routines, global_vars)
    by_name = {routine.name: routine for routine in machine_routines}
    if entry not in by_name:
        raise LinkError("undefined entry routine %r" % entry)

    image = Executable()

    # -- Data segment ---------------------------------------------------------
    address = 0
    for var in global_vars:
        image.data_addr[var.name] = address
        image.data_size[var.name] = var.size
        image.data_init.extend(var.init)
        address += var.size

    # -- Code order ---------------------------------------------------------------
    order: List[str] = []
    seen = set()
    if layout_order:
        for name in layout_order:
            if name in by_name and name not in seen:
                order.append(name)
                seen.add(name)
    for routine in machine_routines:
        if routine.name not in seen:
            order.append(routine.name)
            seen.add(routine.name)

    # -- Startup stub: call entry, halt. -----------------------------------------------
    stub = [MInstr(MOp.CALL, sym=entry), MInstr(MOp.HALT)]
    image.entry_addr = 0
    code: List[MInstr] = list(stub)

    base_of: Dict[str, int] = {}
    for name in order:
        base_of[name] = len(code)
        routine = by_name[name]
        meta = RoutineMeta(
            name,
            routine.n_params,
            routine.frame_size,
            base_of[name],
            len(routine.instrs),
        )
        image.routine_meta[name] = meta
        image.meta_by_addr[meta.addr] = meta
        code.extend(instr.copy() for instr in routine.instrs)
    image.layout_order = list(order)

    # -- Relocation -------------------------------------------------------------------
    for name in order:
        base = base_of[name]
        size = image.routine_meta[name].size
        for offset in range(base, base + size):
            _relocate(code[offset], base, base_of, image, name, offset)
    # Relocate the startup stub's call.
    _relocate(code[0], 0, base_of, image, "<stub>", 0)

    image.code = code

    # -- Probes -----------------------------------------------------------------------
    if probe_table is not None:
        image.probes = [
            ProbeInfo(p.probe_id, p.routine, p.kind, p.key)
            for p in probe_table.probes
        ]
    return image


def _relocate(
    instr: MInstr,
    base: int,
    base_of: Dict[str, int],
    image: Executable,
    routine_name: str,
    offset: int,
) -> None:
    op = instr.op
    if op in (MOp.BT, MOp.BF, MOp.J):
        if instr.imm is None:
            raise LinkError(
                "unresolved branch in %s at %d" % (routine_name, offset)
            )
        instr.imm += base
    elif op is MOp.CALL:
        if instr.sym is None:
            raise LinkError("call without symbol in %s" % routine_name)
        target = base_of.get(instr.sym)
        if target is None:
            raise LinkError(
                "unresolved routine %s referenced by %s"
                % (instr.sym, routine_name)
            )
        instr.imm = target
        instr.sym = None
    elif op in (MOp.LDG, MOp.STG, MOp.LDX, MOp.STX):
        if instr.sym is None:
            raise LinkError("memory op without symbol in %s" % routine_name)
        addr = image.data_addr.get(instr.sym)
        if addr is None:
            raise LinkError(
                "unresolved global %s referenced by %s"
                % (instr.sym, routine_name)
            )
        if op in (MOp.LDX, MOp.STX):
            instr.imm2 = image.data_size[instr.sym]
        instr.imm = addr
        instr.sym = None
