"""Linker: object files, clustering, relocation, image assembly."""

from .clustering import cluster_routines
from .link import build_image, check_duplicate_symbols, check_interfaces
from .objects import KIND_CODE, KIND_IL, LinkError, ObjectFile

__all__ = [
    "cluster_routines",
    "build_image",
    "check_duplicate_symbols",
    "check_interfaces",
    "KIND_CODE",
    "KIND_IL",
    "LinkError",
    "ObjectFile",
]
