"""Feed state and the profile service (daemon-side bookkeeping).

A *feed* is one application's profile stream: its live decayed
database, its selectivity controller, its dedup ledger, and — once the
daemon has built the project at least once — a registration describing
how to rebuild it.  The :class:`ProfileService` owns all feeds for one
warm state (daemon or farm coordinator) and stays transport-agnostic:
it merges batches, runs the controller, and reports counters, while the
daemon decides when to actually trigger the rebuild.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Set

from ..profiles.database import DEFAULT_DECAY, ProfileDatabase
from .batch import IngestError, ProfileBatch, decode_batches
from .controller import ControllerDecision, SelectivityController


class RegisteredProject:
    """How to rebuild one feed's application inside the daemon."""

    __slots__ = ("sources", "session", "routine_module", "cmo_modules",
                 "deployed_percent", "options")

    def __init__(
        self,
        sources: Dict[str, str],
        session,
        routine_module: Dict[str, str],
        cmo_modules: Set[str],
        deployed_percent: Optional[float],
        options: Optional[Dict[str, object]] = None,
    ) -> None:
        self.sources = sources
        #: The warm CompileSession the project was last built on.
        self.session = session
        #: routine name -> owning module, from the last build's objects.
        self.routine_module = routine_module
        #: CMO module set of the deployed image.
        self.cmo_modules = cmo_modules
        #: Selectivity the deployed image was built with (None = no
        #: profile data yet: everything optimized, nothing to attribute
        #: telemetry to).
        self.deployed_percent = deployed_percent
        #: Wire options of the registering build (for status reporting).
        self.options = options or {}


class FeedState:
    """One application's live profile stream."""

    def __init__(
        self,
        name: str,
        decay: float = DEFAULT_DECAY,
        controller: Optional[SelectivityController] = None,
    ) -> None:
        self.name = name
        self.database = ProfileDatabase(decay=decay)
        self.controller = controller or SelectivityController()
        self.lock = threading.RLock()
        self.project: Optional[RegisteredProject] = None
        self.created_at = time.time()
        #: batch_ids already merged (content-addressed dedup).
        self.seen_batches: Set[str] = set()
        # Counters (surfaced through daemon status).
        self.batches = 0
        self.duplicates = 0
        self.samples = 0
        self.transactions = 0
        self.routines_merged = 0
        self.routines_created = 0
        self.routines_stale = 0
        self.routines_decayed = 0
        self.reoptimizations = 0
        self.last_decision: Optional[Dict[str, object]] = None

    # -- Ingestion ---------------------------------------------------------------

    def ingest(self, batches: List[ProfileBatch]) -> Dict[str, object]:
        """Merge a window of batches; returns per-call ingest stats.

        Batches are aged/merged strictly by their own epochs, so feeding
        the same set in any order converges to the same database;
        re-feeding an already-seen batch is counted and skipped.
        Telemetry is attributed to the threshold of the currently
        deployed image (when one exists) before any decision is made.
        """
        accepted = 0
        duplicates = 0
        stats = {"merged": 0, "created": 0, "stale": 0}
        with self.lock:
            for batch in batches:
                if batch.batch_id in self.seen_batches:
                    duplicates += 1
                    self.duplicates += 1
                    continue
                self.seen_batches.add(batch.batch_id)
                accepted += 1
                self.batches += 1
                self.samples += batch.samples
                self.transactions += batch.transactions
                self.routines_decayed += self.database.age_to(batch.epoch)
                for name in sorted(batch.routines):
                    outcome = self.database.merge_delta(
                        batch.routines[name], batch.epoch
                    )
                    stats[outcome] += 1
                project = self.project
                if project is not None and (
                    project.deployed_percent is not None
                ):
                    self.controller.observe(
                        project.deployed_percent,
                        batch.cycles,
                        batch.transactions,
                    )
            self.routines_merged += stats["merged"]
            self.routines_created += stats["created"]
            self.routines_stale += stats["stale"]
            return {
                "accepted": accepted,
                "duplicates": duplicates,
                "merged": stats["merged"],
                "created": stats["created"],
                "stale": stats["stale"],
                "epoch": self.database.epoch,
                "routines": len(self.database.routines),
            }

    # -- Builds ------------------------------------------------------------------

    def snapshot(self) -> Optional[ProfileDatabase]:
        """Build-ready snapshot, or None while the feed is still empty."""
        with self.lock:
            if not self.database.routines:
                return None
            return self.database.normalized_snapshot()

    def decide(self, snapshot: Optional[ProfileDatabase]) -> Optional[
            ControllerDecision]:
        """Run the controller against the registered project, if any."""
        with self.lock:
            project = self.project
            if project is None:
                return None
            decision = self.controller.decide(
                epoch=self.database.epoch,
                snapshot=snapshot,
                routine_module=project.routine_module,
                deployed_modules=project.cmo_modules,
                deployed_percent=project.deployed_percent,
            )
            self.last_decision = decision.as_dict()
            return decision

    def register(self, project: RegisteredProject) -> None:
        with self.lock:
            self.project = project

    def record_deploy(
        self,
        percent: Optional[float],
        cmo_modules: Set[str],
        reoptimized: bool,
    ) -> None:
        """Update the deployed-image picture after a (re)build."""
        with self.lock:
            if self.project is not None:
                self.project.deployed_percent = percent
                self.project.cmo_modules = cmo_modules
            if reoptimized:
                self.reoptimizations += 1

    # -- Observability -----------------------------------------------------------

    def status(self) -> Dict[str, object]:
        with self.lock:
            return {
                "batches": self.batches,
                "duplicates": self.duplicates,
                "samples": self.samples,
                "transactions": self.transactions,
                "epoch": self.database.epoch,
                "routines": len(self.database.routines),
                "routines_merged": self.routines_merged,
                "routines_created": self.routines_created,
                "routines_stale": self.routines_stale,
                "routines_decayed": self.routines_decayed,
                "reoptimizations": self.reoptimizations,
                "registered": self.project is not None,
                "deployed_percent": (
                    self.project.deployed_percent
                    if self.project is not None else None
                ),
                "controller": self.controller.status(),
                "last_decision": self.last_decision,
            }


class ProfileService:
    """All profile feeds of one warm state."""

    def __init__(self) -> None:
        self._feeds: Dict[str, FeedState] = {}
        self._lock = threading.Lock()

    def feed(
        self,
        name: str,
        decay: float = DEFAULT_DECAY,
        controller: Optional[SelectivityController] = None,
    ) -> FeedState:
        """Get or lazily create the named feed.

        Configuration arguments only apply on creation; an existing feed
        keeps its database and controller (warm state survives clients).
        """
        if not name or not isinstance(name, str):
            raise IngestError("profile feed name must be a non-empty string")
        with self._lock:
            state = self._feeds.get(name)
            if state is None:
                state = FeedState(name, decay=decay, controller=controller)
                self._feeds[name] = state
            return state

    def ingest_wire(self, name: str, payload: object) -> Dict[str, object]:
        """Decode and merge a wire batch list into the named feed."""
        batches = decode_batches(payload)
        return self.feed(name).ingest(batches)

    def status(self) -> Dict[str, object]:
        with self._lock:
            feeds = dict(self._feeds)
        return {
            "feeds": {name: state.status() for name, state in feeds.items()},
            "total_batches": sum(s.batches for s in feeds.values()),
            "total_samples": sum(s.samples for s in feeds.values()),
        }

    def __len__(self) -> int:
        return len(self._feeds)
