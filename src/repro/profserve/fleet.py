"""Fleet simulation: synthetic "users" running built executables.

A :class:`FleetSimulator` models a deployed population of one
application.  A small *sampled* slice of the fleet runs the
instrumented build (+I at +O2, the paper's training configuration) and
contributes probe-count deltas; the rest runs the deployed optimized
image and contributes only telemetry (transactions, cycles).  Each
sampling window advances an *epoch* — the timestamp the decay-merge in
:class:`~repro.profiles.ProfileDatabase` keys on.

Workload shapes:

* ``shift=0`` — the app's native Zipf feature skew (training-like);
* ``shift=k`` — the same skew rotated by ``k`` features, modeling a hot
  set that drifted away from what the deployed binary was tuned for;
* ``uniform=True`` — no skew at all (adversarial flat traffic).

Everything is deterministically seeded: the same simulator replays the
same fleet history, which is what lets the closed-loop bench make exact
assertions about convergence.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..driver.compiler import Compiler
from ..driver.options import CompilerOptions
from ..profiles.database import ProfileDatabase
from ..vm.machine import run_image
from .batch import ProfileBatch


class FleetSimulator:
    """Replay synthetic user traffic against built executables."""

    def __init__(self, app, opt_level: int = 2, seed: int = 0) -> None:
        self.app = app
        self.seed = seed
        #: Current ingest epoch; each :meth:`sample` window advances it.
        self.epoch = 0
        compiler = Compiler(
            CompilerOptions(opt_level=opt_level, instrument=True)
        )
        build = compiler.build(app.sources)
        assert build.executable is not None and build.probe_table is not None
        #: The instrumented build the sampled slice of the fleet runs.
        self.instrumented = build.executable
        self.probe_table = build.probe_table
        self._routine_module: Dict[str, str] = {}
        for name, text in app.sources.items():
            module = compiler.frontend(name, text)
            for routine_name in module.routines:
                self._routine_module[routine_name] = module.name

    # -- Workload shaping --------------------------------------------------------

    def weights(self, shift: int = 0) -> List[float]:
        """The app's Zipf feature weights rotated by ``shift`` features."""
        base = self.app.feature_weights
        n = len(base)
        if n == 0 or shift % n == 0:
            return list(base)
        return [base[(i - shift) % n] for i in range(n)]

    def user_input(
        self,
        user: int,
        shift: int = 0,
        uniform: bool = False,
        length: Optional[int] = None,
        epoch: Optional[int] = None,
    ) -> Dict[str, List[int]]:
        """One user session's program input, deterministically seeded."""
        if epoch is None:
            epoch = self.epoch
        rng = random.Random(
            self.seed * 1_000_003 + epoch * 8_191 + user * 131
            + shift * 7 + (1 if uniform else 0)
        )
        size = (
            length if length is not None else self.app.config.input_size
        )
        n_features = len(self.app.feature_roots)
        if uniform:
            values = [rng.randrange(n_features) for _ in range(size)]
        else:
            values = rng.choices(
                range(n_features), weights=self.weights(shift), k=size
            )
        return {"input_data": values}

    # -- Sampling windows --------------------------------------------------------

    def sample(
        self,
        deployed=None,
        users: int = 4,
        shift: int = 0,
        uniform: bool = False,
        length: Optional[int] = None,
        workload: Optional[str] = None,
        input_epoch: Optional[int] = None,
    ) -> ProfileBatch:
        """Run one sampling window and package it as a batch.

        ``users`` sessions run the instrumented image (profile deltas);
        the same sessions replay on ``deployed`` (the production
        optimized image) for cycle telemetry.  Without a deployed image
        the batch carries profile data only.

        ``input_epoch`` pins the traffic seed to a fixed epoch while
        the batch itself still advances the stream: a *stationary*
        workload whose sessions repeat window over window, which makes
        cycles-per-transaction exactly comparable across the window
        (the closed-loop bench's controller evaluations rely on this).
        """
        self.epoch += 1
        totals: List[int] = []
        transactions = 0
        cycles = 0
        instructions = 0
        for user in range(users):
            inputs = self.user_input(
                user, shift=shift, uniform=uniform, length=length,
                epoch=input_epoch,
            )
            transactions += len(inputs["input_data"])
            outcome = run_image(self.instrumented, inputs)
            counts = outcome.probe_counts
            if len(totals) < len(counts):
                totals.extend([0] * (len(counts) - len(totals)))
            for index, count in enumerate(counts):
                totals[index] += count
            if deployed is not None:
                served = run_image(deployed, inputs)
                cycles += served.cycles
                instructions += served.instructions
        delta = ProfileDatabase.from_probe_list(self.probe_table, totals)
        if workload is None:
            workload = (
                "uniform" if uniform
                else ("zipf" if shift == 0 else "shift:%d" % shift)
            )
        return ProfileBatch.from_database(
            self.epoch,
            delta,
            workload=workload,
            samples=users,
            transactions=transactions,
            cycles=cycles,
            instructions=instructions,
        )

    def serve(
        self,
        deployed,
        users: int = 4,
        shift: int = 0,
        uniform: bool = False,
        length: Optional[int] = None,
        epoch: Optional[int] = None,
    ) -> Dict[str, int]:
        """Telemetry-only replay (no instrumented sampling, no epoch).

        Used by benchmarks to measure a static image against the same
        deterministic traffic a :meth:`sample` window would generate.
        """
        transactions = 0
        cycles = 0
        instructions = 0
        for user in range(users):
            inputs = self.user_input(
                user, shift=shift, uniform=uniform, length=length,
                epoch=epoch,
            )
            transactions += len(inputs["input_data"])
            outcome = run_image(deployed, inputs)
            cycles += outcome.cycles
            instructions += outcome.instructions
        return {
            "transactions": transactions,
            "cycles": cycles,
            "instructions": instructions,
        }

    def routine_module(self) -> Dict[str, str]:
        """routine name -> owning module, from the parsed sources."""
        return dict(self._routine_module)

    def __repr__(self) -> str:
        return "<FleetSimulator %s epoch=%d>" % (
            self.app.config.name, self.epoch,
        )
