"""CLI for the continuous profile service.

``simulate`` generates synthetic fleet batches for a generated
application and writes them as a JSON list — the file format the
``profile-ingest`` daemon request (and ``python -m repro.serve
ingest``) consumes.  CI's profile-loop smoke job uses it to feed the
daemon reproducible traffic without a Python test harness.

``inspect`` summarizes a profile database file, surfacing the format
version and staleness picture (and demonstrating the structured
:class:`~repro.profiles.ProfileFormatError` on bad files).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from ..linker.objects import decode_executable
from ..profiles.database import ProfileDatabase, ProfileFormatError
from ..synth.config import full_suite, tiny_config
from ..synth.generator import generate
from .fleet import FleetSimulator


def _resolve_config(name: str, scale: float, seed: Optional[int]):
    if name == "tiny":
        return tiny_config() if seed is None else tiny_config(seed=seed)
    suite = full_suite()
    if name in suite:
        config = suite[name]
        if scale != 1.0:
            config = config.scaled(scale)
        return config
    raise SystemExit(
        "unknown config %r (try: tiny, %s)" % (name, ", ".join(sorted(suite)))
    )


def cmd_simulate(args: argparse.Namespace) -> int:
    config = _resolve_config(args.config, args.scale, args.seed)
    app = generate(config)
    if args.emit_sources:
        os.makedirs(args.emit_sources, exist_ok=True)
        for name, text in app.sources.items():
            path = os.path.join(args.emit_sources, "%s.mll" % name)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
        print("wrote %d source modules to %s"
              % (len(app.sources), args.emit_sources))
    fleet = FleetSimulator(app, seed=args.fleet_seed)
    fleet.epoch = args.epoch_start - 1
    deployed = None
    if args.deployed:
        with open(args.deployed, "rb") as handle:
            deployed = decode_executable(handle.read())
    batches: List[dict] = []
    for _ in range(args.epochs):
        batch = fleet.sample(
            deployed=deployed,
            users=args.users,
            shift=args.shift,
            uniform=args.uniform,
            length=args.length,
        )
        batches.append(batch.to_wire())
    text = json.dumps(batches, indent=1, sort_keys=True)
    if args.out == "-":
        print(text)
    else:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        total = sum(b["samples"] for b in batches)
        print(
            "wrote %d batches (epochs %d..%d, %d sampled sessions) to %s"
            % (len(batches), args.epoch_start, fleet.epoch, total, args.out)
        )
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    try:
        database = ProfileDatabase.load(args.database)
    except ProfileFormatError as exc:
        print(
            "profile-format error: %s (found version %r, expected %d)"
            % (exc, exc.found, exc.expected),
            file=sys.stderr,
        )
        return 1
    stale = database.stale_routines()
    print(
        "%s: %d routines, %d runs, epoch %d, decay %g, %d stale"
        % (args.database, len(database.routines), database.run_count,
           database.epoch, database.decay, len(stale))
    )
    for name, weight in database.hottest_routines(args.top):
        print("  %-30s %12g" % (name, weight))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.profserve",
        description="Fleet simulation and profile-database tooling.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser(
        "simulate", help="generate fleet profile batches as JSON"
    )
    simulate.add_argument("--config", default="tiny",
                          help="synthetic workload config (default: tiny)")
    simulate.add_argument("--scale", type=float, default=1.0)
    simulate.add_argument("--seed", type=int, default=None,
                          help="workload config seed override")
    simulate.add_argument("--fleet-seed", type=int, default=0)
    simulate.add_argument("--users", type=int, default=4,
                          help="sampled user sessions per epoch")
    simulate.add_argument("--epochs", type=int, default=1,
                          help="sampling windows to generate")
    simulate.add_argument("--epoch-start", type=int, default=1,
                          help="first ingest epoch (continue a stream)")
    simulate.add_argument("--shift", type=int, default=0,
                          help="rotate the Zipf hot set by N features")
    simulate.add_argument("--uniform", action="store_true",
                          help="flat (adversarial) traffic")
    simulate.add_argument("--length", type=int, default=None,
                          help="transactions per user session")
    simulate.add_argument("--deployed", default=None,
                          help="deployed image file for cycle telemetry")
    simulate.add_argument("--emit-sources", default=None,
                          help="also write the app's .mll sources here")
    simulate.add_argument("-o", "--out", default="-",
                          help="output file (default: stdout)")
    simulate.set_defaults(func=cmd_simulate)

    inspect = sub.add_parser(
        "inspect", help="summarize a profile database file"
    )
    inspect.add_argument("database")
    inspect.add_argument("--top", type=int, default=5)
    inspect.set_defaults(func=cmd_inspect)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
