"""Closed-loop selectivity control (the Fig. 6 sweet spot, online).

The paper's Figure 6 shows run time saturating once roughly 20% of the
program is compiled with CMO+PBO: optimizing more code buys nothing,
optimizing less gives up performance.  Offline, the user finds that
knee by sweeping ``--selectivity``.  The controller finds it *live*:

* every ingest window attributes the fleet's observed cycles-per-
  transaction to the selectivity the deployed binary was built with;
* a small hill-climb walks the candidate grid outward from the current
  setting — downward while cheaper thresholds stay within tolerance of
  the best observed cost, upward while more optimization keeps paying —
  and then settles on the *knee*: the smallest percentage whose cost is
  within tolerance of the best;
* when the live database's hot set drifts (modules cross the current
  threshold), the old measurements describe a workload that no longer
  exists, so they are discarded and the climb restarts.

Every decision also names exactly which modules crossed the threshold,
which is what lets the daemon re-optimize just those modules through
the PR-2 incremental machinery instead of rebuilding the world.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..driver.selectivity import cmo_module_set
from ..profiles.database import ProfileDatabase

#: Candidate thresholds, mirroring the offline Fig. 6 sweep.
DEFAULT_GRID = (2.0, 5.0, 10.0, 20.0, 40.0, 70.0, 100.0)


class ControllerDecision:
    """One controller verdict: what to build next, and why."""

    __slots__ = ("epoch", "percent", "previous_percent", "mode", "reason",
                 "reoptimize", "newly_hot", "newly_cold", "evaluations")

    def __init__(
        self,
        epoch: int,
        percent: float,
        previous_percent: Optional[float],
        mode: str,
        reason: str,
        reoptimize: bool,
        newly_hot: List[str],
        newly_cold: List[str],
        evaluations: Dict[float, float],
    ) -> None:
        self.epoch = epoch
        self.percent = percent
        self.previous_percent = previous_percent
        #: "warmup" | "explore" | "settled" | "steady".
        self.mode = mode
        self.reason = reason
        self.reoptimize = reoptimize
        self.newly_hot = newly_hot
        self.newly_cold = newly_cold
        #: percent -> observed cycles/transaction at decision time.
        self.evaluations = evaluations

    def as_dict(self) -> Dict[str, object]:
        return {
            "epoch": self.epoch,
            "percent": self.percent,
            "previous_percent": self.previous_percent,
            "mode": self.mode,
            "reason": self.reason,
            "reoptimize": self.reoptimize,
            "newly_hot": self.newly_hot,
            "newly_cold": self.newly_cold,
            "evaluations": {
                "%g" % percent: cost
                for percent, cost in sorted(self.evaluations.items())
            },
        }

    def __repr__(self) -> str:
        return "<ControllerDecision epoch=%d %s sel=%g%%%s>" % (
            self.epoch, self.mode, self.percent,
            " reopt" if self.reoptimize else "",
        )


class SelectivityController:
    """Hill-climb the selectivity grid toward the live Fig. 6 knee."""

    def __init__(
        self,
        grid: Tuple[float, ...] = DEFAULT_GRID,
        initial_percent: float = 20.0,
        tolerance: float = 0.03,
    ) -> None:
        if not grid:
            raise ValueError("selectivity grid must not be empty")
        self.grid: List[float] = sorted(set(float(p) for p in grid))
        for percent in self.grid:
            if not 0.0 <= percent <= 100.0:
                raise ValueError("grid percent out of range: %r" % percent)
        #: Relative cost slack treated as "the same performance".
        self.tolerance = tolerance
        self.current = self.snap(initial_percent)
        #: percent -> latest observed cycles per transaction.
        self.evaluations: Dict[float, float] = {}
        self.settled = False
        #: Counters surfaced through daemon status.
        self.observations = 0
        self.shifts_detected = 0

    # -- Observations ------------------------------------------------------------

    def snap(self, percent: float) -> float:
        """Nearest grid candidate (ties resolve to the cheaper one)."""
        return min(self.grid, key=lambda p: (abs(p - percent), p))

    def observe(self, percent: float, cycles: float,
                transactions: float) -> None:
        """Attribute fleet telemetry to the deployed threshold."""
        if transactions <= 0 or cycles <= 0:
            return
        self.evaluations[self.snap(percent)] = cycles / transactions
        self.observations += 1

    def note_shift(self) -> None:
        """The hot set moved: all measurements describe a dead workload."""
        self.evaluations.clear()
        self.settled = False
        self.shifts_detected += 1

    # -- The climb ---------------------------------------------------------------

    def best_cost(self) -> Optional[float]:
        if not self.evaluations:
            return None
        return min(self.evaluations.values())

    def knee(self) -> float:
        """Smallest evaluated percent within tolerance of the best."""
        best = self.best_cost()
        if best is None:
            return self.current
        limit = best * (1.0 + self.tolerance)
        return min(p for p, c in self.evaluations.items() if c <= limit)

    def propose(self) -> Tuple[float, str, str]:
        """Pick the next threshold: ``(percent, mode, reason)``."""
        if self.current not in self.evaluations:
            return (
                self.current, "warmup",
                "no telemetry yet for %g%%" % self.current,
            )
        best = self.best_cost()
        assert best is not None
        limit = best * (1.0 + self.tolerance)
        explored = sorted(self.evaluations)
        lo, hi = explored[0], explored[-1]
        # Downward: as long as the cheapest explored point still performs,
        # an even cheaper one might too.
        if self.evaluations[lo] <= limit:
            below = [p for p in self.grid if p < lo]
            if below:
                return (
                    below[-1], "explore",
                    "%g%% still at the knee; probing cheaper %g%%"
                    % (lo, below[-1]),
                )
        # Upward: while the richest explored point is still within
        # tolerance of the best, the curve has not turned up yet, so
        # more optimization may still be buying cycles.  This is what
        # carries the climb across a flat shelf (Fig. 6 curves are not
        # always monotone: cost can plateau at 5-20% and drop again at
        # 40%).  The walk is bounded by the grid and stops at the
        # first clearly-worse point.
        if self.evaluations[hi] <= limit:
            above = [p for p in self.grid if p > hi]
            if above:
                return (
                    above[0], "explore",
                    "%g%% still competitive; probing richer %g%%"
                    % (hi, above[0]),
                )
        knee = self.knee()
        if not self.settled:
            return (
                knee, "settled",
                "knee at %g%% (best %.4f cycles/txn)" % (knee, best),
            )
        return (knee, "steady", "holding the knee at %g%%" % knee)

    # -- Decisions ---------------------------------------------------------------

    def decide(
        self,
        epoch: int,
        snapshot: Optional[ProfileDatabase],
        routine_module: Mapping[str, str],
        deployed_modules: Set[str],
        deployed_percent: Optional[float],
    ) -> ControllerDecision:
        """Choose the next threshold and the modules it re-optimizes.

        ``snapshot`` must be the same database the triggered build would
        consume, so the predicted module set matches the build's plan
        exactly.  ``deployed_modules``/``deployed_percent`` describe the
        image currently serving the fleet.
        """
        # Drift check at the *deployed* threshold: if the module set the
        # fleet's own traffic implies no longer matches what is deployed,
        # the workload moved and past measurements are void.
        if deployed_percent is not None and snapshot is not None:
            implied = cmo_module_set(
                snapshot, deployed_percent, routine_module
            )
            if implied != deployed_modules and self.evaluations:
                self.note_shift()
        percent, mode, reason = self.propose()
        self.current = percent
        if mode == "settled":
            self.settled = True
        target = cmo_module_set(snapshot, percent, routine_module)
        newly_hot = sorted(target - deployed_modules)
        newly_cold = sorted(deployed_modules - target)
        reoptimize = bool(
            newly_hot or newly_cold or percent != deployed_percent
        )
        return ControllerDecision(
            epoch=epoch,
            percent=percent,
            previous_percent=deployed_percent,
            mode=mode,
            reason=reason,
            reoptimize=reoptimize,
            newly_hot=newly_hot,
            newly_cold=newly_cold,
            evaluations=dict(self.evaluations),
        )

    def status(self) -> Dict[str, object]:
        return {
            "current_percent": self.current,
            "settled": self.settled,
            "observations": self.observations,
            "shifts_detected": self.shifts_detected,
            "evaluations": {
                "%g" % percent: cost
                for percent, cost in sorted(self.evaluations.items())
            },
        }

    def __repr__(self) -> str:
        return "<SelectivityController sel=%g%% %s>" % (
            self.current, "settled" if self.settled else "exploring",
        )
