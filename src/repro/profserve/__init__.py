"""Continuous profile service: streaming PBO with closed-loop selectivity.

The paper's profile database is a one-shot offline artifact: train once,
build once (§3, §5).  This package turns it into a *stream*.  Simulated
fleets of deployed binaries (:class:`FleetSimulator`) sample probe-count
deltas and ship them in :class:`ProfileBatch` envelopes; a
:class:`ProfileService` merges them into a live, exponentially-decayed
:class:`~repro.profiles.ProfileDatabase`; and a
:class:`SelectivityController` re-derives the Fig. 6 hotness threshold
from the live data, triggering incremental re-optimization of exactly
the modules that crossed it.  The build daemon (:mod:`repro.serve`)
exposes the whole loop as a ``profile-ingest`` protocol request.
"""

from .batch import IngestError, ProfileBatch
from .controller import (
    DEFAULT_GRID,
    ControllerDecision,
    SelectivityController,
)
from .fleet import FleetSimulator
from .service import FeedState, ProfileService, RegisteredProject

__all__ = [
    "IngestError",
    "ProfileBatch",
    "DEFAULT_GRID",
    "ControllerDecision",
    "SelectivityController",
    "FleetSimulator",
    "FeedState",
    "ProfileService",
    "RegisteredProject",
]
