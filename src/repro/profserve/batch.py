"""Profile batches: the wire unit of the streaming profile pipeline.

A batch carries two things a fleet can observe about a deployed binary:

* **profile deltas** — per-routine block/edge/call counts from the
  sampled (instrumented) subset of the fleet, checksum-tagged exactly
  like offline training data so the merge can detect drifted routines;
* **telemetry** — transactions served and cycles burned by the
  *optimized* production binary, which is what the selectivity
  controller actually optimizes for.

Batches are content-addressed: ``batch_id`` is a digest of the
canonical payload, computed server-side, so retransmitted batches
deduplicate instead of double-counting.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional

from ..profiles.database import ProfileDatabase, RoutineProfile


class IngestError(ValueError):
    """A profile batch is malformed or inconsistent."""


class ProfileBatch:
    """One fleet sampling window's worth of profile + telemetry data."""

    __slots__ = ("epoch", "workload", "samples", "transactions", "cycles",
                 "instructions", "routines")

    def __init__(
        self,
        epoch: int,
        workload: str = "",
        samples: int = 0,
        transactions: int = 0,
        cycles: int = 0,
        instructions: int = 0,
    ) -> None:
        if epoch < 1:
            raise IngestError("batch epoch must be >= 1, got %r" % (epoch,))
        self.epoch = epoch
        #: Free-form label of the workload shape ("zipf", "shift:3", ...).
        self.workload = workload
        #: Sampled user sessions that contributed profile deltas.
        self.samples = samples
        #: Transactions served by the deployed binary in this window.
        self.transactions = transactions
        #: Cycles the deployed binary spent serving them (0 = unknown).
        self.cycles = cycles
        self.instructions = instructions
        #: Per-routine count deltas, exactly like offline profiles.
        self.routines: Dict[str, RoutineProfile] = {}

    # -- Building ----------------------------------------------------------------

    def add_routine(self, profile: RoutineProfile) -> None:
        self.routines[profile.name] = profile

    @staticmethod
    def from_database(
        epoch: int,
        database: ProfileDatabase,
        workload: str = "",
        samples: int = 0,
        transactions: int = 0,
        cycles: int = 0,
        instructions: int = 0,
    ) -> "ProfileBatch":
        """Wrap a freshly-collected delta database as a batch.

        Routines with no executed blocks are dropped: a sampled delta is
        sparse by nature, and shipping zeros would only bloat the wire
        and create zero-weight residue in the live database.
        """
        batch = ProfileBatch(
            epoch,
            workload=workload,
            samples=samples,
            transactions=transactions,
            cycles=cycles,
            instructions=instructions,
        )
        for name in sorted(database.routines):
            profile = database.routines[name]
            if profile.total_block_weight() > 0:
                batch.add_routine(profile)
        return batch

    # -- Wire format -------------------------------------------------------------

    def payload(self) -> Dict[str, object]:
        """The canonical (id-free) JSON payload."""
        return {
            "epoch": self.epoch,
            "workload": self.workload,
            "samples": self.samples,
            "transactions": self.transactions,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "routines": {
                name: {
                    "checksum": profile.checksum,
                    "entry_label": profile.entry_label,
                    "blocks": profile.block_counts,
                    "edges": [
                        [f, t, count]
                        for (f, t), count in sorted(
                            profile.edge_counts.items()
                        )
                    ],
                    "calls": [
                        [block, index, callee, count]
                        for (block, index, callee), count in sorted(
                            profile.call_counts.items()
                        )
                    ],
                }
                for name, profile in sorted(self.routines.items())
            },
        }

    @property
    def batch_id(self) -> str:
        digest = hashlib.sha256(
            json.dumps(
                self.payload(), sort_keys=True, separators=(",", ":")
            ).encode("utf-8")
        )
        return digest.hexdigest()[:16]

    def to_wire(self) -> Dict[str, object]:
        wire = self.payload()
        wire["batch_id"] = self.batch_id
        return wire

    @staticmethod
    def from_wire(wire: object) -> "ProfileBatch":
        """Decode and validate one wire batch.

        The content digest is always recomputed; a ``batch_id`` claimed
        by the sender must match it (a mismatch means the payload was
        corrupted or tampered with in transit).
        """
        if not isinstance(wire, dict):
            raise IngestError(
                "batch must be an object, got %s" % type(wire).__name__
            )
        epoch = wire.get("epoch")
        if not isinstance(epoch, int):
            raise IngestError("batch epoch must be an integer")
        batch = ProfileBatch(
            epoch,
            workload=_field(wire, "workload", str, ""),
            samples=_field(wire, "samples", int, 0),
            transactions=_field(wire, "transactions", int, 0),
            cycles=_field(wire, "cycles", int, 0),
            instructions=_field(wire, "instructions", int, 0),
        )
        routines = wire.get("routines", {})
        if not isinstance(routines, dict):
            raise IngestError("batch routines must be an object")
        for name, entry in routines.items():
            if not isinstance(entry, dict):
                raise IngestError("routine %r entry must be an object" % name)
            try:
                profile = RoutineProfile(
                    name, entry["checksum"], entry.get("entry_label", "")
                )
                profile.block_counts = dict(entry.get("blocks", {}))
                profile.edge_counts = {
                    (f, t): count
                    for f, t, count in entry.get("edges", [])
                }
                profile.call_counts = {
                    (block, index, callee): count
                    for block, index, callee, count in entry.get("calls", [])
                }
            except (KeyError, TypeError, ValueError) as exc:
                raise IngestError(
                    "routine %r is malformed: %s" % (name, exc)
                )
            batch.add_routine(profile)
        claimed = wire.get("batch_id")
        if claimed is not None and claimed != batch.batch_id:
            raise IngestError(
                "batch_id mismatch: claimed %r, content is %s"
                % (claimed, batch.batch_id)
            )
        return batch

    def __repr__(self) -> str:
        return "<ProfileBatch epoch=%d %s: %d routines, %d samples>" % (
            self.epoch, self.workload or "?", len(self.routines),
            self.samples,
        )


def _field(wire: Dict[str, object], key: str, kind: type, default):
    value = wire.get(key, default)
    if kind is int and isinstance(value, bool):
        raise IngestError("batch %s must be %s" % (key, kind.__name__))
    if not isinstance(value, kind):
        raise IngestError("batch %s must be %s" % (key, kind.__name__))
    return value


def decode_batches(payload: object) -> List[ProfileBatch]:
    """Decode a wire list of batches (the ``batches`` request field)."""
    if not isinstance(payload, list):
        raise IngestError(
            "batches must be a list, got %s" % type(payload).__name__
        )
    return [ProfileBatch.from_wire(item) for item in payload]
