"""The cross-module dependency edge set recorded during a CMO link.

Every edge says "module *consumer* observed something about module
*producer*": an inlined routine body, a constant parameter binding, a
constant-return / mod-ref fact, a read-only global promotion, or a
dead-import elision.  The HLO driver records edges while it optimizes;
the state layer persists them next to the artifact cache.

On rebuild the graph answers the planning question -- given the set of
modules whose *summaries* changed, which modules' consumed facts might
have changed?  Propagation is transitive: if A inlined B and B inlined
C, a change to C changes B's post-inline body and hence what A
consumed.  The result is a *prediction* used for reporting and
scheduling; correctness never depends on it, because actual reuse is
decided by the exact post-inline reuse keys (see
:mod:`repro.incr.summary`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

#: Edge kinds, in the order the paper's phases produce them.
KIND_INLINE = "inline"
KIND_IPCP = "ipcp"
KIND_FACT = "fact"
KIND_GLOBAL = "global"
KIND_DFE = "dfe"


class DepEdge:
    """One observed cross-module dependency."""

    __slots__ = ("consumer", "producer", "kind", "item")

    def __init__(self, consumer: str, producer: str, kind: str,
                 item: str = "") -> None:
        self.consumer = consumer
        self.producer = producer
        self.kind = kind
        #: The symbol observed (routine or global name).
        self.item = item

    def as_tuple(self) -> Tuple[str, str, str, str]:
        return (self.consumer, self.producer, self.kind, self.item)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DepEdge):
            return NotImplemented
        return self.as_tuple() == other.as_tuple()

    def __hash__(self) -> int:
        return hash(self.as_tuple())

    def __repr__(self) -> str:
        return "<DepEdge %s -%s-> %s (%s)>" % (
            self.consumer, self.kind, self.producer, self.item
        )


class CrossModuleDeps:
    """The edge set for one build, with change propagation."""

    def __init__(self) -> None:
        self._edges: Set[DepEdge] = set()

    def add(self, consumer: str, producer: str, kind: str,
            item: str = "") -> None:
        if consumer == producer:
            return  # intra-module facts never cross a summary boundary
        self._edges.add(DepEdge(consumer, producer, kind, item))

    def edges(self) -> List[DepEdge]:
        return sorted(self._edges, key=DepEdge.as_tuple)

    def __len__(self) -> int:
        return len(self._edges)

    def consumers_of(self, producer: str) -> Set[str]:
        return {e.consumer for e in self._edges if e.producer == producer}

    def producers_of(self, consumer: str) -> Set[str]:
        return {e.producer for e in self._edges if e.consumer == consumer}

    def dirty_modules(self, changed: Iterable[str]) -> Set[str]:
        """Changed modules plus every transitive consumer of one.

        This is the invalidation prediction: modules outside the
        returned set consumed no fact that a changed module produced,
        so their reuse keys are expected to hold.
        """
        dirty: Set[str] = set(changed)
        frontier = list(dirty)
        while frontier:
            producer = frontier.pop()
            for consumer in self.consumers_of(producer):
                if consumer not in dirty:
                    dirty.add(consumer)
                    frontier.append(consumer)
        return dirty

    # -- Serialization (JSON-friendly) --------------------------------------------

    def to_list(self) -> List[List[str]]:
        return [list(edge.as_tuple()) for edge in self.edges()]

    @staticmethod
    def from_list(data: Iterable[Iterable[str]]) -> "CrossModuleDeps":
        deps = CrossModuleDeps()
        for consumer, producer, kind, item in data:
            deps._edges.add(DepEdge(consumer, producer, kind, item))
        return deps

    def by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for edge in self._edges:
            counts[edge.kind] = counts.get(edge.kind, 0) + 1
        return counts

    def __repr__(self) -> str:
        inner = ", ".join(
            "%s=%d" % (kind, count)
            for kind, count in sorted(self.by_kind().items())
        )
        return "<CrossModuleDeps %d edges (%s)>" % (len(self._edges), inner)
