"""Summary-based incremental cross-module recompilation.

The paper's +O4 pipeline re-optimizes the whole program on every
link; this package adds the WHOPR-style incremental layer on top:

* :mod:`summary` -- per-module content fingerprints (source-level
  summaries, and exact post-inline reuse keys);
* :mod:`depgraph` -- the recorded cross-module dependency edge set
  (what each module actually consumed from other modules' summaries);
* :mod:`state` -- persistence of summaries, edges, keys, and cached
  per-module codegen blobs in a NAIM repository, plus the per-link
  session the drivers thread through HLO and codegen.

Division of labor: the cheap whole-program analyses (scan, IPCP,
cloning, inlining) re-run on every build -- they *are* the thin link
-- while the expensive per-module phases (scalar pipeline + LLO
codegen) are skipped for every module whose reuse key is unchanged.
Because the key covers everything those phases can observe, the
incremental output is byte-identical to a clean build
(:func:`repro.linker.objects.encode_executable` is the witness).
"""

from .depgraph import CrossModuleDeps, DepEdge
from .state import IncrementalState, IncrLinkReport, IncrLinkSession
from .summary import (
    ModuleSummary,
    compute_module_keys,
    options_fingerprint,
    routine_body_hash,
    view_fingerprint,
)

__all__ = [
    "CrossModuleDeps",
    "DepEdge",
    "IncrementalState",
    "IncrLinkReport",
    "IncrLinkSession",
    "ModuleSummary",
    "compute_module_keys",
    "options_fingerprint",
    "routine_body_hash",
    "view_fingerprint",
]
