"""Module summaries and reuse fingerprints for incremental CMO.

Two layers of fingerprinting drive the incremental engine:

* **Source-level summaries** (:class:`ModuleSummary`) are emitted per
  module before HLO runs: exported routine signatures, body hashes of
  every (potentially inlinable) routine, and global-variable shapes.
  Comparing them against the previous build's summaries yields the
  *changed* module set, which the dependency graph turns into a
  cheap prediction of what will need re-optimization.

* **Reuse keys** (:func:`compute_module_keys`) are exact per-module
  fingerprints taken *after* the whole-program phases (DFE, IPCP,
  cloning, inlining) but before the scalar pipeline and code
  generation.  The key covers everything those two expensive phases
  can observe about a module -- post-inline routine bodies, profile
  views, selectivity membership, and the interprocedural fact slice
  (callee mod/ref + constant returns, readonly globals and their
  initializers).  Equal key therefore implies byte-identical machine
  code, so cached codegen output can be spliced in unchanged.  This
  is the WHOPR-style split: the cheap "thin link" analysis re-runs
  every build; only per-module optimization and codegen are skipped.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Set, Tuple

from ..ir.instructions import Opcode
from ..ir.module import Module
from ..ir.routine import Routine
from ..ir.symbols import ProgramSymbolTable
from ..naim.compaction import compact_routine
from ..sched.artifacts import PIPELINE_EPOCH

#: Bump when the summary/key wire format itself changes.
SUMMARY_FORMAT = 2


def _hexdigest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()[:16]


def routine_body_hash(routine: Routine) -> str:
    """Content hash of one routine body.

    Encodes through :func:`compact_routine` with a private symbol
    table, so the hash depends only on the routine's own content and
    identity (name, module, intra-module ordinal) -- editing a sibling
    routine's body never disturbs it, and program-wide PID numbering
    never leaks in.
    """
    return _hexdigest(compact_routine(routine, ProgramSymbolTable()))


def view_fingerprint(view) -> str:
    """Hash of a profile view's counts (measured or static)."""
    if view is None:
        return "-"
    digest = hashlib.sha256()
    digest.update(b"static" if view.is_static_estimate else b"measured")
    for label in sorted(view.block_counts):
        digest.update(
            ("%s=%d;" % (label, view.block_counts[label])).encode("utf-8")
        )
    for edge in sorted(view.edge_counts):
        digest.update(
            ("%s>%s=%d;" % (edge[0], edge[1], view.edge_counts[edge]))
            .encode("utf-8")
        )
    return digest.hexdigest()[:16]


def modref_fingerprint(info) -> str:
    """Canonical string of one routine's mod/ref facts."""
    if info.unknown:
        return "unknown"
    return "mod=%s|ref=%s" % (
        ",".join(sorted(info.mod)), ",".join(sorted(info.ref))
    )


def options_fingerprint(options) -> str:
    """Fingerprint of every option that can steer CMO or codegen.

    ``options`` is a :class:`~repro.driver.options.CompilerOptions`;
    the HLO knob set is hashed field-by-field so any new knob
    automatically participates.
    """
    digest = hashlib.sha256()
    digest.update(PIPELINE_EPOCH.encode("utf-8"))
    digest.update(b"\x00")
    # The selectivity percentage is deliberately left out: a threshold
    # move changes which routines are *selected*, and that membership is
    # already captured per module by the ``optimized`` flag and profile
    # views in the reuse keys.  Hashing the raw percent would force a
    # full first_build every time the daemon's controller nudges the
    # knob, defeating incremental re-optimization.
    described = " ".join(
        part for part in options.describe().split()
        if not part.startswith("sel=")
    )
    digest.update(described.encode("utf-8"))
    digest.update(b"\x00")
    for name in sorted(vars(options.hlo)):
        digest.update(
            ("%s=%r;" % (name, getattr(options.hlo, name))).encode("utf-8")
        )
    digest.update(b"\x00")
    digest.update(("multi_layer=%r" % options.multi_layer).encode("utf-8"))
    return digest.hexdigest()[:16]


class ModuleSummary:
    """What other modules can observe about one module, fingerprinted."""

    def __init__(self, module_name: str) -> None:
        self.module_name = module_name
        #: routine name -> (n_params, exported flag).
        self.signatures: Dict[str, Tuple[int, bool]] = {}
        #: routine name -> body content hash (inlining candidates).
        self.body_hashes: Dict[str, str] = {}
        #: global name -> (size, exported flag, init hash).
        self.globals: Dict[str, Tuple[int, bool, str]] = {}

    @staticmethod
    def from_module(module: Module) -> "ModuleSummary":
        summary = ModuleSummary(module.name)
        for routine in module.routine_list():
            summary.signatures[routine.name] = (
                routine.n_params, bool(routine.exported)
            )
            summary.body_hashes[routine.name] = routine_body_hash(routine)
        for var in module.symtab.globals.values():
            summary.globals[var.name] = (
                var.size, bool(var.exported), _hexdigest(repr(var.init).encode())
            )
        return summary

    def fingerprint(self) -> str:
        digest = hashlib.sha256()
        digest.update(self.module_name.encode("utf-8"))
        for name in sorted(self.signatures):
            n_params, exported = self.signatures[name]
            digest.update(
                ("r:%s/%d/%d=%s;" % (name, n_params, int(exported),
                                     self.body_hashes.get(name, "-")))
                .encode("utf-8")
            )
        for name in sorted(self.globals):
            size, exported, init_hash = self.globals[name]
            digest.update(
                ("g:%s/%d/%d=%s;" % (name, size, int(exported), init_hash))
                .encode("utf-8")
            )
        return digest.hexdigest()[:16]

    # -- Serialization (JSON-friendly) --------------------------------------------

    def to_dict(self) -> dict:
        return {
            "module": self.module_name,
            "signatures": {
                name: [n, int(e)] for name, (n, e) in self.signatures.items()
            },
            "body_hashes": dict(self.body_hashes),
            "globals": {
                name: [size, int(e), h]
                for name, (size, e, h) in self.globals.items()
            },
        }

    @staticmethod
    def from_dict(data: dict) -> "ModuleSummary":
        summary = ModuleSummary(data["module"])
        summary.signatures = {
            name: (int(n), bool(e))
            for name, (n, e) in data.get("signatures", {}).items()
        }
        summary.body_hashes = dict(data.get("body_hashes", {}))
        summary.globals = {
            name: (int(size), bool(e), h)
            for name, (size, e, h) in data.get("globals", {}).items()
        }
        return summary

    def __repr__(self) -> str:
        return "<ModuleSummary %s (%d routines, %d globals) %s>" % (
            self.module_name, len(self.signatures), len(self.globals),
            self.fingerprint(),
        )


class ConsumedFacts:
    """The foreign facts one module's downstream phases can observe."""

    def __init__(self, module_name: str) -> None:
        self.module_name = module_name
        #: Callee names referenced from this module's post-inline bodies.
        self.callees: Set[str] = set()
        #: Global names referenced from this module's post-inline bodies.
        self.globals: Set[str] = set()


def compute_module_keys(
    unit,
    ctx,
    selected: Set[str],
    clones: Set[str],
    options_fp: str,
) -> Tuple[Dict[str, str], Dict[str, ConsumedFacts]]:
    """Exact per-module reuse keys over post-inline program state.

    ``unit`` is the HLO :class:`~repro.hlo.driver.CmoUnit` after the
    inlining phase; ``ctx`` the :class:`~repro.hlo.passes.OptContext`
    carrying the published interprocedural facts.  Returns
    ``(keys, consumed)``: the reuse key and the consumed-fact record
    for every module in the unit.

    Soundness: the scalar pipeline and LLO consume, per routine, the
    routine body, its profile view, ``ctx.modref`` / ``ctx.const_returns``
    facts about its callees, and ``ctx.readonly_globals`` plus global
    initializers for its referenced globals.  All of those are hashed
    here, so key equality implies the downstream phases would produce
    identical output.
    """
    routines_of: Dict[str, List[str]] = {}
    for name in unit.routine_names():
        routines_of.setdefault(unit.routine_module[name], []).append(name)

    keys: Dict[str, str] = {}
    consumed: Dict[str, ConsumedFacts] = {}
    in_unit = set(unit.routine_names())

    for module_name, names in routines_of.items():
        digest = hashlib.sha256()
        digest.update(("v%d|" % SUMMARY_FORMAT).encode("utf-8"))
        digest.update(options_fp.encode("utf-8"))
        digest.update(("|%s|" % module_name).encode("utf-8"))
        facts = ConsumedFacts(module_name)

        for name in names:
            routine = unit.routine(name)
            if routine is None:
                digest.update(("!%s;" % name).encode("utf-8"))
                continue
            optimized = name in selected or name in clones
            digest.update(
                ("r:%s/%d=%s+%s;" % (
                    name, int(optimized), routine_body_hash(routine),
                    view_fingerprint(ctx.views.get(name)),
                )).encode("utf-8")
            )
            facts.callees.update(routine.callees())
            facts.globals.update(routine.referenced_globals())
            unit.unload(name)

        # The interprocedural fact slice this module's passes can read.
        for callee in sorted(facts.callees):
            modref = (
                modref_fingerprint(ctx.modref.for_routine(callee))
                if ctx.modref is not None else "-"
            )
            digest.update(
                ("c:%s/%s/%r/%d;" % (
                    callee, modref, ctx.const_returns.get(callee),
                    int(callee in in_unit),
                )).encode("utf-8")
            )
        for global_name in sorted(facts.globals):
            readonly = global_name in ctx.readonly_globals
            if ctx.symtab.has_global(global_name):
                var = ctx.symtab.lookup_global(global_name)
                shape = "%d/%r" % (var.size, var.init)
            else:
                shape = "extern"
            digest.update(
                ("g:%s/%d/%s;" % (global_name, int(readonly), shape))
                .encode("utf-8")
            )

        keys[module_name] = digest.hexdigest()
        consumed[module_name] = facts
    return keys, consumed


# -- Enriched per-routine facts (summary-only WPA) ------------------------------
#
# The thin whole-program phase (``--wpa-mode summary``) runs every
# cross-module decision -- IPCP seeds, cloning, the inline plan, DFE --
# against these facts instead of expanded routine bodies.  The facts
# therefore record exactly what those passes can observe: sizes, call
# edges with per-argument constness, return constness, direct mod/ref,
# and the initial profile view.  Argument/return constness mirrors
# ``ipcp._const_def_in_block``: the *latest* same-block definition of
# the register before the site, constant only when it is a CONST.


class SiteFacts:
    """One call site's summary: position, callee, argument constness."""

    __slots__ = ("block_label", "index", "callee", "in_entry", "has_dst",
                 "args")

    def __init__(self, block_label: str, index: int, callee: str,
                 in_entry: bool, has_dst: bool,
                 args: List[Tuple[int, Optional[int], bool]]) -> None:
        self.block_label = block_label
        self.index = index
        self.callee = callee
        #: Site lives in the routine's entry block (IPCP entry bindings
        #: shift its index and can change its argument constness).
        self.in_entry = in_entry
        #: The call assigns a result register (inlining materializes the
        #: callee's returns only in that case).
        self.has_dst = has_dst
        #: Per argument: (register, const value or None, has same-block
        #: def before the site).
        self.args = args

    def to_list(self) -> list:
        return [self.block_label, self.index, self.callee,
                int(self.in_entry), int(self.has_dst),
                [[reg, value, int(has_def)] for reg, value, has_def
                 in self.args]]

    @staticmethod
    def from_list(data: list) -> "SiteFacts":
        return SiteFacts(
            data[0], int(data[1]), data[2], bool(data[3]), bool(data[4]),
            [(int(reg), value if value is None else int(value),
              bool(has_def)) for reg, value, has_def in data[5]],
        )


class RetFacts:
    """One block-terminator RET's summary (constant-return analysis)."""

    __slots__ = ("block_label", "in_entry", "reg", "value", "has_def")

    def __init__(self, block_label: str, in_entry: bool,
                 reg: Optional[int], value: Optional[int],
                 has_def: bool) -> None:
        self.block_label = block_label
        self.in_entry = in_entry
        #: Returned register (None: bare RET, the literal 0).
        self.reg = reg
        self.value = value
        self.has_def = has_def

    def to_list(self) -> list:
        return [self.block_label, int(self.in_entry), self.reg, self.value,
                int(self.has_def)]

    @staticmethod
    def from_list(data: list) -> "RetFacts":
        return RetFacts(
            data[0], bool(data[1]),
            data[2] if data[2] is None else int(data[2]),
            data[3] if data[3] is None else int(data[3]),
            bool(data[4]),
        )


class RoutineFacts:
    """Everything the whole-program phases need to know about a routine
    without holding its body."""

    __slots__ = ("name", "module", "n_params", "exported", "instr_count",
                 "probe_count", "ret_count", "sites", "rets",
                 "referenced_globals", "mod", "ref", "has_calls", "view")

    def __init__(self, name: str, module: str, n_params: int,
                 exported: bool) -> None:
        self.name = name
        self.module = module
        self.n_params = n_params
        #: Escape bit: an exported routine's address is visible outside
        #: its module (the IL has no indirect calls, so this plus the
        #: driver's ``externally_callable`` set covers address-taken).
        self.exported = exported
        self.instr_count = 0
        #: PROBE / RET instruction counts.  Both are invariant under the
        #: callee's own prior inlining (spliced-in bodies drop probes and
        #: rewrite RETs to jumps), which is what makes the thin inline
        #: size formula exact.
        self.probe_count = 0
        self.ret_count = 0
        self.sites: List[SiteFacts] = []
        self.rets: List[RetFacts] = []
        self.referenced_globals: List[str] = []
        #: Direct mod/ref (globals written / read by own instructions).
        self.mod: Set[str] = set()
        self.ref: Set[str] = set()
        self.has_calls = False
        #: Initial profile view (measured or static estimate); the thin
        #: phases read it, they never evolve it -- view evolution happens
        #: at plan replay.
        self.view = None

    def callees(self) -> List[str]:
        """Distinct callees, first-occurrence order (mirrors Routine)."""
        seen: Dict[str, None] = {}
        for site in self.sites:
            seen.setdefault(site.callee)
        return list(seen)

    def copy(self, new_name: Optional[str] = None) -> "RoutineFacts":
        """Deep copy (cloning simulation)."""
        dup = RoutineFacts(new_name or self.name, self.module,
                           self.n_params, self.exported)
        dup.instr_count = self.instr_count
        dup.probe_count = self.probe_count
        dup.ret_count = self.ret_count
        dup.sites = [
            SiteFacts(s.block_label, s.index, s.callee, s.in_entry,
                      s.has_dst, list(s.args))
            for s in self.sites
        ]
        dup.rets = [
            RetFacts(r.block_label, r.in_entry, r.reg, r.value, r.has_def)
            for r in self.rets
        ]
        dup.referenced_globals = list(self.referenced_globals)
        dup.mod = set(self.mod)
        dup.ref = set(self.ref)
        dup.has_calls = self.has_calls
        dup.view = self.view
        return dup

    # -- Serialization (facts cache blobs) ------------------------------------

    def to_dict(self) -> dict:
        view = self.view
        return {
            "name": self.name,
            "module": self.module,
            "n_params": self.n_params,
            "exported": int(self.exported),
            "instrs": self.instr_count,
            "probes": self.probe_count,
            "rets_n": self.ret_count,
            "sites": [site.to_list() for site in self.sites],
            "rets": [ret.to_list() for ret in self.rets],
            "globals": list(self.referenced_globals),
            "mod": sorted(self.mod),
            "ref": sorted(self.ref),
            "has_calls": int(self.has_calls),
            "view": None if view is None else {
                "static": int(view.is_static_estimate),
                "blocks": dict(view.block_counts),
                "edges": [[f, t, c] for (f, t), c in
                          sorted(view.edge_counts.items())],
            },
        }

    @staticmethod
    def from_dict(data: dict) -> "RoutineFacts":
        facts = RoutineFacts(data["name"], data["module"],
                             int(data["n_params"]), bool(data["exported"]))
        facts.instr_count = int(data["instrs"])
        facts.probe_count = int(data["probes"])
        facts.ret_count = int(data["rets_n"])
        facts.sites = [SiteFacts.from_list(item) for item in data["sites"]]
        facts.rets = [RetFacts.from_list(item) for item in data["rets"]]
        facts.referenced_globals = list(data["globals"])
        facts.mod = set(data["mod"])
        facts.ref = set(data["ref"])
        facts.has_calls = bool(data["has_calls"])
        view = data.get("view")
        if view is not None:
            from ..hlo.profile_view import ProfileView

            facts.view = ProfileView(
                facts.name,
                block_counts={label: int(count) for label, count
                              in view["blocks"].items()},
                edge_counts={(f, t): int(c) for f, t, c in view["edges"]},
                is_static_estimate=bool(view["static"]),
            )
        return facts


def extract_routine_facts(routine: Routine, view=None) -> RoutineFacts:
    """Summarize one routine body in a single pass.

    Constness tracking matches ``ipcp._const_def_in_block``: walking
    each block, the running definition map holds the latest value each
    register was assigned in-block (a literal for CONST, None for any
    other producer); call/RET facts read the map *before* the
    instruction's own definition lands.
    """
    facts = RoutineFacts(routine.name, routine.module_name,
                         routine.n_params, bool(routine.exported))
    facts.instr_count = routine.instr_count()
    seen_globals: Dict[str, None] = {}
    entry_label = routine.blocks[0].label if routine.blocks else ""
    for block in routine.blocks:
        defs: Dict[int, Optional[int]] = {}
        in_entry = block.label == entry_label
        last = len(block.instrs) - 1
        for index, instr in enumerate(block.instrs):
            op = instr.op
            if op is Opcode.PROBE:
                facts.probe_count += 1
            elif op is Opcode.CALL:
                facts.has_calls = True
                facts.sites.append(SiteFacts(
                    block.label, index, instr.sym, in_entry,
                    instr.dst is not None,
                    [(reg, defs.get(reg), reg in defs)
                     for reg in instr.args],
                ))
            elif op is Opcode.RET:
                facts.ret_count += 1
                if index == last:
                    reg = instr.a
                    facts.rets.append(RetFacts(
                        block.label, in_entry, reg,
                        defs.get(reg) if reg is not None else None,
                        (reg in defs) if reg is not None else False,
                    ))
            elif op in (Opcode.LOADG, Opcode.LOADE):
                facts.ref.add(instr.sym)
                seen_globals.setdefault(instr.sym)
            elif op in (Opcode.STOREG, Opcode.STOREE):
                facts.mod.add(instr.sym)
                seen_globals.setdefault(instr.sym)
            if instr.dst is not None:
                defs[instr.dst] = (
                    instr.imm if op is Opcode.CONST else None
                )
    facts.referenced_globals = list(seen_globals)
    facts.view = view
    return facts


def apply_entry_bindings(facts: RoutineFacts, bindings) -> None:
    """Mutate facts for CONSTs inserted at the routine entry.

    ``bindings`` is the ordered [(dst_register, value), ...] list that
    ``ipcp.apply_param_constants`` / ``clone.make_clone`` insert at
    entry offsets 0..k-1.  Entry-block sites shift by k; an argument or
    returned register with no own in-block definition now sees the
    binding's CONST.
    """
    k = len(bindings)
    if not k:
        return
    bound = dict(bindings)
    facts.instr_count += k
    for site in facts.sites:
        if not site.in_entry:
            continue
        site.index += k
        site.args = [
            (reg, value if has_def else bound.get(reg),
             has_def or reg in bound)
            for reg, value, has_def in site.args
        ]
    for ret in facts.rets:
        if not ret.in_entry or ret.reg is None or ret.has_def:
            continue
        ret.value = bound.get(ret.reg)
        ret.has_def = ret.reg in bound


def facts_constant_return(facts: RoutineFacts) -> Optional[int]:
    """``ipcp.constant_return_value`` over facts instead of a body."""
    result: Optional[int] = None
    found_any = False
    for ret in facts.rets:
        found_any = True
        value = 0 if ret.reg is None else ret.value
        if value is None:
            return None
        if result is None:
            result = value
        elif result != value:
            return None
    return result if found_any else None
