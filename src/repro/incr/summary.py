"""Module summaries and reuse fingerprints for incremental CMO.

Two layers of fingerprinting drive the incremental engine:

* **Source-level summaries** (:class:`ModuleSummary`) are emitted per
  module before HLO runs: exported routine signatures, body hashes of
  every (potentially inlinable) routine, and global-variable shapes.
  Comparing them against the previous build's summaries yields the
  *changed* module set, which the dependency graph turns into a
  cheap prediction of what will need re-optimization.

* **Reuse keys** (:func:`compute_module_keys`) are exact per-module
  fingerprints taken *after* the whole-program phases (DFE, IPCP,
  cloning, inlining) but before the scalar pipeline and code
  generation.  The key covers everything those two expensive phases
  can observe about a module -- post-inline routine bodies, profile
  views, selectivity membership, and the interprocedural fact slice
  (callee mod/ref + constant returns, readonly globals and their
  initializers).  Equal key therefore implies byte-identical machine
  code, so cached codegen output can be spliced in unchanged.  This
  is the WHOPR-style split: the cheap "thin link" analysis re-runs
  every build; only per-module optimization and codegen are skipped.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Set, Tuple

from ..ir.module import Module
from ..ir.routine import Routine
from ..ir.symbols import ProgramSymbolTable
from ..naim.compaction import compact_routine
from ..sched.artifacts import PIPELINE_EPOCH

#: Bump when the summary/key wire format itself changes.
SUMMARY_FORMAT = 1


def _hexdigest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()[:16]


def routine_body_hash(routine: Routine) -> str:
    """Content hash of one routine body.

    Encodes through :func:`compact_routine` with a private symbol
    table, so the hash depends only on the routine's own content and
    identity (name, module, intra-module ordinal) -- editing a sibling
    routine's body never disturbs it, and program-wide PID numbering
    never leaks in.
    """
    return _hexdigest(compact_routine(routine, ProgramSymbolTable()))


def view_fingerprint(view) -> str:
    """Hash of a profile view's counts (measured or static)."""
    if view is None:
        return "-"
    digest = hashlib.sha256()
    digest.update(b"static" if view.is_static_estimate else b"measured")
    for label in sorted(view.block_counts):
        digest.update(
            ("%s=%d;" % (label, view.block_counts[label])).encode("utf-8")
        )
    for edge in sorted(view.edge_counts):
        digest.update(
            ("%s>%s=%d;" % (edge[0], edge[1], view.edge_counts[edge]))
            .encode("utf-8")
        )
    return digest.hexdigest()[:16]


def modref_fingerprint(info) -> str:
    """Canonical string of one routine's mod/ref facts."""
    if info.unknown:
        return "unknown"
    return "mod=%s|ref=%s" % (
        ",".join(sorted(info.mod)), ",".join(sorted(info.ref))
    )


def options_fingerprint(options) -> str:
    """Fingerprint of every option that can steer CMO or codegen.

    ``options`` is a :class:`~repro.driver.options.CompilerOptions`;
    the HLO knob set is hashed field-by-field so any new knob
    automatically participates.
    """
    digest = hashlib.sha256()
    digest.update(PIPELINE_EPOCH.encode("utf-8"))
    digest.update(b"\x00")
    # The selectivity percentage is deliberately left out: a threshold
    # move changes which routines are *selected*, and that membership is
    # already captured per module by the ``optimized`` flag and profile
    # views in the reuse keys.  Hashing the raw percent would force a
    # full first_build every time the daemon's controller nudges the
    # knob, defeating incremental re-optimization.
    described = " ".join(
        part for part in options.describe().split()
        if not part.startswith("sel=")
    )
    digest.update(described.encode("utf-8"))
    digest.update(b"\x00")
    for name in sorted(vars(options.hlo)):
        digest.update(
            ("%s=%r;" % (name, getattr(options.hlo, name))).encode("utf-8")
        )
    digest.update(b"\x00")
    digest.update(("multi_layer=%r" % options.multi_layer).encode("utf-8"))
    return digest.hexdigest()[:16]


class ModuleSummary:
    """What other modules can observe about one module, fingerprinted."""

    def __init__(self, module_name: str) -> None:
        self.module_name = module_name
        #: routine name -> (n_params, exported flag).
        self.signatures: Dict[str, Tuple[int, bool]] = {}
        #: routine name -> body content hash (inlining candidates).
        self.body_hashes: Dict[str, str] = {}
        #: global name -> (size, exported flag, init hash).
        self.globals: Dict[str, Tuple[int, bool, str]] = {}

    @staticmethod
    def from_module(module: Module) -> "ModuleSummary":
        summary = ModuleSummary(module.name)
        for routine in module.routine_list():
            summary.signatures[routine.name] = (
                routine.n_params, bool(routine.exported)
            )
            summary.body_hashes[routine.name] = routine_body_hash(routine)
        for var in module.symtab.globals.values():
            summary.globals[var.name] = (
                var.size, bool(var.exported), _hexdigest(repr(var.init).encode())
            )
        return summary

    def fingerprint(self) -> str:
        digest = hashlib.sha256()
        digest.update(self.module_name.encode("utf-8"))
        for name in sorted(self.signatures):
            n_params, exported = self.signatures[name]
            digest.update(
                ("r:%s/%d/%d=%s;" % (name, n_params, int(exported),
                                     self.body_hashes.get(name, "-")))
                .encode("utf-8")
            )
        for name in sorted(self.globals):
            size, exported, init_hash = self.globals[name]
            digest.update(
                ("g:%s/%d/%d=%s;" % (name, size, int(exported), init_hash))
                .encode("utf-8")
            )
        return digest.hexdigest()[:16]

    # -- Serialization (JSON-friendly) --------------------------------------------

    def to_dict(self) -> dict:
        return {
            "module": self.module_name,
            "signatures": {
                name: [n, int(e)] for name, (n, e) in self.signatures.items()
            },
            "body_hashes": dict(self.body_hashes),
            "globals": {
                name: [size, int(e), h]
                for name, (size, e, h) in self.globals.items()
            },
        }

    @staticmethod
    def from_dict(data: dict) -> "ModuleSummary":
        summary = ModuleSummary(data["module"])
        summary.signatures = {
            name: (int(n), bool(e))
            for name, (n, e) in data.get("signatures", {}).items()
        }
        summary.body_hashes = dict(data.get("body_hashes", {}))
        summary.globals = {
            name: (int(size), bool(e), h)
            for name, (size, e, h) in data.get("globals", {}).items()
        }
        return summary

    def __repr__(self) -> str:
        return "<ModuleSummary %s (%d routines, %d globals) %s>" % (
            self.module_name, len(self.signatures), len(self.globals),
            self.fingerprint(),
        )


class ConsumedFacts:
    """The foreign facts one module's downstream phases can observe."""

    def __init__(self, module_name: str) -> None:
        self.module_name = module_name
        #: Callee names referenced from this module's post-inline bodies.
        self.callees: Set[str] = set()
        #: Global names referenced from this module's post-inline bodies.
        self.globals: Set[str] = set()


def compute_module_keys(
    unit,
    ctx,
    selected: Set[str],
    clones: Set[str],
    options_fp: str,
) -> Tuple[Dict[str, str], Dict[str, ConsumedFacts]]:
    """Exact per-module reuse keys over post-inline program state.

    ``unit`` is the HLO :class:`~repro.hlo.driver.CmoUnit` after the
    inlining phase; ``ctx`` the :class:`~repro.hlo.passes.OptContext`
    carrying the published interprocedural facts.  Returns
    ``(keys, consumed)``: the reuse key and the consumed-fact record
    for every module in the unit.

    Soundness: the scalar pipeline and LLO consume, per routine, the
    routine body, its profile view, ``ctx.modref`` / ``ctx.const_returns``
    facts about its callees, and ``ctx.readonly_globals`` plus global
    initializers for its referenced globals.  All of those are hashed
    here, so key equality implies the downstream phases would produce
    identical output.
    """
    routines_of: Dict[str, List[str]] = {}
    for name in unit.routine_names():
        routines_of.setdefault(unit.routine_module[name], []).append(name)

    keys: Dict[str, str] = {}
    consumed: Dict[str, ConsumedFacts] = {}
    in_unit = set(unit.routine_names())

    for module_name, names in routines_of.items():
        digest = hashlib.sha256()
        digest.update(("v%d|" % SUMMARY_FORMAT).encode("utf-8"))
        digest.update(options_fp.encode("utf-8"))
        digest.update(("|%s|" % module_name).encode("utf-8"))
        facts = ConsumedFacts(module_name)

        for name in names:
            routine = unit.routine(name)
            if routine is None:
                digest.update(("!%s;" % name).encode("utf-8"))
                continue
            optimized = name in selected or name in clones
            digest.update(
                ("r:%s/%d=%s+%s;" % (
                    name, int(optimized), routine_body_hash(routine),
                    view_fingerprint(ctx.views.get(name)),
                )).encode("utf-8")
            )
            facts.callees.update(routine.callees())
            facts.globals.update(routine.referenced_globals())
            unit.unload(name)

        # The interprocedural fact slice this module's passes can read.
        for callee in sorted(facts.callees):
            modref = (
                modref_fingerprint(ctx.modref.for_routine(callee))
                if ctx.modref is not None else "-"
            )
            digest.update(
                ("c:%s/%s/%r/%d;" % (
                    callee, modref, ctx.const_returns.get(callee),
                    int(callee in in_unit),
                )).encode("utf-8")
            )
        for global_name in sorted(facts.globals):
            readonly = global_name in ctx.readonly_globals
            if ctx.symtab.has_global(global_name):
                var = ctx.symtab.lookup_global(global_name)
                shape = "%d/%r" % (var.size, var.init)
            else:
                shape = "extern"
            digest.update(
                ("g:%s/%d/%s;" % (global_name, int(readonly), shape))
                .encode("utf-8")
            )

        keys[module_name] = digest.hexdigest()
        consumed[module_name] = facts
    return keys, consumed
