"""Persistent incremental-CMO state and the per-link session.

:class:`IncrementalState` owns everything that survives between
builds, stored in a NAIM :class:`~repro.naim.repository.Repository`
(in-memory, or on disk next to the artifact cache):

* the previous build's :class:`ModuleSummary` per CMO module,
* the recorded :class:`CrossModuleDeps` edge set,
* each module's post-inline reuse key, and
* one cached codegen blob (machine routines) per reuse key.

:class:`IncrLinkSession` is the scratchpad for one link: the compiler
driver opens it with the current module set, the HLO driver records
consumption edges and decides reuse against the cached blobs, the
codegen loop splices cached/fresh machine routines, and ``commit``
atomically replaces the persistent state and prunes stale blobs.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Set

from ..linker.objects import (
    decode_machine_routines,
    encode_machine_routines,
)
from ..naim.repository import Repository
from ..sched.artifacts import PIPELINE_EPOCH
from .depgraph import (
    KIND_FACT,
    KIND_GLOBAL,
    KIND_INLINE,
    KIND_IPCP,
    CrossModuleDeps,
)
from .summary import SUMMARY_FORMAT, ModuleSummary

_INDEX_KIND = "incr"
_INDEX_NAME = "index"
_MACHINE_KIND = "mach"
#: Per-module thin-WPA facts blobs (summary-only WPA reuses them for
#: unchanged modules instead of re-scanning bodies).
_FACTS_KIND = "summ"


class IncrLinkReport:
    """What one incremental link did, for humans and benchmarks."""

    def __init__(self) -> None:
        self.first_build = False
        #: Modules whose source-level summary changed since last build.
        self.changed_modules: List[str] = []
        #: Dep-graph prediction of what would need re-optimization.
        self.predicted_dirty: List[str] = []
        #: Modules whose cached codegen was spliced in unchanged.
        self.reused: List[str] = []
        #: Modules that went through the scalar pipeline + LLO again.
        self.reoptimized: List[str] = []
        #: Dependency-edge counts by kind, as recorded this build.
        self.edge_counts: Dict[str, int] = {}
        #: Routines dropped by dead-function elimination, per module.
        self.dfe_removed: Dict[str, List[str]] = {}

    def reuse_fraction(self) -> float:
        total = len(self.reused) + len(self.reoptimized)
        return len(self.reused) / total if total else 0.0

    def __repr__(self) -> str:
        return ("<IncrLinkReport reused=%d reoptimized=%d changed=%r "
                "predicted=%r%s>") % (
            len(self.reused), len(self.reoptimized),
            self.changed_modules, self.predicted_dirty,
            " first-build" if self.first_build else "",
        )


class IncrLinkSession:
    """Mutable per-link record threaded through the CMO pipeline."""

    def __init__(self, state: "IncrementalState", options_fp: str) -> None:
        self.state = state
        self.options_fp = options_fp
        #: Current build's summaries (module name -> ModuleSummary).
        self.summaries: Dict[str, ModuleSummary] = {}
        self.changed_modules: List[str] = []
        self.predicted_dirty: List[str] = []
        self.first_build = False
        #: Edges recorded while HLO runs.
        self.deps = CrossModuleDeps()
        #: Post-inline reuse key per module.
        self.module_keys: Dict[str, str] = {}
        #: Modules whose cached codegen will be spliced in.
        self.reused_modules: Set[str] = set()
        #: module -> routine name -> MachineRoutine (decoded cache hits).
        self.cached_machines: Dict[str, Dict[str, object]] = {}
        #: module -> machine routines in unit order (fresh codegen).
        self.fresh_machines: Dict[str, List[object]] = {}
        self.dfe_removed: Dict[str, List[str]] = {}
        #: module -> pristine extraction-time facts dicts (thin WPA);
        #: committed as ``summ`` blobs keyed by the module's summary
        #: fingerprint so the next build can skip body scans.
        self.module_facts: Dict[str, List[dict]] = {}

    # -- Thin-WPA facts cache -------------------------------------------------------

    def record_facts(self, module_name: str, facts_dicts: List[dict]) -> None:
        """Stash one module's pristine (pre-mutation) facts for commit."""
        self.module_facts[module_name] = facts_dicts

    def load_facts(self, module_name: str):
        """Cached facts for a module, verified against its fingerprint.

        Returns ``(facts_dicts, None)`` on a verified hit, or
        ``(None, reason)`` -- reason in {"missing", "corrupt",
        "fingerprint-mismatch"} -- when the thin phase must fall back to
        scanning that module's bodies.  The check compares the recorded
        fingerprint against the *current* module summary, so a stale
        blob (pack-repo entry from an older body) can never feed wrong
        sizes or call edges into the whole-program decisions.
        """
        summary = self.summaries.get(module_name)
        state = self.state
        if summary is None or not state.repository.contains(
            _FACTS_KIND, module_name
        ):
            return None, "missing"
        try:
            data = json.loads(
                bytes(
                    state.repository.fetch(_FACTS_KIND, module_name)
                ).decode("utf-8")
            )
            if data.get("format") != SUMMARY_FORMAT:
                return None, "fingerprint-mismatch"
            if data.get("fingerprint") != summary.fingerprint():
                return None, "fingerprint-mismatch"
            routines = data["routines"]
            if not isinstance(routines, list):
                raise ValueError("bad facts payload")
        except Exception:
            state.repository.discard(_FACTS_KIND, module_name)
            return None, "corrupt"
        return routines, None

    # -- Recording hooks (called from the HLO driver) ------------------------------

    def record_inline_edges(self, inline_stats, routine_module) -> None:
        """Inlines performed: caller's module consumed callee's body."""
        for caller, callee in inline_stats.performed_list:
            caller_module = routine_module.get(caller)
            callee_module = routine_module.get(callee)
            if caller_module and callee_module:
                self.deps.add(caller_module, callee_module, KIND_INLINE,
                              item=callee)

    def record_ipcp_edges(self, bound: Dict[str, int], callgraph,
                          routine_module) -> None:
        """Constants propagated: callee's module consumed caller facts."""
        for routine_name in bound:
            consumer = routine_module.get(routine_name)
            node = callgraph.nodes.get(routine_name)
            if consumer is None or node is None:
                continue
            for caller in node.caller_names:
                producer = routine_module.get(caller)
                if producer:
                    self.deps.add(consumer, producer, KIND_IPCP,
                                  item=routine_name)

    def record_consumption(self, consumed, routine_module, symtab) -> None:
        """Fact-slice edges from the reuse-key computation.

        ``consumed`` maps module -> :class:`ConsumedFacts`; callee
        facts (mod/ref, constant returns) and foreign globals
        (readonly promotion, initializers) become edges to the
        producing module.
        """
        for module_name, facts in consumed.items():
            for callee in sorted(facts.callees):
                producer = routine_module.get(callee)
                if producer:
                    self.deps.add(module_name, producer, KIND_FACT,
                                  item=callee)
            for global_name in sorted(facts.globals):
                if symtab.has_global(global_name):
                    producer = symtab.lookup_global(global_name).defining_module
                    if producer:
                        self.deps.add(module_name, producer, KIND_GLOBAL,
                                      item=global_name)

    def record_dfe(self, removed_by_module: Dict[str, List[str]]) -> None:
        self.dfe_removed = dict(removed_by_module)

    # -- Reuse decision -------------------------------------------------------------

    def decide_reuse(self, module_keys: Dict[str, str]) -> Set[str]:
        """Modules whose cached codegen blob matches the exact key.

        The blob is decoded *now*: a module is only reused once its
        machine routines are in hand, so a corrupt or missing blob
        degrades to a fresh compile instead of a broken skip.
        """
        self.module_keys = dict(module_keys)
        self.reused_modules = set()
        self.cached_machines = {}
        for module_name, key in module_keys.items():
            machines = self.state.load_machines(key)
            if machines is None:
                continue
            self.reused_modules.add(module_name)
            self.cached_machines[module_name] = {
                machine.name: machine for machine in machines
            }
        return self.reused_modules


class IncrementalState:
    """Summary/dep/codegen state persisted across CMO links."""

    def __init__(self, directory: Optional[str] = None) -> None:
        self.repository = Repository(
            directory=directory, in_memory=directory is None
        )
        #: Previous build's summaries, serialized form.
        self.summaries: Dict[str, dict] = {}
        self.deps = CrossModuleDeps()
        self.module_keys: Dict[str, str] = {}
        self.options_fp = ""
        self.last_report: Optional[IncrLinkReport] = None
        if directory is not None:
            self.repository.reindex()
        self._load_index()

    # -- Index persistence ----------------------------------------------------------

    def _load_index(self) -> None:
        if not self.repository.contains(_INDEX_KIND, _INDEX_NAME):
            return
        try:
            data = json.loads(
                bytes(
                    self.repository.fetch(_INDEX_KIND, _INDEX_NAME)
                ).decode("utf-8")
            )
        except Exception:
            return  # unreadable state: behave like a first build
        if data.get("epoch") != PIPELINE_EPOCH or (
            data.get("format") != SUMMARY_FORMAT
        ):
            return  # older compiler version: invalidate wholesale
        self.summaries = data.get("summaries", {})
        self.deps = CrossModuleDeps.from_list(data.get("deps", []))
        self.module_keys = data.get("module_keys", {})
        self.options_fp = data.get("options_fp", "")

    def _save_index(self) -> None:
        data = {
            "epoch": PIPELINE_EPOCH,
            "format": SUMMARY_FORMAT,
            "options_fp": self.options_fp,
            "summaries": self.summaries,
            "deps": self.deps.to_list(),
            "module_keys": self.module_keys,
        }
        self.repository.store(
            _INDEX_KIND, _INDEX_NAME,
            json.dumps(data, sort_keys=True).encode("utf-8"),
        )

    # -- Machine-code blobs -----------------------------------------------------------

    def load_machines(self, key: str) -> Optional[list]:
        if not self.repository.contains(_MACHINE_KIND, key):
            return None
        try:
            return decode_machine_routines(
                self.repository.fetch(_MACHINE_KIND, key)
            )
        except Exception:
            self.repository.discard(_MACHINE_KIND, key)
            return None

    def store_machines(self, key: str, machines: list) -> None:
        self.repository.store(
            _MACHINE_KIND, key, encode_machine_routines(machines)
        )

    # -- Session lifecycle ------------------------------------------------------------

    def reset_counters(self) -> None:
        """Zero the backing repository's per-build operation counters.

        The state (and its repository) outlive individual links; the
        engine calls this at build start so fetch/store counts reported
        for one link describe that link only."""
        self.repository.reset_counters()

    def begin_link(self, modules, options_fp: str) -> IncrLinkSession:
        """Open a session for one link of ``modules`` (pre-HLO copies)."""
        session = IncrLinkSession(self, options_fp)
        session.summaries = {
            module.name: ModuleSummary.from_module(module)
            for module in modules
        }
        previous_fps = {
            name: ModuleSummary.from_dict(data).fingerprint()
            for name, data in self.summaries.items()
        }
        session.first_build = (
            not previous_fps or options_fp != self.options_fp
        )
        changed = [
            name for name, summary in session.summaries.items()
            if previous_fps.get(name) != summary.fingerprint()
        ]
        dropped = [
            name for name in previous_fps if name not in session.summaries
        ]
        session.changed_modules = sorted(changed)
        if session.first_build:
            session.predicted_dirty = sorted(session.summaries)
        else:
            dirty = self.deps.dirty_modules(changed + dropped)
            session.predicted_dirty = sorted(
                dirty & set(session.summaries)
            )
        return session

    def commit(self, session: IncrLinkSession) -> IncrLinkReport:
        """Persist the session's outcome; returns the link report."""
        for module_name, machines in session.fresh_machines.items():
            key = session.module_keys.get(module_name)
            if key is not None:
                self.store_machines(key, machines)

        for module_name, facts_dicts in session.module_facts.items():
            summary = session.summaries.get(module_name)
            if summary is None:
                continue
            self.repository.store(
                _FACTS_KIND, module_name,
                json.dumps({
                    "format": SUMMARY_FORMAT,
                    "fingerprint": summary.fingerprint(),
                    "routines": facts_dicts,
                }, sort_keys=True).encode("utf-8"),
            )
        for kind, name in list(self.repository._known):
            if kind == _FACTS_KIND and name not in session.summaries:
                self.repository.discard(kind, name)

        self.summaries = {
            name: summary.to_dict()
            for name, summary in session.summaries.items()
        }
        self.deps = session.deps
        self.module_keys = dict(session.module_keys)
        self.options_fp = session.options_fp
        self._save_index()
        self._prune_machines()

        report = IncrLinkReport()
        report.first_build = session.first_build
        report.changed_modules = session.changed_modules
        report.predicted_dirty = session.predicted_dirty
        report.reused = sorted(session.reused_modules)
        report.reoptimized = sorted(
            name for name in session.module_keys
            if name not in session.reused_modules
        )
        report.edge_counts = session.deps.by_kind()
        report.dfe_removed = session.dfe_removed
        self.last_report = report
        return report

    def _prune_machines(self) -> None:
        """Drop codegen blobs no current module key references.

        On pack segments a discard only tombstones the frame; once
        enough dead bytes accumulate, fold them out so the on-disk
        state does not grow monotonically across incremental builds.
        """
        live = set(self.module_keys.values())
        for kind, name in list(self.repository._known):
            if kind == _MACHINE_KIND and name not in live:
                self.repository.discard(kind, name)
        self.repository.maybe_compact()

    def close(self) -> None:
        self.repository.close()

    def __repr__(self) -> str:
        return "<IncrementalState %d modules, %d deps, %d cached blobs>" % (
            len(self.summaries), len(self.deps),
            sum(1 for kind, _ in self.repository._known
                if kind == _MACHINE_KIND),
        )
