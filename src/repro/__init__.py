"""repro: reproduction of "Scalable Cross-Module Optimization"
(Ayers, de Jong, Peyton, Schooler -- PLDI 1998).

The package implements the paper's production CMO framework end to
end: an MLL frontend lowering to a common IL, the NAIM not-all-in-
memory model (compaction, PID swizzling, disk repository, thresholded
loader), profile-based selectivity, the HLO interprocedural optimizer,
the LLO code generator, a profile-clustering linker, and a functional
virtual machine with a cycle model -- plus the synthetic-application
generator and the benchmark harness that regenerate the paper's
figures.

Quickstart::

    from repro import Compiler, CompilerOptions, train
    from repro.synth import generate, tiny_config

    app = generate(tiny_config())
    profile = train(app.sources, [app.make_input(seed=1)])
    build = Compiler(CompilerOptions(opt_level=4, pbo=True)).build(
        app.sources, profile_db=profile)
    print(build.run(inputs=app.make_input(seed=2)))

See README.md for the architecture tour and DESIGN.md for the
paper-to-module map.
"""

from .driver.build import BuildEngine, BuildError, RebuildReport
from .driver.compiler import BuildResult, Compiler, train
from .driver.options import CompilerOptions
from .driver.selectivity import SelectivityPlan, plan_selectivity
from .frontend import compile_source, compile_sources
from .hlo.driver import HighLevelOptimizer, HloResult
from .hlo.options import HloOptions
from .incr import IncrementalState, IncrLinkReport, ModuleSummary
from .interp import Interpreter, run_program
from .ir import Module, Program, Routine
from .linker.objects import ObjectFile
from .naim.config import NaimConfig, NaimLevel
from .profiles.database import ProfileDatabase
from .sched import ArtifactCache, EventLog, Executor, TaskGraph
from .triage import isolate_failing_modules, isolate_inline_operation
from .vm.cost import CostModel
from .vm.machine import Machine, MachineResult, run_image

__version__ = "1.0.0"

__all__ = [
    "BuildEngine",
    "BuildError",
    "RebuildReport",
    "ArtifactCache",
    "EventLog",
    "Executor",
    "TaskGraph",
    "BuildResult",
    "Compiler",
    "train",
    "CompilerOptions",
    "SelectivityPlan",
    "plan_selectivity",
    "compile_source",
    "compile_sources",
    "HighLevelOptimizer",
    "HloResult",
    "HloOptions",
    "IncrementalState",
    "IncrLinkReport",
    "ModuleSummary",
    "Interpreter",
    "run_program",
    "Module",
    "Program",
    "Routine",
    "ObjectFile",
    "NaimConfig",
    "NaimLevel",
    "ProfileDatabase",
    "isolate_failing_modules",
    "isolate_inline_operation",
    "CostModel",
    "Machine",
    "MachineResult",
    "run_image",
    "__version__",
]
