"""The client/daemon wire protocol.

Newline-delimited JSON over a UNIX-domain stream socket.  Each
connection carries exactly one request and its responses:

* client -> daemon: one **request** line
  ``{"v": 1, "id": "...", "op": "...", "options": {...}}``;
* daemon -> client: zero or more **progress** lines
  ``{"id": ..., "event": "progress", "phase": ..., ...}``
  followed by exactly one **result** line
  ``{"id": ..., "event": "result", "ok": true, "result": {...}}`` or
  ``{"id": ..., "event": "result", "ok": false,
  "error": {"code": ..., "message": ...}}``.

Binary payloads (linked images) travel base64-encoded under ``_b64``
keys.  Lines are UTF-8 and bounded by :data:`MAX_LINE_BYTES`, so a
corrupt or hostile peer cannot make either side buffer unboundedly.
"""

from __future__ import annotations

import base64
import json
import uuid
from typing import Dict, Optional

#: Protocol version; a daemon rejects requests whose ``v`` it does not
#: speak, so mixed-version client/daemon pairs fail loudly.
PROTOCOL_VERSION = 1

#: Upper bound on one protocol line (sources and images for very large
#: programs still fit comfortably; runaway peers do not).
MAX_LINE_BYTES = 256 * 1024 * 1024

#: Request operations the daemon serves.
OP_BUILD = "build"
OP_TRAIN = "train"
OP_OBJDUMP = "objdump"
OP_PROFILE_INGEST = "profile-ingest"
OP_STATUS = "status"
OP_PING = "ping"
OP_SHUTDOWN = "shutdown"

#: Ops that run as admitted build sessions (vs control-plane ops that
#: answer immediately).  ``profile-ingest`` is a session op because a
#: controller decision may trigger a re-optimizing build.
SESSION_OPS = (OP_BUILD, OP_TRAIN, OP_OBJDUMP, OP_PROFILE_INGEST)

# -- Error codes -------------------------------------------------------------------

#: Admission control rejected the request: the daemon is at its
#: concurrent-session limit and its queue is full.
ERR_BUSY = "ServerBusy"
#: The daemon is drain-shutting-down and accepts no new sessions.
ERR_DRAINING = "ServerDraining"
#: The request was malformed (bad JSON, unknown op, missing fields).
ERR_BAD_REQUEST = "BadRequest"
#: The build/train/objdump itself failed; ``message`` carries the
#: compiler diagnostic.
ERR_FAILED = "RequestFailed"
#: The per-request timeout elapsed before the session finished.
ERR_TIMEOUT = "Timeout"
#: Anything unexpected inside the daemon.
ERR_INTERNAL = "Internal"
#: One incoming protocol line exceeded the receiver's line limit.
ERR_LINE_TOO_LONG = "LineTooLong"


class ProtocolError(Exception):
    """A malformed, oversized or truncated protocol line."""


class LineTooLongError(ProtocolError):
    """One incoming line exceeded ``max_bytes``.

    The oversized line has been consumed (drained) when this is
    raised, so the stream is back in sync: the receiver can still
    answer with a structured ``LineTooLong`` error instead of leaving
    the peer to diagnose a bare disconnect."""

    def __init__(self, limit: int) -> None:
        super().__init__(
            "incoming line exceeds the %d-byte limit" % limit
        )
        self.limit = limit


def new_request_id() -> str:
    return uuid.uuid4().hex[:12]


def encode_bytes(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def decode_bytes(text: str) -> bytes:
    return base64.b64decode(text.encode("ascii"))


# -- Message constructors ------------------------------------------------------------


def make_request(op: str, options: Optional[Dict] = None,
                 request_id: Optional[str] = None) -> Dict:
    return {
        "v": PROTOCOL_VERSION,
        "id": request_id or new_request_id(),
        "op": op,
        "options": options or {},
    }


def make_progress(request_id: str, phase: str, **fields) -> Dict:
    message = {"id": request_id, "event": "progress", "phase": phase}
    message.update(fields)
    return message


def make_result(request_id: str, result: Dict) -> Dict:
    return {"id": request_id, "event": "result", "ok": True,
            "result": result}


def make_error(request_id: str, code: str, message: str,
               **fields) -> Dict:
    error = {"code": code, "message": message}
    error.update(fields)
    return {"id": request_id, "event": "result", "ok": False,
            "error": error}


# -- Framing -----------------------------------------------------------------------


def write_message(stream, message: Dict,
                  max_bytes: Optional[int] = None) -> None:
    """Serialize one message as a single NDJSON line and flush it.

    Key order is preserved, never sorted: module order inside
    ``options.sources`` is the link layout order, and reordering it in
    transit would change the built image."""
    if max_bytes is None:
        max_bytes = MAX_LINE_BYTES
    line = json.dumps(message, separators=(",", ":"))
    data = line.encode("utf-8")
    if len(data) + 1 > max_bytes:
        raise ProtocolError(
            "outgoing message of %d bytes exceeds the %d-byte line limit"
            % (len(data), max_bytes)
        )
    stream.write(data + b"\n")
    stream.flush()


def _drain_line(stream, max_bytes: int) -> None:
    """Consume the rest of an oversized line (bounded reads) so the
    stream stays in sync and the peer's blocked ``sendall`` completes
    instead of deadlocking against our full receive buffer."""
    while True:
        chunk = stream.readline(max_bytes)
        if not chunk or chunk.endswith(b"\n"):
            return


def read_message(stream,
                 max_bytes: Optional[int] = None) -> Optional[Dict]:
    """Read one NDJSON line; None on clean EOF.

    Raises :class:`LineTooLongError` on oversized lines (after
    draining them, so the caller can still send a structured error)
    and :class:`ProtocolError` on truncated final lines, undecodable
    bytes or non-object payloads.
    """
    if max_bytes is None:
        max_bytes = MAX_LINE_BYTES
    line = stream.readline(max_bytes + 1)
    if not line:
        return None
    if len(line) > max_bytes:
        if not line.endswith(b"\n"):
            _drain_line(stream, max_bytes)
        raise LineTooLongError(max_bytes)
    if not line.endswith(b"\n"):
        raise ProtocolError("truncated message (no trailing newline)")
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("undecodable message: %s" % exc)
    if not isinstance(message, dict):
        raise ProtocolError(
            "expected a JSON object, got %s" % type(message).__name__
        )
    return message


def validate_request(message: Dict) -> None:
    """Check the request envelope; raises :class:`ProtocolError`."""
    version = message.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            "unsupported protocol version %r (daemon speaks %d)"
            % (version, PROTOCOL_VERSION)
        )
    if not isinstance(message.get("id"), str) or not message["id"]:
        raise ProtocolError("request is missing a string 'id'")
    op = message.get("op")
    if op not in SESSION_OPS + (OP_STATUS, OP_PING, OP_SHUTDOWN):
        raise ProtocolError("unknown op %r" % op)
    if not isinstance(message.get("options", {}), dict):
        raise ProtocolError("'options' must be an object")
