"""Client side of the build daemon: connect, request, stream, decode.

:class:`DaemonClient` is deliberately light -- stdlib sockets plus the
wire helpers in :mod:`.protocol` -- so importing it costs nothing when
no daemon is running (``build --daemon`` pings first and falls back to
the in-process compiler).

The socket path is resolved from ``$REPRO_SERVE_SOCKET``, else
``<root>/daemon.sock`` under ``$REPRO_SERVE_ROOT`` or the default
per-user root.  Client and daemon agree on these rules, so "start a
daemon, then build with ``--daemon``" needs no explicit wiring.
"""

from __future__ import annotations

import os
import socket
import tempfile
from typing import Callable, Dict, Optional

from .protocol import (
    OP_BUILD,
    OP_OBJDUMP,
    OP_PING,
    OP_PROFILE_INGEST,
    OP_SHUTDOWN,
    OP_STATUS,
    OP_TRAIN,
    ProtocolError,
    decode_bytes,
    make_request,
    read_message,
    write_message,
)

#: How long `available()` waits for a ping before declaring no daemon.
PING_TIMEOUT = 2.0


def default_root() -> str:
    """The daemon's state root (warm caches, socket, pidfile)."""
    root = os.environ.get("REPRO_SERVE_ROOT")
    if root:
        return root
    return os.path.join(
        tempfile.gettempdir(), "repro-serve-%d" % os.getuid()
    )


def default_socket_path() -> str:
    path = os.environ.get("REPRO_SERVE_SOCKET")
    if path:
        return path
    return os.path.join(default_root(), "daemon.sock")


def pidfile_path(root: Optional[str] = None) -> str:
    return os.path.join(root or default_root(), "daemon.pid")


class DaemonError(Exception):
    """Any failure talking to the daemon; ``code`` carries the
    protocol error code when the daemon answered with one."""

    def __init__(self, message: str, code: Optional[str] = None) -> None:
        super().__init__(message)
        self.code = code


def build_options_from_args(args, sources: Dict[str, str]) -> Dict:
    """Wire build options for one ``repro.driver build`` invocation.

    Sources travel by value; the profile travels by path (client and
    daemon share a machine -- the socket is UNIX-domain)."""
    options: Dict = {
        "sources": sources,
        "opt_level": args.opt_level,
        "jobs": args.jobs,
        "hlo_jobs": args.hlo_jobs,
        "hlo_backend": getattr(args, "hlo_backend", "auto"),
        "wpa_mode": getattr(args, "wpa_mode", "auto"),
        "checked": bool(args.checked),
        "incremental": bool(getattr(args, "incremental", False)),
        "repo_compress": getattr(args, "repo_compress", 6),
        "repo_segment_mb": getattr(args, "repo_segment_mb", 8),
        "prefetch_depth": getattr(args, "prefetch_depth", 1),
        "profile_hot": bool(getattr(args, "profile_hot", False)),
    }
    if args.partitions is not None:
        options["partitions"] = args.partitions
    if args.selectivity is not None:
        options["selectivity"] = args.selectivity
    if args.profile:
        options["profile_path"] = os.path.abspath(args.profile)
    if getattr(args, "state_dir", None) is not None:
        options["state_dir"] = os.path.abspath(args.state_dir)
    if getattr(args, "profile_feed", None):
        options["profile_feed"] = args.profile_feed
    return options


class DaemonClient:
    """One client of a running build daemon.

    Each request opens one connection, sends one request line, and
    consumes progress lines until the result line.  ``on_progress``
    (if set) receives each progress message."""

    def __init__(self, socket_path: Optional[str] = None,
                 timeout: Optional[float] = None,
                 on_progress: Optional[Callable[[Dict], None]] = None):
        self.socket_path = socket_path or default_socket_path()
        self.timeout = timeout
        self.on_progress = on_progress

    @classmethod
    def from_env(cls, **kwargs) -> "DaemonClient":
        return cls(default_socket_path(), **kwargs)

    # -- Plumbing ---------------------------------------------------------------

    def _connect(self, timeout: Optional[float]) -> socket.socket:
        conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        conn.settimeout(timeout)
        try:
            conn.connect(self.socket_path)
        except OSError as exc:
            conn.close()
            raise DaemonError(
                "cannot connect to daemon at %s: %s"
                % (self.socket_path, exc)
            )
        return conn

    def request(self, op: str, options: Optional[Dict] = None,
                timeout: Optional[float] = None) -> Dict:
        """Send one request; returns the daemon's ``result`` payload.

        Raises :class:`DaemonError` (with the protocol error code) on
        a structured failure, connection trouble, or a malformed
        stream."""
        timeout = timeout if timeout is not None else self.timeout
        conn = self._connect(timeout)
        try:
            stream = conn.makefile("rwb")
            try:
                write_message(stream, make_request(op, options))
                while True:
                    try:
                        message = read_message(stream)
                    except ProtocolError as exc:
                        raise DaemonError("bad daemon response: %s" % exc)
                    if message is None:
                        raise DaemonError(
                            "daemon closed the connection mid-request"
                        )
                    event = message.get("event")
                    if event == "progress":
                        if self.on_progress is not None:
                            self.on_progress(message)
                        continue
                    if event != "result":
                        raise DaemonError(
                            "unexpected daemon message %r" % event
                        )
                    if message.get("ok"):
                        return message.get("result", {})
                    error = message.get("error") or {}
                    raise DaemonError(
                        error.get("message", "request failed"),
                        code=error.get("code"),
                    )
            finally:
                stream.close()
        except socket.timeout:
            raise DaemonError("daemon did not answer within %ss" % timeout)
        except (BrokenPipeError, ConnectionResetError) as exc:
            raise DaemonError("connection to daemon lost: %s" % exc)
        finally:
            conn.close()

    # -- Operations --------------------------------------------------------------

    def available(self) -> bool:
        """True when a daemon answers a ping at the socket path."""
        if not os.path.exists(self.socket_path):
            return False
        try:
            return bool(self.request(OP_PING, timeout=PING_TIMEOUT)
                        .get("pong"))
        except DaemonError:
            return False

    def build(self, options: Dict,
              timeout: Optional[float] = None) -> Dict:
        """One build; returns ``summary``/``stats`` plus decoded
        ``image`` bytes."""
        result = self.request(OP_BUILD, options, timeout=timeout)
        out = dict(result)
        out["image"] = decode_bytes(out.pop("image_b64", ""))
        return out

    def train(self, options: Dict,
              timeout: Optional[float] = None) -> Dict:
        return self.request(OP_TRAIN, options, timeout=timeout)

    def profile_ingest(self, options: Dict,
                       timeout: Optional[float] = None) -> Dict:
        """Feed profile batches; returns ingest stats and, when the
        selectivity controller triggered a re-optimization, the rebuilt
        image (``image_b64``) plus the reused/reoptimized module lists."""
        return self.request(OP_PROFILE_INGEST, options, timeout=timeout)

    def objdump(self, options: Dict,
                timeout: Optional[float] = None) -> Dict:
        return self.request(OP_OBJDUMP, options, timeout=timeout)

    def status(self, timeout: Optional[float] = 5.0) -> Dict:
        return self.request(OP_STATUS, timeout=timeout)

    def shutdown(self, timeout: Optional[float] = 5.0) -> Dict:
        """Ask the daemon to drain and exit."""
        return self.request(OP_SHUTDOWN, timeout=timeout)
