"""repro-serve: manage the build daemon from the command line.

::

    python -m repro.serve start            # spawn a daemon, wait for it
    python -m repro.serve status           # one-line + JSON status
    python -m repro.serve ingest batches.json --feed app
    python -m repro.serve stop             # graceful drain + exit
    python -m repro.serve run              # serve in the foreground

``start`` forks a detached ``run`` and waits for the socket to answer;
``stop`` asks for a drain over the socket, falling back to SIGTERM via
the pidfile.  Socket and state-root default from ``$REPRO_SERVE_*``
(see :mod:`repro.serve.client`), so a plain
``python -m repro.driver build --daemon`` finds the daemon unaided.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time

from .client import (
    DaemonClient,
    DaemonError,
    default_root,
    default_socket_path,
    pidfile_path,
)
from .daemon import run_daemon


def _add_paths(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--socket", default=None, metavar="PATH",
        help="UNIX socket path (default: $REPRO_SERVE_SOCKET or "
             "<root>/daemon.sock)",
    )
    parser.add_argument(
        "--root", default=None, metavar="DIR",
        help="state root for warm caches, pidfile and logs "
             "(default: $REPRO_SERVE_ROOT or a per-user tmp dir)",
    )


def _add_limits(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--max-sessions", type=int, default=2, metavar="N",
        help="concurrent build sessions before requests queue",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=4, metavar="N",
        help="queued requests before new ones get ServerBusy",
    )
    parser.add_argument(
        "--request-timeout", type=float, default=None, metavar="SECONDS",
        help="per-request wall-clock budget (default: unlimited)",
    )


def _client(args: argparse.Namespace) -> DaemonClient:
    return DaemonClient(args.socket or default_socket_path())


def cmd_run(args: argparse.Namespace) -> int:
    if args.max_sessions < 1 or args.queue_depth < 0:
        raise SystemExit(
            "--max-sessions must be >= 1 and --queue-depth >= 0"
        )
    return run_daemon(
        socket_path=args.socket, state_root=args.root,
        max_sessions=args.max_sessions, queue_depth=args.queue_depth,
        request_timeout=args.request_timeout,
    )


def cmd_start(args: argparse.Namespace) -> int:
    client = _client(args)
    if client.available():
        print("daemon already running on %s" % client.socket_path)
        return 0
    root = os.path.abspath(args.root or default_root())
    os.makedirs(root, exist_ok=True)
    log_path = os.path.join(root, "daemon.log")
    command = [sys.executable, "-m", "repro.serve", "run",
               "--max-sessions", str(args.max_sessions),
               "--queue-depth", str(args.queue_depth),
               "--root", root]
    if args.socket:
        command += ["--socket", args.socket]
    if args.request_timeout is not None:
        command += ["--request-timeout", str(args.request_timeout)]
    with open(log_path, "ab") as log:
        process = subprocess.Popen(
            command, stdout=log, stderr=log,
            stdin=subprocess.DEVNULL, start_new_session=True,
        )
    deadline = time.time() + args.wait
    while time.time() < deadline:
        if process.poll() is not None:
            print("daemon exited during startup (code %d); see %s"
                  % (process.returncode, log_path), file=sys.stderr)
            return 1
        if client.available():
            print("daemon started: pid %d on %s (log: %s)"
                  % (process.pid, client.socket_path, log_path))
            return 0
        time.sleep(0.1)
    print("daemon did not answer within %.0fs; see %s"
          % (args.wait, log_path), file=sys.stderr)
    return 1


def cmd_stop(args: argparse.Namespace) -> int:
    client = _client(args)
    root = os.path.abspath(args.root or default_root())
    pidfile = pidfile_path(root)
    stopped_via = None
    if client.available():
        try:
            client.shutdown()
            stopped_via = "drain request"
        except DaemonError:
            pass
    if stopped_via is None and os.path.exists(pidfile):
        try:
            with open(pidfile, "r", encoding="utf-8") as handle:
                pid = int(handle.read().strip())
            os.kill(pid, signal.SIGTERM)
            stopped_via = "SIGTERM to pid %d" % pid
        except (OSError, ValueError):
            pass
    if stopped_via is None:
        print("no daemon running on %s" % client.socket_path)
        return 0
    deadline = time.time() + args.wait
    while time.time() < deadline:
        if (not os.path.exists(client.socket_path)
                and not os.path.exists(pidfile)):
            print("daemon stopped (%s)" % stopped_via)
            return 0
        time.sleep(0.1)
    print("daemon still shutting down after %.0fs (%s)"
          % (args.wait, stopped_via), file=sys.stderr)
    return 1


def cmd_status(args: argparse.Namespace) -> int:
    client = _client(args)
    try:
        status = client.status()
    except DaemonError as exc:
        print("no daemon on %s (%s)" % (client.socket_path, exc))
        return 1
    admission = status.get("admission", {})
    print("daemon pid %s on %s: %d builds served, %d/%d sessions "
          "active, %d rejected%s"
          % (status.get("pid"), status.get("socket"),
             status.get("builds_served", 0),
             admission.get("active", 0),
             admission.get("max_sessions", 0),
             admission.get("rejected", 0),
             " [draining]" if status.get("draining") else ""))
    profiles = status.get("profiles") or {}
    for name, feed in sorted((profiles.get("feeds") or {}).items()):
        decision = feed.get("last_decision") or {}
        print("feed %s: %d batches (%d samples), epoch %d, "
              "%d routines (%d stale, %d decayed), %d reopts, "
              "controller %s@%s"
              % (name, feed.get("batches", 0), feed.get("samples", 0),
                 feed.get("epoch", 0), feed.get("routines", 0),
                 feed.get("routines_stale", 0),
                 feed.get("routines_decayed", 0),
                 feed.get("reoptimizations", 0),
                 decision.get("mode", "idle"),
                 decision.get("percent", "-")))
    print(json.dumps(status, indent=2, sort_keys=True))
    return 0


def cmd_ingest(args: argparse.Namespace) -> int:
    with open(args.batches, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, list):
        print("batch file must hold a JSON list of batch objects",
              file=sys.stderr)
        return 2
    client = _client(args)
    options = {
        "feed": args.feed,
        "batches": payload,
        "reoptimize": not args.no_reoptimize,
    }
    try:
        result = client.profile_ingest(options, timeout=args.timeout)
    except DaemonError as exc:
        print("ingest failed: %s" % exc, file=sys.stderr)
        return 1
    decision = result.get("decision") or {}
    print("feed %s: accepted %d batch(es) (%d duplicate), epoch %d, "
          "%d routines (+%d new, %d stale)"
          % (result.get("feed"), result.get("accepted", 0),
             result.get("duplicates", 0), result.get("epoch", 0),
             result.get("routines", 0), result.get("created", 0),
             result.get("stale", 0)))
    if decision:
        print("controller: %s -> %s%% (%s)"
              % (decision.get("mode"), decision.get("percent"),
                 decision.get("reason")))
    if result.get("rebuilt"):
        print("rebuilt: %d reoptimized, %d reused module(s)"
              % (len(result.get("reoptimized", [])),
                 len(result.get("reused", []))))
        if args.emit_image:
            from .protocol import decode_bytes
            image = decode_bytes(result.get("image_b64", ""))
            with open(args.emit_image, "wb") as handle:
                handle.write(image)
            print("wrote %d-byte image to %s"
                  % (len(image), args.emit_image))
    else:
        print("rebuilt: no")
    if args.json:
        result = dict(result)
        result.pop("image_b64", None)
        print(json.dumps(result, indent=2, sort_keys=True))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="persistent warm-state build daemon",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="serve in the foreground (SIGTERM drains)"
    )
    _add_paths(run_parser)
    _add_limits(run_parser)
    run_parser.set_defaults(func=cmd_run)

    start_parser = subparsers.add_parser(
        "start", help="spawn a detached daemon and wait for it"
    )
    _add_paths(start_parser)
    _add_limits(start_parser)
    start_parser.add_argument(
        "--wait", type=float, default=15.0, metavar="SECONDS",
        help="how long to wait for the daemon to answer",
    )
    start_parser.set_defaults(func=cmd_start)

    stop_parser = subparsers.add_parser(
        "stop", help="drain and stop a running daemon"
    )
    _add_paths(stop_parser)
    stop_parser.add_argument(
        "--wait", type=float, default=15.0, metavar="SECONDS",
        help="how long to wait for the drain to finish",
    )
    stop_parser.set_defaults(func=cmd_stop)

    status_parser = subparsers.add_parser(
        "status", help="query a running daemon"
    )
    _add_paths(status_parser)
    status_parser.set_defaults(func=cmd_status)

    ingest_parser = subparsers.add_parser(
        "ingest",
        help="feed fleet profile batches to a running daemon",
    )
    _add_paths(ingest_parser)
    ingest_parser.add_argument(
        "batches",
        help="JSON file holding a list of batch objects "
             "(see `python -m repro.profserve simulate`)",
    )
    ingest_parser.add_argument(
        "--feed", required=True, metavar="NAME",
        help="profile feed to merge into (matches the build's "
             "--profile-feed)",
    )
    ingest_parser.add_argument(
        "--no-reoptimize", action="store_true",
        help="merge only; suppress any controller-triggered rebuild",
    )
    ingest_parser.add_argument(
        "--emit-image", default=None, metavar="PATH",
        help="write the rebuilt image here when a rebuild happened",
    )
    ingest_parser.add_argument(
        "--json", action="store_true",
        help="also dump the full ingest result as JSON",
    )
    ingest_parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
    )
    ingest_parser.set_defaults(func=cmd_ingest)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
