"""The build daemon: warm state behind a UNIX socket.

One :class:`BuildDaemon` owns a :class:`~repro.serve.state.WarmState`
and listens on a UNIX-domain stream socket.  Each connection carries
one request (see :mod:`.protocol`); session ops (build/train/objdump)
pass through an :class:`AdmissionGate` that bounds concurrency and
queue depth, rejecting the overflow with ``ServerBusy`` instead of
letting latency collapse.

Lifecycle:

* **boot** -- re-validates the state root, reclaims a stale socket and
  pidfile if their owner is dead (``kill(pid, 0)`` plus a live ping),
  and refuses to start over a live daemon;
* **serve** -- a thread per connection; build work runs in a separate
  worker thread so the connection thread can stream heartbeat progress
  (which doubles as disconnect detection) and enforce the per-request
  timeout;
* **drain** -- on SIGTERM (or a ``shutdown`` request) the daemon stops
  accepting sessions, answers new ones with ``ServerDraining``,
  finishes the active ones, then removes the socket and pidfile.

A client that disconnects mid-build costs nothing but the build
already in flight: streaming stops, the result is discarded, and the
admission slot is released when the worker finishes.
"""

from __future__ import annotations

import os
import signal
import socket
import sys
import threading
import time
from typing import Dict, Optional

from .client import default_root, default_socket_path, pidfile_path
from .protocol import (
    ERR_BUSY,
    ERR_DRAINING,
    ERR_INTERNAL,
    ERR_LINE_TOO_LONG,
    ERR_TIMEOUT,
    ERR_BAD_REQUEST,
    OP_PING,
    OP_SHUTDOWN,
    OP_STATUS,
    SESSION_OPS,
    LineTooLongError,
    ProtocolError,
    make_error,
    make_progress,
    make_result,
    read_message,
    validate_request,
    write_message,
)
from .state import RequestError, WarmState


class DaemonStartupError(Exception):
    """The daemon could not take ownership of its socket/pidfile."""


class AdmissionGate:
    """Bounded admission: at most ``max_sessions`` running and
    ``queue_depth`` waiting; everything past that is rejected
    immediately (the caller answers ``ServerBusy``).

    ``try_acquire`` returns the queue wait in seconds when admitted
    and ``None`` when rejected; every admit must be paired with one
    ``release`` -- by whoever finishes the work, even after the
    connection that requested it has given up."""

    def __init__(self, max_sessions: int = 2, queue_depth: int = 4) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if queue_depth < 0:
            raise ValueError("queue_depth must be >= 0")
        self.max_sessions = max_sessions
        self.queue_depth = queue_depth
        self._cond = threading.Condition()
        self.active = 0
        self.waiting = 0
        self.admitted = 0
        self.rejected = 0
        self.peak_active = 0

    def try_acquire(self,
                    timeout: Optional[float] = None) -> Optional[float]:
        start = time.monotonic()
        deadline = None if timeout is None else start + timeout
        with self._cond:
            if (self.active >= self.max_sessions
                    and self.waiting >= self.queue_depth):
                self.rejected += 1
                return None
            self.waiting += 1
            try:
                while self.active >= self.max_sessions:
                    remaining = (None if deadline is None
                                 else deadline - time.monotonic())
                    if remaining is not None and remaining <= 0:
                        self.rejected += 1
                        return None
                    self._cond.wait(timeout=remaining)
                self.active += 1
                self.admitted += 1
                self.peak_active = max(self.peak_active, self.active)
            finally:
                self.waiting -= 1
        return time.monotonic() - start

    def release(self) -> None:
        with self._cond:
            if self.active <= 0:
                raise RuntimeError("release() without a matching acquire")
            self.active -= 1
            self._cond.notify()

    def stats(self) -> Dict[str, int]:
        with self._cond:
            return {
                "max_sessions": self.max_sessions,
                "queue_depth": self.queue_depth,
                "active": self.active,
                "waiting": self.waiting,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "peak_active": self.peak_active,
            }


def _peer_alive(socket_path: str, timeout: float = 1.0) -> bool:
    """True when something accepts connections at ``socket_path``."""
    conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    conn.settimeout(timeout)
    try:
        conn.connect(socket_path)
        return True
    except OSError:
        return False
    finally:
        conn.close()


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


class BuildDaemon:
    """Serves warm builds over a UNIX-domain socket."""

    def __init__(self, socket_path: Optional[str] = None,
                 state_root: Optional[str] = None,
                 max_sessions: int = 2,
                 queue_depth: int = 4,
                 queue_timeout: float = 30.0,
                 request_timeout: Optional[float] = None,
                 heartbeat_seconds: float = 0.25) -> None:
        self.state_root = os.path.abspath(state_root or default_root())
        self.socket_path = socket_path or default_socket_path()
        self.pidfile = pidfile_path(self.state_root)
        self.gate = AdmissionGate(max_sessions, queue_depth)
        #: How long an admitted-but-queued request may wait for a slot.
        self.queue_timeout = queue_timeout
        #: Wall-clock budget for one session op (None = unlimited).
        self.request_timeout = request_timeout
        self.heartbeat_seconds = heartbeat_seconds
        self.state = self._make_state()
        self.requests_served = 0
        self.disconnects = 0
        self.timeouts = 0
        self._draining = threading.Event()
        self._stopped = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._conn_threads: set = set()
        self._threads_lock = threading.Lock()

    def _make_state(self) -> WarmState:
        """Hook: subclasses substitute their own warm state."""
        return WarmState(self.state_root)

    # -- Socket/pidfile ownership ---------------------------------------------------

    def _reclaim_stale(self) -> None:
        """Take over a dead predecessor's socket and pidfile.

        A live predecessor (its pid runs *and* its socket answers)
        makes startup fail loudly instead of stealing the socket."""
        pid = None
        if os.path.exists(self.pidfile):
            try:
                with open(self.pidfile, "r", encoding="utf-8") as handle:
                    pid = int(handle.read().strip())
            except (OSError, ValueError):
                pid = None
        socket_exists = os.path.exists(self.socket_path)
        if pid is not None and _pid_alive(pid):
            if socket_exists and _peer_alive(self.socket_path):
                raise DaemonStartupError(
                    "a daemon (pid %d) already serves %s"
                    % (pid, self.socket_path)
                )
            # The pid is alive but not answering: most likely a pid
            # reused by an unrelated process after a crash.  The dead
            # socket confirms it; reclaim.
        for stale in (self.socket_path, self.pidfile):
            try:
                os.unlink(stale)
            except OSError:
                pass

    def bind(self) -> None:
        """Claim the socket and pidfile; must precede ``serve``."""
        os.makedirs(self.state_root, exist_ok=True)
        os.makedirs(os.path.dirname(self.socket_path) or ".",
                    exist_ok=True)
        self._reclaim_stale()
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            listener.bind(self.socket_path)
        except OSError as exc:
            listener.close()
            raise DaemonStartupError(
                "cannot bind %s: %s" % (self.socket_path, exc)
            )
        listener.listen(16)
        listener.settimeout(0.2)
        self._listener = listener
        with open(self.pidfile, "w", encoding="utf-8") as handle:
            handle.write("%d\n" % os.getpid())

    # -- Serving ---------------------------------------------------------------------

    def serve_forever(self) -> None:
        """Accept until shutdown; returns after the drain completes."""
        if self._listener is None:
            self.bind()
        try:
            while not self._stopped.is_set():
                try:
                    conn, _ = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                thread = threading.Thread(
                    target=self._serve_connection, args=(conn,),
                    daemon=True,
                )
                with self._threads_lock:
                    self._conn_threads.add(thread)
                thread.start()
        finally:
            self._drain()

    def request_shutdown(self) -> None:
        """Start the drain; safe from signal handlers and any thread."""
        self._draining.set()
        self._stopped.set()

    def install_signal_handlers(self) -> None:
        def _on_term(signum, frame):
            self.request_shutdown()

        signal.signal(signal.SIGTERM, _on_term)
        signal.signal(signal.SIGINT, _on_term)

    def _drain(self) -> None:
        """Finish active connections, then release socket + pidfile."""
        self._draining.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        while True:
            with self._threads_lock:
                pending = [t for t in self._conn_threads if t.is_alive()]
            if not pending:
                break
            for thread in pending:
                thread.join(timeout=1.0)
        for owned in (self.socket_path, self.pidfile):
            try:
                os.unlink(owned)
            except OSError:
                pass
        self.state.close()

    # -- One connection ----------------------------------------------------------------

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            conn.settimeout(10.0)  # an idle connect cannot pin a thread
            stream = conn.makefile("rwb")
            try:
                self._handle(stream)
            finally:
                try:
                    stream.close()
                except OSError:
                    pass
        except OSError:
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass
            with self._threads_lock:
                self._conn_threads.discard(threading.current_thread())

    def _handle(self, stream) -> None:
        try:
            message = read_message(stream)
        except LineTooLongError as exc:
            # The oversized line was drained, so this structured answer
            # actually reaches the client (previously: silent drop and
            # a diagnosis-free disconnect).
            self._send(stream, make_error(
                "?", ERR_LINE_TOO_LONG, str(exc), limit=exc.limit,
            ))
            return
        except ProtocolError as exc:
            self._send(stream, make_error("?", ERR_BAD_REQUEST, str(exc)))
            return
        if message is None:
            return
        try:
            validate_request(message)
        except ProtocolError as exc:
            self._send(stream, make_error(
                str(message.get("id", "?")), ERR_BAD_REQUEST, str(exc)
            ))
            return
        request_id = message["id"]
        op = message["op"]
        options = message.get("options", {})
        self.requests_served += 1

        if op == OP_PING:
            self._send(stream, make_result(request_id, {
                "pong": True, "pid": os.getpid(),
                "draining": self._draining.is_set(),
            }))
            return
        if op == OP_STATUS:
            self._send(stream, make_result(request_id, self.status()))
            return
        if op == OP_SHUTDOWN:
            self._send(stream, make_result(request_id, {"stopping": True}))
            self.request_shutdown()
            return
        # Session ops from here on.
        if self._draining.is_set():
            self._send(stream, make_error(
                request_id, ERR_DRAINING,
                "daemon is draining for shutdown",
            ))
            return
        queue_wait = self.gate.try_acquire(timeout=self.queue_timeout)
        if queue_wait is None:
            self._send(stream, make_error(
                request_id, ERR_BUSY,
                "daemon at capacity (%d active, %d queued)"
                % (self.gate.max_sessions, self.gate.queue_depth),
            ))
            return
        self._run_session(stream, request_id, op, options, queue_wait)

    def _run_session(self, stream, request_id: str, op: str,
                     options: Dict, queue_wait: float) -> None:
        """Run one admitted op in a worker; stream heartbeats.

        The connection thread owns the socket: it forwards progress,
        sends a heartbeat every ``heartbeat_seconds`` (whose failure
        detects a vanished client), and enforces ``request_timeout``.
        The admission slot is released by the worker's ``finally`` --
        only when the work truly finished -- so a timed-out or
        abandoned build cannot let more than ``max_sessions`` builds
        run at once."""
        send_lock = threading.Lock()
        client_gone = threading.Event()
        done = threading.Event()
        box: Dict[str, object] = {}

        def deliver(message: Dict) -> bool:
            if client_gone.is_set():
                return False
            with send_lock:
                try:
                    write_message(stream, message)
                    return True
                except (OSError, ValueError):
                    client_gone.set()
                    self.disconnects += 1
                    return False

        def progress(phase: str, **fields) -> None:
            deliver(make_progress(request_id, phase, **fields))

        def work() -> None:
            try:
                box["result"] = self.state.execute(
                    op, options, progress=progress
                )
            except RequestError as exc:
                box["error"] = exc
            except Exception as exc:  # noqa: BLE001 - daemon must not die
                box["error"] = RequestError(
                    ERR_INTERNAL,
                    "%s: %s" % (type(exc).__name__, exc),
                )
            finally:
                done.set()
                self.gate.release()

        progress("queued", queue_wait_seconds=round(queue_wait, 6))
        worker = threading.Thread(target=work, daemon=True)
        started = time.monotonic()
        worker.start()
        while not done.wait(timeout=self.heartbeat_seconds):
            elapsed = time.monotonic() - started
            if (self.request_timeout is not None
                    and elapsed > self.request_timeout):
                self.timeouts += 1
                deliver(make_error(
                    request_id, ERR_TIMEOUT,
                    "request exceeded %.1fs" % self.request_timeout,
                ))
                return  # worker finishes in the background
            if not deliver(make_progress(
                request_id, "working",
                elapsed_seconds=round(elapsed, 3),
            )):
                return  # client hung up; discard the result
        error = box.get("error")
        if error is not None:
            deliver(make_error(request_id, error.code, str(error)))
            return
        result = box.get("result") or {}
        stats = result.get("stats")
        if isinstance(stats, dict):
            stats["queue_wait_seconds"] = round(queue_wait, 6)
        deliver(make_result(request_id, result))

    def _send(self, stream, message: Dict) -> None:
        try:
            write_message(stream, message)
        except (OSError, ValueError):
            pass

    # -- Introspection ------------------------------------------------------------------

    def status(self) -> Dict:
        status = self.state.status()
        status["pid"] = os.getpid()
        status["socket"] = self.socket_path
        status["draining"] = self._draining.is_set()
        status["requests_served"] = self.requests_served
        status["disconnects"] = self.disconnects
        status["timeouts"] = self.timeouts
        status["admission"] = self.gate.stats()
        return status


def run_daemon(socket_path: Optional[str] = None,
               state_root: Optional[str] = None,
               max_sessions: int = 2, queue_depth: int = 4,
               request_timeout: Optional[float] = None,
               log=None) -> int:
    """Foreground entry point: bind, install handlers, serve, drain."""
    daemon = BuildDaemon(
        socket_path=socket_path, state_root=state_root,
        max_sessions=max_sessions, queue_depth=queue_depth,
        request_timeout=request_timeout,
    )
    try:
        daemon.bind()
    except DaemonStartupError as exc:
        print("repro-serve: %s" % exc, file=log or sys.stderr)
        return 1
    daemon.install_signal_handlers()
    print("repro-serve: pid %d listening on %s%s"
          % (os.getpid(), daemon.socket_path,
             " (recovered from unclean shutdown)"
             if daemon.state.recovered else ""),
          file=log or sys.stderr, flush=True)
    daemon.serve_forever()
    print("repro-serve: drained and stopped", file=log or sys.stderr,
          flush=True)
    return 0
