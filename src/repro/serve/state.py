"""The daemon's warm state: everything worth keeping resident.

A cold ``python -m repro.driver build`` re-opens, re-reads and
re-validates the artifact cache, the incremental state and the NAIM
repository index on every invocation.  :class:`WarmState` holds those
open instead:

* one shared, disk-backed :class:`~repro.sched.ArtifactCache` for
  object compiles across every project;
* one :class:`~repro.driver.compiler.CompileSession` per distinct
  (options, jobs, incremental, state dir) configuration -- each owns a
  :class:`~repro.driver.build.BuildEngine` whose object fingerprint
  cache, :class:`~repro.incr.IncrementalState` and NAIM repository
  index stay loaded between requests.

Sessions are created lazily on first request and re-validate their
state directories then (the incremental state tolerates corrupt or
version-skewed indexes by degrading to a first build).  A boot marker
records unclean shutdowns so a restarted daemon can report that it
recovered rather than resumed.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, Optional, Tuple

from ..driver.compiler import CompileSession
from ..driver.options import CompilerOptions
from ..naim.config import NaimConfig
from ..driver.report import build_summary
from ..frontend import compile_source, detect_language
from ..ir.printer import format_module
from ..linker.objects import encode_executable
from ..profiles.database import ProfileDatabase
from ..profserve.batch import IngestError, decode_batches
from ..profserve.controller import SelectivityController
from ..profserve.service import ProfileService, RegisteredProject
from ..sched.artifacts import ArtifactCache
from .protocol import (
    ERR_BAD_REQUEST,
    ERR_FAILED,
    OP_BUILD,
    OP_OBJDUMP,
    OP_PROFILE_INGEST,
    OP_TRAIN,
    encode_bytes,
)

_BOOT_MARKER = "daemon.boot.json"


def _routine_module_of(result) -> Dict[str, str]:
    """routine name -> owning module, from a build's IL objects."""
    mapping: Dict[str, str] = {}
    for obj in result.objects:
        il_module = getattr(obj, "il_module", None)
        if il_module is not None:
            for name in il_module.routines:
                mapping[name] = il_module.name
    return mapping


def _cmo_modules_of(result) -> set:
    if result.plan is None:
        return set()
    return set(result.plan.cmo_modules)


class RequestError(Exception):
    """A request the daemon can answer with a structured error."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


def _require(options: Dict, key: str, kind, what: str):
    value = options.get(key)
    if not isinstance(value, kind):
        raise RequestError(
            ERR_BAD_REQUEST, "'%s' must be %s" % (key, what)
        )
    return value


def _sources_from(options: Dict) -> Dict[str, str]:
    sources = _require(options, "sources", dict, "a {module: text} object")
    if not sources:
        raise RequestError(ERR_BAD_REQUEST, "'sources' is empty")
    for name, text in sources.items():
        if not isinstance(name, str) or not isinstance(text, str):
            raise RequestError(
                ERR_BAD_REQUEST, "'sources' must map strings to strings"
            )
    return sources


class WarmState:
    """Long-lived build state shared by every daemon request."""

    def __init__(self, root: str,
                 cache_bytes: int = 64 * 1024 * 1024) -> None:
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)
        #: True when the previous daemon died without a clean close
        #: (boot marker still present): persistent state was re-read
        #: and re-validated from disk rather than trusted blindly.
        self.recovered = os.path.exists(self._marker_path())
        self.artifact_cache = ArtifactCache(
            max_bytes=cache_bytes,
            directory=os.path.join(self.root, "artifacts"),
        )
        self._sessions: Dict[Tuple, CompileSession] = {}
        self._lock = threading.Lock()
        #: One persistent LTRANS process pool shared by every session:
        #: warm builds reuse the worker processes (and their decoded
        #: shared-context caches) instead of re-spawning per build.
        #: Created lazily on first session; idle workers are reaped
        #: between requests and :meth:`close` drains the pool.
        self._process_pool = None
        self._pool_lock = threading.Lock()
        self.started_at = time.time()
        self.sessions_created = 0
        self.session_reuses = 0
        self.builds_served = 0
        #: Pack-segment bytes reclaimed by between-requests compaction.
        self.repo_bytes_reclaimed = 0
        #: Continuous profile feeds (live databases + controllers); the
        #: ``profile-ingest`` op and ``profile_feed`` builds live here.
        self.profiles = ProfileService()
        self._write_marker()

    # -- Boot marker -------------------------------------------------------------

    def _marker_path(self) -> str:
        return os.path.join(self.root, _BOOT_MARKER)

    def _write_marker(self) -> None:
        with open(self._marker_path(), "w", encoding="utf-8") as handle:
            json.dump({"pid": os.getpid(), "started_at": self.started_at},
                      handle)

    # -- Sessions ----------------------------------------------------------------

    def _build_config(self, options: Dict):
        """Parse wire build options -> (CompilerOptions, jobs, incr, dir)."""
        opt_level = options.get("opt_level", 2)
        jobs = options.get("jobs", 1)
        hlo_jobs = options.get("hlo_jobs", 1)
        partitions = options.get("partitions")
        hlo_backend = options.get("hlo_backend", "auto")
        if not isinstance(hlo_backend, str):
            raise RequestError(
                ERR_BAD_REQUEST, "'hlo_backend' must be a string"
            )
        wpa_mode = options.get("wpa_mode", "auto")
        if not isinstance(wpa_mode, str):
            raise RequestError(
                ERR_BAD_REQUEST, "'wpa_mode' must be a string"
            )
        for name, value in (("jobs", jobs), ("hlo_jobs", hlo_jobs)):
            if not isinstance(value, int) or value < 1:
                raise RequestError(
                    ERR_BAD_REQUEST, "'%s' must be an integer >= 1" % name
                )
        if partitions is not None and (
            not isinstance(partitions, int) or partitions < 1
        ):
            raise RequestError(
                ERR_BAD_REQUEST, "'partitions' must be an integer >= 1"
            )
        state_dir = options.get("state_dir")
        if state_dir is not None and not isinstance(state_dir, str):
            raise RequestError(ERR_BAD_REQUEST, "'state_dir' must be a path")
        incremental = bool(options.get("incremental")) or (
            state_dir is not None
        )
        repo_compress = options.get("repo_compress", 6)
        repo_segment_mb = options.get("repo_segment_mb", 8)
        prefetch_depth = options.get("prefetch_depth", 1)
        for name, value in (
            ("repo_compress", repo_compress),
            ("repo_segment_mb", repo_segment_mb),
            ("prefetch_depth", prefetch_depth),
        ):
            if not isinstance(value, int) or value < 0:
                raise RequestError(
                    ERR_BAD_REQUEST, "'%s' must be an integer >= 0" % name
                )
        if repo_segment_mb < 1:
            raise RequestError(
                ERR_BAD_REQUEST, "'repo_segment_mb' must be >= 1"
            )
        profile_feed = options.get("profile_feed")
        if profile_feed is not None and (
            not isinstance(profile_feed, str) or not profile_feed
        ):
            raise RequestError(
                ERR_BAD_REQUEST, "'profile_feed' must be a non-empty string"
            )
        try:
            compiler_options = CompilerOptions(
                opt_level=opt_level,
                # A feed build is a PBO build from day one, even while
                # the feed's database is still empty: the session's
                # identity (and its incremental fingerprints) must not
                # flip when the first profile batch arrives.
                pbo=options.get("profile_path") is not None
                or profile_feed is not None,
                selectivity_percent=options.get("selectivity"),
                checked=bool(options.get("checked")),
                hlo_jobs=hlo_jobs,
                hlo_partitions=partitions,
                hlo_backend=hlo_backend,
                wpa_mode=wpa_mode,
                naim=NaimConfig(
                    repo_compress_level=repo_compress,
                    repo_segment_bytes=repo_segment_mb * 1024 * 1024,
                    repo_prefetch_depth=prefetch_depth,
                ),
            )
        except ValueError as exc:
            raise RequestError(ERR_BAD_REQUEST, str(exc))
        if state_dir is not None:
            state_dir = os.path.abspath(state_dir)
        return compiler_options, jobs, incremental, state_dir

    def session_for(self, options: Dict) -> CompileSession:
        """The warm session serving this build configuration.

        Distinct configurations get distinct sessions (a session pins
        its options and worker counts); repeat requests with the same
        configuration reuse the existing one -- that reuse is the
        entire point of the daemon.
        """
        compiler_options, jobs, incremental, state_dir = (
            self._build_config(options)
        )
        key = (
            compiler_options.describe(),
            compiler_options.checked,
            compiler_options.hlo_jobs,
            compiler_options.hlo_partitions,
            compiler_options.hlo_backend,
            compiler_options.wpa_mode,
            compiler_options.naim.repo_compress_level,
            compiler_options.naim.repo_segment_bytes,
            compiler_options.naim.repo_prefetch_depth,
            jobs,
            incremental,
            state_dir or "",
        )
        with self._lock:
            session = self._sessions.get(key)
            if session is not None:
                self.session_reuses += 1
                return session
            session = self._make_session(
                compiler_options, jobs, incremental, state_dir
            )
            self._sessions[key] = session
            self.sessions_created += 1
            return session

    def process_pool(self):
        """The shared LTRANS worker-process pool (lazily created;
        None where the platform cannot run worker processes)."""
        with self._pool_lock:
            if self._process_pool is None:
                from ..part.procexec import (
                    processes_supported,
                    run_partition_job,
                )

                if not processes_supported():
                    return None
                from ..sched.procpool import ProcessWorkerPool

                self._process_pool = ProcessWorkerPool(run_partition_job)
            return self._process_pool

    def _make_session(self, compiler_options, jobs: int,
                      incremental: bool,
                      state_dir: Optional[str]) -> CompileSession:
        """Hook: subclasses decorate freshly created sessions (the
        farm coordinator attaches its partition dispatcher here)."""
        session = CompileSession(
            compiler_options,
            jobs=jobs,
            incremental=incremental,
            state_dir=state_dir,
            artifact_cache=self.artifact_cache,
            warm=True,
        )
        if compiler_options.use_partitioned_hlo and (
            compiler_options.hlo_backend in ("auto", "processes")
        ):
            session.compiler.process_pool = self.process_pool()
        return session

    # -- Request execution ---------------------------------------------------------

    def execute(self, op: str, options: Dict, progress=None) -> Dict:
        """Run one session op; returns the JSON-safe result payload.

        Raises :class:`RequestError` for anything the client should
        see as a structured failure.  ``progress(phase, **fields)`` is
        called at coarse checkpoints when provided.
        """
        if op == OP_BUILD:
            return self._execute_build(options, progress)
        if op == OP_TRAIN:
            return self._execute_train(options)
        if op == OP_OBJDUMP:
            return self._execute_objdump(options)
        if op == OP_PROFILE_INGEST:
            return self._execute_profile_ingest(options, progress)
        raise RequestError(ERR_BAD_REQUEST, "unknown session op %r" % op)

    def _execute_build(self, options: Dict, progress) -> Dict:
        sources = _sources_from(options)
        profile_db = None
        profile_path = options.get("profile_path")
        if profile_path is not None:
            try:
                profile_db = ProfileDatabase.load(profile_path)
            except (OSError, ValueError) as exc:
                raise RequestError(
                    ERR_BAD_REQUEST,
                    "unreadable profile %r: %s" % (profile_path, exc),
                )
        feed = None
        selectivity_override = None
        feed_name = options.get("profile_feed")
        if feed_name is not None:
            feed = self._feed_for(options)
            snapshot = feed.snapshot()
            if snapshot is not None:
                # Live fleet data outranks any on-disk training profile,
                # and the controller's threshold rides along per build so
                # the warm session's own options stay untouched.
                profile_db = snapshot
                selectivity_override = feed.controller.current
        session = self.session_for(options)
        if progress is not None:
            progress("building", warm_builds=session.builds)
        try:
            result, report, stats = session.build(
                sources, profile_db=profile_db,
                profile_hot=bool(options.get("profile_hot")),
                selectivity_percent=selectivity_override,
            )
        except RequestError:
            raise
        except Exception as exc:
            raise RequestError(
                ERR_FAILED, "%s: %s" % (type(exc).__name__, exc)
            )
        self.builds_served += 1
        self._housekeep(session)
        summary = build_summary(
            session.options, len(sources), result, report=report,
            events=session.events, jobs=session.jobs,
            incremental=session.incremental,
        )
        image = encode_executable(result.executable)
        response = {
            "summary": summary,
            "image_b64": encode_bytes(image),
            "stats": stats.as_dict(),
        }
        if feed is not None:
            feed.register(RegisteredProject(
                sources=dict(sources),
                session=session,
                routine_module=_routine_module_of(result),
                cmo_modules=_cmo_modules_of(result),
                deployed_percent=selectivity_override,
                options={"describe": session.options.describe(),
                         "jobs": session.jobs},
            ))
            response["profile_feed"] = {
                "feed": feed.name,
                "selectivity": selectivity_override,
                "epoch": feed.database.epoch,
            }
        return response

    def _feed_for(self, options: Dict):
        """The feed a build registers with, configured on first touch."""
        controller = None
        selectivity = options.get("selectivity")
        if selectivity is not None:
            controller = SelectivityController(
                initial_percent=float(selectivity)
            )
        return self.profiles.feed(
            options["profile_feed"], controller=controller
        )

    def _housekeep(self, session: CompileSession) -> None:
        # Between-requests housekeeping: fold dead pack-segment frames
        # (pruned incremental blobs, superseded pools) back into live
        # segments while the daemon is otherwise idle.  Threshold-gated,
        # so most requests pay nothing.
        reclaimed = session.compact_repositories()
        if reclaimed:
            self.repo_bytes_reclaimed += reclaimed
        # Same idea for LTRANS worker processes: a parallel-build burst
        # spawns them, a quiet daemon shouldn't pin them forever.
        with self._pool_lock:
            pool = self._process_pool
        if pool is not None:
            pool.reap_idle()

    def _execute_profile_ingest(self, options: Dict, progress) -> Dict:
        """Merge fleet batches; re-optimize if the controller says so.

        The rebuild runs on the feed's registered warm session with the
        live database's normalized snapshot and the controller's
        threshold as a per-build override — the PR-2 incremental
        machinery then recompiles only the modules whose reuse keys
        (selection membership, profile views, inlined bodies) actually
        moved, exactly like an edit would.
        """
        feed_name = _require(options, "feed", str, "a feed name")
        payload = _require(options, "batches", list, "a list of batches")
        try:
            batches = decode_batches(payload)
            feed = self.profiles.feed(feed_name)
        except IngestError as exc:
            raise RequestError(ERR_BAD_REQUEST, str(exc))
        ingest = feed.ingest(batches)
        response: Dict = {"feed": feed_name, "rebuilt": False}
        response.update(ingest)
        snapshot = feed.snapshot()
        decision = feed.decide(snapshot)
        if decision is None:
            response["decision"] = None
            return response
        response["decision"] = decision.as_dict()
        project = feed.project
        want_rebuild = (
            decision.reoptimize
            and bool(options.get("reoptimize", True))
            and project is not None
            and snapshot is not None
        )
        if not want_rebuild:
            return response
        if progress is not None:
            progress("reoptimizing", percent=decision.percent,
                     newly_hot=len(decision.newly_hot),
                     newly_cold=len(decision.newly_cold))
        session = project.session
        try:
            result, report, stats = session.build(
                project.sources, profile_db=snapshot,
                selectivity_percent=decision.percent,
            )
        except Exception as exc:
            raise RequestError(
                ERR_FAILED, "%s: %s" % (type(exc).__name__, exc)
            )
        self.builds_served += 1
        self._housekeep(session)
        project.routine_module = _routine_module_of(result)
        feed.record_deploy(
            decision.percent, _cmo_modules_of(result), reoptimized=True
        )
        response.update({
            "rebuilt": True,
            "summary": build_summary(
                session.options, len(project.sources), result,
                report=report, events=session.events, jobs=session.jobs,
                incremental=session.incremental,
            ),
            "image_b64": encode_bytes(encode_executable(result.executable)),
            "reoptimized": list(result.cmo_reoptimized_modules or []),
            "reused": list(result.cmo_reused_modules or []),
            "stats": stats.as_dict(),
        })
        return response

    def _execute_train(self, options: Dict) -> Dict:
        from ..driver.compiler import train as train_profile

        sources = _sources_from(options)
        runs = options.get("runs", 1)
        if not isinstance(runs, int) or runs < 1:
            raise RequestError(
                ERR_BAD_REQUEST, "'runs' must be an integer >= 1"
            )
        try:
            database = train_profile(sources, [None] * runs)
        except Exception as exc:
            raise RequestError(
                ERR_FAILED, "%s: %s" % (type(exc).__name__, exc)
            )
        hottest = [
            {"routine": name, "weight": weight}
            for name, weight in database.hottest_routines(5)
        ]
        return {
            "profile_json": database.to_json(),
            "runs": runs,
            "hottest": hottest,
        }

    def _execute_objdump(self, options: Dict) -> Dict:
        sources = _sources_from(options)
        dumps: Dict[str, str] = {}
        for name, text in sources.items():
            try:
                module = compile_source(text, name, detect_language(text))
            except Exception as exc:
                raise RequestError(
                    ERR_FAILED, "%s: %s" % (type(exc).__name__, exc)
                )
            dumps[name] = format_module(module)
        return {"il": dumps}

    # -- Introspection ---------------------------------------------------------------

    def status(self) -> Dict:
        with self._lock:
            sessions = [
                {
                    "options": session.options.describe(),
                    "jobs": session.jobs,
                    "incremental": session.incremental,
                    "state_dir": session.state_dir,
                    "builds": session.builds,
                }
                for session in self._sessions.values()
            ]
        cache_stats = self.artifact_cache.stats_snapshot()
        with self._pool_lock:
            pool = self._process_pool
        return {
            "process_pool": pool.stats() if pool is not None else None,
            "profiles": self.profiles.status(),
            "root": self.root,
            "uptime_seconds": time.time() - self.started_at,
            "recovered": self.recovered,
            "builds_served": self.builds_served,
            "sessions_created": self.sessions_created,
            "session_reuses": self.session_reuses,
            "repo_bytes_reclaimed": self.repo_bytes_reclaimed,
            "sessions": sessions,
            "artifact_cache": {
                "entries": len(self.artifact_cache),
                "bytes": self.artifact_cache.total_bytes,
                **cache_stats.as_dict(),
            },
        }

    # -- Lifecycle --------------------------------------------------------------------

    def close(self) -> None:
        """Clean shutdown: release sessions and drop the boot marker."""
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for session in sessions:
            session.close()
        with self._pool_lock:
            pool = self._process_pool
            self._process_pool = None
        if pool is not None:
            pool.close()
        try:
            os.unlink(self._marker_path())
        except OSError:
            pass

    def __repr__(self) -> str:
        return "<WarmState %s: %d sessions, %d builds>" % (
            self.root, len(self._sessions), self.builds_served,
        )
