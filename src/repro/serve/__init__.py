"""Persistent compile service: warm-state build daemon + client.

The daemon (:mod:`.daemon`) keeps compile state resident -- artifact
cache, incremental state, NAIM repository indexes -- and serves
build/train/objdump requests over a UNIX-domain socket with bounded
admission.  The client (:mod:`.client`) is what
``python -m repro.driver build --daemon`` uses; ``python -m
repro.serve`` manages the daemon's lifecycle.  Warm daemon builds are
byte-identical to cold in-process builds: both run through
:class:`repro.driver.CompileSession`.
"""

from .client import (
    DaemonClient,
    DaemonError,
    default_root,
    default_socket_path,
)
from .daemon import AdmissionGate, BuildDaemon, DaemonStartupError, run_daemon
from .protocol import PROTOCOL_VERSION, ProtocolError
from .state import RequestError, WarmState

__all__ = [
    "DaemonClient",
    "DaemonError",
    "default_root",
    "default_socket_path",
    "AdmissionGate",
    "BuildDaemon",
    "DaemonStartupError",
    "run_daemon",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RequestError",
    "WarmState",
]
