"""Optimizer-bug isolation tools (paper §6.3)."""

from .isolate import (
    FailurePredicate,
    TriageReport,
    isolate_failing_modules,
    isolate_inline_operation,
)

__all__ = [
    "FailurePredicate",
    "TriageReport",
    "isolate_failing_modules",
    "isolate_inline_operation",
]
