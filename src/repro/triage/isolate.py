"""Automatic isolation of optimizer-induced failures (paper §6.3).

The paper's workflow, automated: "we often work our way along two
dimensions: both reducing the amount of code exposed to the optimizer,
and reducing the number of optimizations performed on the code."

* :func:`isolate_failing_modules` minimizes the set of modules that
  must be compiled under CMO to reproduce a failure ("pure binary
  search on the modules has limited applicability, because often
  several modules will need to be optimized together" -- so we run a
  delta-debugging reduction, not a plain bisection).
* :func:`isolate_inline_operation` binary-searches the inliner's
  operation limit to find the exact inline that "makes the difference
  between a failing and a working program" (after Whalley [18]).

A *failure predicate* receives a :class:`BuildResult` and returns True
when the bug reproduces (wrong output, trap, ...).  Tests inject a
deliberate miscompile via ``HloOptions.inject_inline_bug_after``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..driver.compiler import BuildResult, Compiler
from ..driver.options import CompilerOptions
from ..profiles.database import ProfileDatabase

FailurePredicate = Callable[[BuildResult], bool]


class TriageReport:
    """What the isolation run established."""

    def __init__(self) -> None:
        self.minimal_modules: List[str] = []
        self.failing_inline_index: Optional[int] = None
        self.suspect_inline: Optional[Tuple[str, str]] = None
        self.builds_tried = 0

    def __repr__(self) -> str:
        return (
            "<TriageReport modules=%r inline=%r suspect=%r builds=%d>"
            % (
                self.minimal_modules,
                self.failing_inline_index,
                self.suspect_inline,
                self.builds_tried,
            )
        )


class _Builder:
    """Builds with a controlled CMO module set / inline limit."""

    def __init__(
        self,
        sources: Dict[str, str],
        base_options: Optional[CompilerOptions],
        profile_db: Optional[ProfileDatabase],
    ) -> None:
        self.sources = sources
        self.base = base_options or CompilerOptions(opt_level=4)
        self.profile_db = profile_db
        self.builds = 0

    def build(
        self,
        cmo_modules: Optional[List[str]] = None,
        inline_limit: Optional[int] = None,
    ) -> BuildResult:
        self.builds += 1
        hlo = self.base.hlo.copy(inline_operation_limit=inline_limit)
        options = CompilerOptions(
            opt_level=4,
            pbo=self.base.pbo,
            selectivity_percent=self.base.selectivity_percent,
            naim=self.base.naim,
            hlo=hlo,
            cost_model=self.base.cost_model,
            cmo_modules=(
                frozenset(cmo_modules) if cmo_modules is not None else None
            ),
        )
        return Compiler(options).build(self.sources, self.profile_db)


def _ddmin(
    items: List[str], still_fails: Callable[[List[str]], bool]
) -> List[str]:
    """Zeller-style minimization of a failing set (complement-only)."""
    current = list(items)
    granularity = 2
    while len(current) >= 2:
        chunk_size = max(1, len(current) // granularity)
        reduced = False
        for start in range(0, len(current), chunk_size):
            complement = current[:start] + current[start + chunk_size :]
            if complement and still_fails(complement):
                current = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    return current


def isolate_failing_modules(
    sources: Dict[str, str],
    predicate: FailurePredicate,
    base_options: Optional[CompilerOptions] = None,
    profile_db: Optional[ProfileDatabase] = None,
) -> TriageReport:
    """Minimize the CMO module set that reproduces the failure."""
    builder = _Builder(sources, base_options, profile_db)
    report = TriageReport()
    all_modules = list(sources)

    def still_fails(subset: List[str]) -> bool:
        return predicate(builder.build(cmo_modules=subset))

    if not still_fails(all_modules):
        report.builds_tried = builder.builds
        return report  # not a CMO-dependent failure
    report.minimal_modules = _ddmin(all_modules, still_fails)
    report.builds_tried = builder.builds
    return report


def isolate_inline_operation(
    sources: Dict[str, str],
    predicate: FailurePredicate,
    base_options: Optional[CompilerOptions] = None,
    profile_db: Optional[ProfileDatabase] = None,
    cmo_modules: Optional[List[str]] = None,
) -> TriageReport:
    """Find the first inline operation whose inclusion triggers failure.

    Binary search over the inliner's operation limit: limit k performs
    only the first k inlines, so the smallest failing k names the
    suspect operation.
    """
    builder = _Builder(sources, base_options, profile_db)
    report = TriageReport()
    if cmo_modules is not None:
        report.minimal_modules = list(cmo_modules)

    full = builder.build(cmo_modules=cmo_modules)
    if not predicate(full):
        report.builds_tried = builder.builds
        return report
    assert full.hlo_result is not None
    total = full.hlo_result.inline_stats.performed
    trace = full.hlo_result.inline_stats.performed_list

    if predicate(builder.build(cmo_modules=cmo_modules, inline_limit=0)):
        # Fails even with inlining disabled: not an inliner bug.
        report.failing_inline_index = 0
        report.builds_tried = builder.builds
        return report

    low, high = 0, total  # fails at `high`, passes at `low`
    while high - low > 1:
        mid = (low + high) // 2
        if predicate(
            builder.build(cmo_modules=cmo_modules, inline_limit=mid)
        ):
            high = mid
        else:
            low = mid
    report.failing_inline_index = high
    if 0 < high <= len(trace):
        report.suspect_inline = trace[high - 1]
    report.builds_tried = builder.builds
    return report
