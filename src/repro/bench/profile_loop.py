"""Closed-loop profile-serving benchmark (the streaming Fig. 6).

Simulates a fleet whose hot set shifts between long stationary phases
and compares three serving strategies over identical deterministic
traffic:

* **adaptive** -- the continuous profile service: one warm daemon
  state, fleet batches ingested every epoch, the selectivity
  controller re-optimizing incrementally when the picture moves;
* **no_reopt** -- build once at +O4 (no profile) and serve every epoch
  with that static image;
* **full_retrain** -- the classical offline loop: on every workload
  shift, retrain on the fresh traffic and rebuild cold at the
  offline rule-of-thumb selectivity (20%, the paper's Fig. 6 default).

The *oracle* sweeps the whole selectivity grid offline against the
final workload using the adaptive loop's own closing snapshot and
picks the knee by the controller's rule; the acceptance check is that
the live controller settles within 10% of that knee without ever
having seen the full sweep.

Traffic within a phase is stationary (every window replays the same
sessions), so cycles-per-transaction is exactly comparable across one
phase and the controller's hill-climb operates on noise-free
evaluations -- the VM is deterministic, so every number here is exact
and the bench can assert on them directly.

Costs are reported separately: ``serve`` cycles-per-transaction is
what a fleet of millions pays on every transaction, ``build`` seconds
are paid once per rebuild.  At any realistic fleet multiplier the
serve term dominates, which is why the adaptive strategy's extra
warm incremental rebuilds are worth buying.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from typing import Dict, List, Optional, Tuple

from ..driver.compiler import CompileSession
from ..driver.options import CompilerOptions
from ..linker.objects import decode_executable, encode_executable
from ..profiles.database import ProfileDatabase
from ..profserve.controller import DEFAULT_GRID
from ..profserve.fleet import FleetSimulator
from ..serve.protocol import decode_bytes
from ..serve.state import WarmState
from ..synth.config import tiny_config
from ..synth.generator import generate
from .figures import FigureResult
from .tables import Table

#: Phase plan: (shift, epochs) pairs.  The hot set rotates at every
#: phase boundary; phases are long enough for the climb to settle.
DEFAULT_PHASES = ((0, 10), (4, 10))

#: The offline rule-of-thumb selectivity the full-retrain baseline
#: rebuilds at (the paper's Fig. 6 sweet spot).
OFFLINE_DEFAULT_PERCENT = 20.0


def _knee(costs: Dict[float, float], tolerance: float = 0.03) -> float:
    """The controller's settle rule over an offline sweep."""
    best = min(costs.values())
    limit = best * (1.0 + tolerance)
    return min(p for p, c in costs.items() if c <= limit)


def _cold_build(sources, percent: Optional[float],
                profile_db: Optional[ProfileDatabase]) -> Tuple[bytes, float]:
    """One cold +O4 build; returns (image, build_seconds)."""
    session = CompileSession(
        CompilerOptions(
            opt_level=4,
            pbo=profile_db is not None,
            selectivity_percent=percent,
        )
    )
    started = time.perf_counter()
    result, _, _ = session.build(dict(sources), profile_db=profile_db)
    elapsed = time.perf_counter() - started
    session.close()
    return encode_executable(result.executable), elapsed


def _delta_database(batch) -> ProfileDatabase:
    """A batch's routine deltas as a standalone training database."""
    database = ProfileDatabase(decay=1.0)
    database.run_count = 1
    for name in sorted(batch.routines):
        database.merge_delta(batch.routines[name], batch.epoch)
    return database


def _schedule(phases) -> List[Tuple[int, int, int]]:
    """[(epoch, shift, input_epoch)]: stationary traffic per phase."""
    plan: List[Tuple[int, int, int]] = []
    epoch = 0
    for shift, count in phases:
        base = epoch + 1
        for _ in range(count):
            epoch += 1
            plan.append((epoch, shift, base))
    return plan


def run_profile_loop(
    scale: float = 1.0,
    phases: Tuple[Tuple[int, int], ...] = DEFAULT_PHASES,
    users: int = 3,
    seed: int = 0,
    initial_percent: float = OFFLINE_DEFAULT_PERCENT,
) -> FigureResult:
    config = tiny_config()
    if scale != 1.0:
        config = config.scaled(scale)
    app = generate(config)
    schedule = _schedule(phases)

    # -- Adaptive: the closed loop through the warm daemon state --------------
    root = tempfile.mkdtemp(prefix="repro-profile-loop-")
    adaptive = {"cycles": 0, "transactions": 0, "rebuilds": 0,
                "build_seconds": 0.0}
    history: List[Dict[str, object]] = []
    try:
        state = WarmState(root)
        options = {
            "sources": dict(app.sources), "opt_level": 4,
            "profile_feed": "loop", "selectivity": initial_percent,
            "state_dir": root + "/incr",
        }
        started = time.perf_counter()
        built = state.execute("build", options)
        adaptive["build_seconds"] += time.perf_counter() - started
        adaptive["rebuilds"] += 1
        deployed = decode_executable(decode_bytes(built["image_b64"]))

        fleet = FleetSimulator(app, seed=seed)
        for _epoch, shift, input_epoch in schedule:
            batch = fleet.sample(deployed, users=users, shift=shift,
                                 input_epoch=input_epoch)
            adaptive["cycles"] += batch.cycles
            adaptive["transactions"] += batch.transactions
            started = time.perf_counter()
            result = state.execute("profile-ingest", {
                "feed": "loop", "batches": [batch.to_wire()],
            })
            elapsed = time.perf_counter() - started
            decision = result["decision"]
            if result["rebuilt"]:
                adaptive["rebuilds"] += 1
                adaptive["build_seconds"] += elapsed
                deployed = decode_executable(
                    decode_bytes(result["image_b64"])
                )
            history.append({
                "epoch": batch.epoch,
                "shift": shift,
                "cycles_per_txn": batch.cycles / batch.transactions,
                "percent": decision["percent"],
                "mode": decision["mode"],
                "rebuilt": result["rebuilt"],
            })
        feed = state.profiles.feed("loop")
        final_percent = feed.controller.current
        final_snapshot = feed.database.normalized_snapshot()
        controller_status = feed.controller.status()
        state.close()
    finally:
        shutil.rmtree(root, ignore_errors=True)

    # -- Baselines over the identical traffic ---------------------------------
    replay = FleetSimulator(app, seed=seed)

    image, build_seconds = _cold_build(app.sources, None, None)
    static_image = decode_executable(image)
    no_reopt = {"cycles": 0, "transactions": 0, "rebuilds": 1,
                "build_seconds": build_seconds}
    for _epoch, shift, input_epoch in schedule:
        served = replay.serve(static_image, users=users, shift=shift,
                              epoch=input_epoch)
        no_reopt["cycles"] += served["cycles"]
        no_reopt["transactions"] += served["transactions"]

    # Full retrain: every phase boundary reprofiles the new traffic and
    # rebuilds the world cold at the offline default.  The first epoch
    # of each phase is served by the now-stale previous image --
    # retraining cannot happen before the shift has been observed.
    sampler = FleetSimulator(app, seed=seed)
    retrain_image = static_image
    full_retrain = {"cycles": 0, "transactions": 0, "rebuilds": 1,
                    "build_seconds": build_seconds}
    last_shift: Optional[int] = None
    for _epoch, shift, input_epoch in schedule:
        batch = sampler.sample(retrain_image, users=users, shift=shift,
                               input_epoch=input_epoch)
        full_retrain["cycles"] += batch.cycles
        full_retrain["transactions"] += batch.transactions
        if shift != last_shift:
            image, seconds = _cold_build(
                app.sources, OFFLINE_DEFAULT_PERCENT,
                _delta_database(batch),
            )
            retrain_image = decode_executable(image)
            full_retrain["rebuilds"] += 1
            full_retrain["build_seconds"] += seconds
            last_shift = shift
    strategies = {"adaptive": adaptive, "no_reopt": no_reopt,
                  "full_retrain": full_retrain}

    # -- Oracle: offline Fig. 6 sweep against the closing workload ------------
    _, final_shift, final_input_epoch = schedule[-1]
    oracle_sweep: List[Dict[str, float]] = []
    costs: Dict[float, float] = {}
    for percent in DEFAULT_GRID:
        image, _ = _cold_build(app.sources, percent, final_snapshot)
        served = replay.serve(
            decode_executable(image), users=users, shift=final_shift,
            epoch=final_input_epoch,
        )
        cost = served["cycles"] / served["transactions"]
        costs[percent] = cost
        oracle_sweep.append({"percent": percent, "cycles_per_txn": cost})
    oracle_percent = _knee(costs)

    table = Table(
        "Closed profile loop: %d epochs, shifts %s (%s)"
        % (len(schedule), [s for s, _ in phases], config.name),
        ["strategy", "cycles_per_txn", "rebuilds", "build_s"],
    )
    for name in ("adaptive", "no_reopt", "full_retrain"):
        stats = strategies[name]
        table.add_row(
            name,
            "%.1f" % (stats["cycles"] / stats["transactions"]),
            stats["rebuilds"],
            "%.2f" % stats["build_seconds"],
        )
    table.add_note("controller settled at %g%%; offline oracle knee %g%%"
                   % (final_percent, oracle_percent))
    table.add_note("serve cost recurs per fleet transaction; build cost "
                   "is one-off -- any realistic fleet multiplier makes "
                   "the serve column dominate")
    return FigureResult("profile_loop", table, {
        "strategies": strategies,
        "history": history,
        "final_percent": final_percent,
        "oracle_percent": oracle_percent,
        "oracle_sweep": oracle_sweep,
        "controller": controller_status,
        "epochs": len(schedule),
    })
