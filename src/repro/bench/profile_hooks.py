"""Hot-path profiling hooks for the compiler's own execution.

The perf work in this repo targets the compiler's constant factors
(codec loops, pool swizzling, pack I/O), and regressions there are
invisible in pass-level phase timings.  These hooks attribute wall
time to *functions*: a :class:`HotPathProfiler` wraps one build in
``cProfile`` plus a ``perf_counter_ns`` fence and flattens the result
into a small JSON-able report that rides inside
:class:`~repro.driver.compiler.SessionBuildStats` -- so a slow build
in a ``BENCH_*.json`` trajectory can be diagnosed from the artifact
alone, without re-running anything.

``cProfile`` instruments every Python call, so a profiled build is
*slower* than a plain one (typically 1.3-2x); the report records both
the profiled wall time and that caveat.  Profiling is therefore
strictly opt-in (``build --profile-hot``) and never on for the
benchmark numbers themselves.
"""

from __future__ import annotations

import cProfile
import time
from typing import Dict, List, Optional

#: Entries kept in the flat report (sorted by own-time, descending).
DEFAULT_TOP = 25


class HotPathProfiler:
    """One-shot profiler for a single build (not reentrant).

    Usage::

        profiler = HotPathProfiler()
        profiler.start()
        ...build...
        profiler.stop()
        stats["hot_profile"] = profiler.report()
    """

    def __init__(self, top: int = DEFAULT_TOP) -> None:
        self.top = top
        self._profile: Optional[cProfile.Profile] = None
        self._start_ns = 0
        self._wall_ns = 0

    def start(self) -> None:
        self._profile = cProfile.Profile()
        self._start_ns = time.perf_counter_ns()
        self._profile.enable()

    def stop(self) -> None:
        assert self._profile is not None, "start() was never called"
        self._profile.disable()
        self._wall_ns = time.perf_counter_ns() - self._start_ns

    def __enter__(self) -> "HotPathProfiler":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()

    def report(self) -> Dict[str, object]:
        """Flat hot-path report: top functions by own (exclusive) time."""
        assert self._profile is not None, "start() was never called"
        rows: List[Dict[str, object]] = []
        total_tt = 0.0
        for entry in self._profile.getstats():
            code = entry.code
            if isinstance(code, str):  # builtin: '<method ...>'
                func, location = code, "~"
            else:
                func = code.co_name
                location = "%s:%d" % (_short_file(code.co_filename),
                                      code.co_firstlineno)
            total_tt += entry.inlinetime
            rows.append({
                "func": func,
                "where": location,
                "calls": entry.callcount,
                "own_ms": entry.inlinetime * 1e3,
                "cum_ms": entry.totaltime * 1e3,
            })
        rows.sort(key=lambda row: row["own_ms"], reverse=True)
        kept = rows[: self.top]
        for row in kept:
            row["own_ms"] = round(row["own_ms"], 3)
            row["cum_ms"] = round(row["cum_ms"], 3)
        return {
            "wall_ns": self._wall_ns,
            "profiled_ms": round(total_tt * 1e3, 3),
            "n_functions": len(rows),
            "top": kept,
            "note": "cProfile overhead included; do not compare "
                    "wall_ns against unprofiled builds",
        }


def profile_call(fn, *args, top: int = DEFAULT_TOP, **kwargs):
    """Run ``fn(*args, **kwargs)`` under a profiler.

    Returns ``(result, report)``; the building block for wiring
    ``--profile-hot`` through any entry point.
    """
    profiler = HotPathProfiler(top=top)
    profiler.start()
    try:
        result = fn(*args, **kwargs)
    finally:
        profiler.stop()
    return result, profiler.report()


def render_hot_report(report: Dict[str, object],
                      limit: int = 15) -> List[str]:
    """Human-readable lines for a :meth:`HotPathProfiler.report` dict."""
    lines = [
        "hot paths (%d functions, %.1f ms profiled, wall %.1f ms):"
        % (report.get("n_functions", 0),
           float(report.get("profiled_ms", 0.0)),
           float(report.get("wall_ns", 0)) / 1e6)
    ]
    top = report.get("top") or []
    for row in top[:limit]:
        lines.append(
            "  %8.1fms own %8.1fms cum %9d calls  %s (%s)"
            % (float(row["own_ms"]), float(row["cum_ms"]),
               int(row["calls"]), row["func"], row["where"])
        )
    return lines


def _short_file(path: str) -> str:
    """Trim file paths to the part a report reader needs (repro/...)."""
    marker = "repro/"
    index = path.rfind(marker)
    if index >= 0:
        return path[index:]
    return path.rsplit("/", 1)[-1]
