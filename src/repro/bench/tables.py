"""Table/series formatting for the figure-reproduction harness."""

from __future__ import annotations

from typing import List, Sequence


class Table:
    """A simple aligned-column table with a title and footnotes."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []
        self.notes: List[str] = []

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                "row has %d values, table has %d columns"
                % (len(values), len(self.columns))
            )
        self.rows.append([_fmt(v) for v in values])

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(
            col.ljust(widths[i]) for i, col in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                "  ".join(cell.rjust(widths[i]) if _numericish(cell)
                          else cell.ljust(widths[i])
                          for i, cell in enumerate(row))
            )
        for note in self.notes:
            lines.append("note: %s" % note)
        return "\n".join(lines)

    def to_csv(self) -> str:
        lines = [",".join(self.columns)]
        for row in self.rows:
            lines.append(",".join(row))
        return "\n".join(lines)

    def column(self, name: str) -> List[str]:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def __str__(self) -> str:
        return self.render()


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return "%.3f" % value
    return str(value)


def _numericish(cell: str) -> bool:
    stripped = cell.replace(".", "").replace("-", "").replace("%", "")
    return stripped.isdigit()


def speedup(baseline: float, value: float) -> float:
    """Baseline/value ratio (>1 means faster than baseline)."""
    if value == 0:
        return 0.0
    return baseline / value


def fmt_mb(nbytes: int) -> float:
    """Bytes -> megabytes (float)."""
    return nbytes / (1024.0 * 1024.0)
