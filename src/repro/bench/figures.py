"""Reproduction harness for every data figure in the paper.

Each ``run_figureN`` function regenerates one figure's rows/series and
returns a :class:`FigureResult` whose table prints the same quantities
the paper plots.  Figures 2 and 3 are architecture diagrams (the
package structure realizes them); the data figures are:

* Figure 1 -- speedups of PBO / CMO / CMO+PBO over the +O2 baseline
  across the benchmark suite (Mcad3 against +O1);
* Figure 4 -- compiler and HLO memory vs lines compiled under CMO;
* Figure 5 -- HLO compile time vs memory across NAIM levels;
* Figure 6 -- compile time and run time vs selectivity percentage.

Extra ablations (DESIGN.md experiment index): the §8 memory-per-line
history and the loader-cache / inline-scheduling ablations.

All workloads are synthetic stand-ins (DESIGN.md §2); tables carry the
scale notes.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..driver.compiler import BuildResult, Compiler, train
from ..driver.options import CompilerOptions
from ..hlo.options import HloOptions
from ..naim.config import NaimConfig, NaimLevel
from ..synth.config import mcad_suite, spec_like_suite
from ..synth.generator import GeneratedApp, generate
from .tables import Table, fmt_mb, speedup


class FigureResult:
    """A reproduced figure: printable table + raw series."""

    def __init__(self, figure_id: str, table: Table,
                 data: Optional[Dict] = None) -> None:
        self.figure_id = figure_id
        self.table = table
        self.data = data or {}

    def render(self) -> str:
        return self.table.render()

    def __str__(self) -> str:
        return self.render()


# -- Shared helpers ---------------------------------------------------------------


def _aggressive_hlo() -> HloOptions:
    """Inline budgets for +O4 +P runs (the paper's aggressive inlining)."""
    return HloOptions(
        inline_hot_callee_max_instrs=260,
        inline_callee_max_instrs=60,
        inline_program_growth_factor=2.6,
        inline_routine_growth_factor=4.0,
        inline_caller_max_instrs=2600,
    )


def _build_and_run(
    app: GeneratedApp,
    options: CompilerOptions,
    profile_db,
    run_input,
) -> Dict:
    compiler = Compiler(options)
    started = time.perf_counter()
    build = compiler.build(app.sources, profile_db=profile_db)
    build_seconds = time.perf_counter() - started
    outcome = build.run(inputs=run_input)
    return {
        "build": build,
        "build_seconds": build_seconds,
        "cycles": outcome.cycles,
        "value": outcome.value,
        "result": outcome,
    }


# -- Figure 1 -------------------------------------------------------------------------


def run_figure1(
    quick: bool = False,
    mcad_scale: float = 1.0,
    include_mcad: bool = True,
) -> FigureResult:
    """Speedups of +P / +O4 / +O4+P relative to the default level.

    Shape targets from the paper: every program gains from CMO+PBO;
    the largest speedups appear on the big mcad-like applications; CMO
    alone is not attempted on the mcad apps (the paper could not
    compile them without selectivity -- §5).
    """
    table = Table(
        "Figure 1: speedup over default optimization (+O2; Mcad3-like +O1)",
        ["program", "lines", "PBO", "CMO", "CMO+PBO"],
    )
    configs = spec_like_suite()
    if quick:
        configs = configs[:3]
    if include_mcad:
        configs += mcad_suite(mcad_scale)

    data: Dict[str, Dict[str, float]] = {}
    for config in configs:
        app = generate(config)
        is_mcad = config.name.startswith("mcad")
        train_seed, ref_seed = (1, 1) if is_mcad else (1, 2)
        profile_db = train(app.sources, [app.make_input(seed=train_seed)])
        ref_input = app.make_input(seed=ref_seed)
        base_level = 1 if config.name == "mcad3_like" else 2

        baseline = _build_and_run(
            app, CompilerOptions(opt_level=base_level), None, ref_input
        )
        pbo = _build_and_run(
            app, CompilerOptions(opt_level=2, pbo=True), profile_db, ref_input
        )
        row: Dict[str, float] = {
            "lines": app.source_lines(),
            "PBO": speedup(baseline["cycles"], pbo["cycles"]),
        }
        if is_mcad:
            cmo_text = "n/a"
            row["CMO"] = float("nan")
        else:
            cmo = _build_and_run(
                app,
                CompilerOptions(opt_level=4, hlo=_aggressive_hlo()),
                None,
                ref_input,
            )
            row["CMO"] = speedup(baseline["cycles"], cmo["cycles"])
            cmo_text = "%.3f" % row["CMO"]
            assert cmo["value"] == baseline["value"], config.name
        both = _build_and_run(
            app,
            CompilerOptions(opt_level=4, pbo=True, hlo=_aggressive_hlo()),
            profile_db,
            ref_input,
        )
        row["CMO+PBO"] = speedup(baseline["cycles"], both["cycles"])
        assert pbo["value"] == baseline["value"], config.name
        assert both["value"] == baseline["value"], config.name

        table.add_row(
            config.name,
            row["lines"],
            "%.3f" % row["PBO"],
            cmo_text,
            "%.3f" % row["CMO+PBO"],
        )
        data[config.name] = row
    table.add_note("mcad CMO column n/a: the paper could not compile the "
                   "MCAD apps with pure CMO either (section 5)")
    table.add_note("mcad apps trained and benchmarked on the same input, "
                   "SPEC-likes on train-vs-reference inputs (section 2)")
    if include_mcad and mcad_scale != 1.0:
        table.add_note("mcad scale factor %.2f" % mcad_scale)
    return FigureResult("figure1", table, data)


# -- Figure 4 ------------------------------------------------------------------------


def run_figure4(
    points: int = 5,
    scale: float = 1.0,
    naim_memory_mb: int = 4,
) -> FigureResult:
    """Compiler & HLO memory vs lines of code compiled in CMO mode.

    The CMO module set grows prefix by prefix over the mcad1-like app
    (everything else compiles at +O2+P).  With NAIM, HLO memory grows
    sub-linearly; overall compiler memory grows faster because LLO's
    working set is quadratic in post-inlining routine size (Figure 4's
    caption).
    """
    config = mcad_suite(scale)[0]
    app = generate(config)
    profile_db = train(app.sources, [app.make_input(seed=1)])
    module_names = [n for n in app.sources if n != "main"]

    table = Table(
        "Figure 4: memory use vs lines compiled with CMO (mcad1-like)",
        ["cmo_lines", "cmo_modules", "hlo_MB", "overall_MB", "hlo_KB_per_line"],
    )
    naim = NaimConfig(physical_memory_bytes=naim_memory_mb * 1024 * 1024)
    series: List[Dict[str, float]] = []
    for index in range(1, points + 1):
        count = max(1, len(module_names) * index // points)
        cmo_set = frozenset(module_names[:count] + ["main"])
        options = CompilerOptions(
            opt_level=4,
            pbo=True,
            naim=naim,
            hlo=_aggressive_hlo(),
            cmo_modules=cmo_set,
        )
        build = Compiler(options).build(app.sources, profile_db=profile_db)
        assert build.hlo_result is not None
        cmo_lines = sum(
            text.count("\n") + 1
            for name, text in app.sources.items()
            if name in cmo_set
        )
        hlo_peak = build.hlo_result.peak_bytes
        overall_peak = build.accountant.peak
        table.add_row(
            cmo_lines,
            count + 1,
            "%.2f" % fmt_mb(hlo_peak),
            "%.2f" % fmt_mb(overall_peak),
            "%.2f" % (hlo_peak / 1024.0 / max(cmo_lines, 1)),
        )
        series.append(
            {
                "cmo_lines": cmo_lines,
                "hlo_bytes": hlo_peak,
                "overall_bytes": overall_peak,
            }
        )
    table.add_note(
        "NAIM auto thresholds against a %d MB modeled machine" % naim_memory_mb
    )
    table.add_note("sub-linear when KB/line falls as lines grow")
    return FigureResult("figure4", table, {"series": series})


# -- Figure 5 -------------------------------------------------------------------------


def run_figure5(scale: float = 4.0, cache_pools: int = 12) -> FigureResult:
    """HLO compile time vs memory across NAIM levels (gcc-like app).

    One point per configuration: NAIM off, IR compaction, IR+symbol-
    table compaction, full offload to the disk repository.  Time is
    real wall time of the HLO phase; memory is the peak modeled
    resident bytes (DESIGN.md §2 substitution).
    """
    config = next(c for c in spec_like_suite() if c.name == "gcc_like")
    if scale != 1.0:
        config = config.scaled(scale)
    app = generate(config)
    profile_db = train(app.sources, [app.make_input(seed=1)])

    levels = [
        ("NAIM off", NaimLevel.OFF),
        ("IR compaction", NaimLevel.IR_COMPACT),
        ("+ST compaction", NaimLevel.ST_COMPACT),
        ("offload to disk", NaimLevel.OFFLOAD),
    ]
    table = Table(
        "Figure 5: HLO time vs memory per NAIM level (gcc-like, %d lines)"
        % app.source_lines(),
        ["configuration", "hlo_seconds", "hlo_peak_MB", "compactions",
         "uncompactions", "repo_fetches"],
    )
    series = []
    import tempfile

    for label, level in levels:
        naim = NaimConfig.pinned(level, cache_pools=cache_pools)
        repo_dir = None
        if level is NaimLevel.OFFLOAD:
            repo_dir = tempfile.mkdtemp(prefix="naim_fig5_")
        options = CompilerOptions(
            opt_level=4,
            pbo=True,
            naim=naim,
            hlo=_aggressive_hlo(),
            repository_dir=repo_dir,
        )
        build = Compiler(options).build(app.sources, profile_db=profile_db)
        assert build.hlo_result is not None
        stats = build.hlo_result.loader.stats
        hlo_seconds = build.timings.phases.get("hlo", 0.0)
        peak = build.hlo_result.peak_bytes
        table.add_row(
            label,
            "%.3f" % hlo_seconds,
            "%.2f" % fmt_mb(peak),
            stats.compactions,
            stats.uncompactions,
            stats.repository_fetches,
        )
        series.append(
            {"level": label, "seconds": hlo_seconds, "bytes": peak}
        )
        if repo_dir is not None:
            import shutil

            shutil.rmtree(repo_dir, ignore_errors=True)
    table.add_note("expected shape: memory falls and time rises down the rows")
    return FigureResult("figure5", table, {"series": series})


# -- Figure 6 ------------------------------------------------------------------------


def run_figure6(
    percents: Optional[List[float]] = None,
    scale: float = 1.0,
) -> FigureResult:
    """Compile time and run time vs selectivity percentage (mcad1-like).

    The paper's shape: run time saturates once roughly 20% of the code
    (about 5% of call sites) is compiled with CMO+PBO, while compile
    time keeps growing with the amount of code optimized.
    """
    if percents is None:
        percents = [1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 70.0, 100.0]
    config = mcad_suite(scale)[0]
    app = generate(config)
    profile_db = train(app.sources, [app.make_input(seed=1)])
    ref_input = app.make_input(seed=1)
    total_lines = app.source_lines()

    table = Table(
        "Figure 6: compile time & run time vs selectivity (mcad1-like, "
        "%d lines)" % total_lines,
        ["selectivity_%", "cmo_lines", "line_frac_%", "compile_s",
         "run_Mcycles", "speedup_vs_PBO"],
    )

    # The 0% point: PBO alone (+O2 +P), the paper's left axis end.
    pbo_only = _build_and_run(
        app, CompilerOptions(opt_level=2, pbo=True), profile_db, ref_input
    )
    table.add_row("0 (PBO only)", 0, "0.0",
                  "%.2f" % pbo_only["build_seconds"],
                  "%.3f" % (pbo_only["cycles"] / 1e6), "1.000")
    series = [
        {
            "percent": 0.0,
            "cmo_lines": 0,
            "compile_seconds": pbo_only["build_seconds"],
            "cycles": pbo_only["cycles"],
        }
    ]
    for percent in percents:
        options = CompilerOptions(
            opt_level=4,
            pbo=True,
            selectivity_percent=percent,
            hlo=_aggressive_hlo(),
        )
        outcome = _build_and_run(app, options, profile_db, ref_input)
        assert outcome["value"] == pbo_only["value"]
        build: BuildResult = outcome["build"]
        assert build.plan is not None
        table.add_row(
            "%.0f" % percent,
            build.plan.selected_lines,
            "%.1f" % (100.0 * build.plan.line_fraction),
            "%.2f" % outcome["build_seconds"],
            "%.3f" % (outcome["cycles"] / 1e6),
            "%.3f" % speedup(pbo_only["cycles"], outcome["cycles"]),
        )
        series.append(
            {
                "percent": percent,
                "cmo_lines": build.plan.selected_lines,
                "compile_seconds": outcome["build_seconds"],
                "cycles": outcome["cycles"],
            }
        )
    table.add_note("expected: speedup saturates well before 100% selectivity")
    return FigureResult("figure6", table, {"series": series})


# -- Section 8 history (memory per line) ---------------------------------------------------


def run_history(scale: float = 2.0) -> FigureResult:
    """Memory per source line across the framework's releases (§8).

    HP-UX 9.0 kept everything expanded (~1.7 KB/line); 10.01 added IR
    compaction (~0.9 KB/line); 10.20 added full NAIM + thresholds.
    """
    config = next(c for c in spec_like_suite() if c.name == "gcc_like")
    if scale != 1.0:
        config = config.scaled(scale)
    app = generate(config)
    profile_db = train(app.sources, [app.make_input(seed=1)])
    lines = app.source_lines()

    releases = [
        ("HP-UX 9.0 (expanded)", NaimConfig.pinned(NaimLevel.OFF)),
        ("HP-UX 10.01 (IR compaction)",
         NaimConfig.pinned(NaimLevel.IR_COMPACT, cache_pools=8)),
        ("HP-UX 10.20 (full NAIM)",
         NaimConfig.pinned(NaimLevel.OFFLOAD, cache_pools=8)),
    ]
    table = Table(
        "Section 8 history: HLO memory per line (gcc-like, %d lines)" % lines,
        ["release", "base_rep_MB", "KB_per_line"],
    )
    series = []
    for label, naim in releases:
        options = CompilerOptions(opt_level=4, pbo=True, naim=naim,
                                  hlo=_aggressive_hlo())
        build = Compiler(options).build(app.sources, profile_db=profile_db)
        assert build.hlo_result is not None
        # The paper's KB/line figures describe the *base representation*
        # -- all code read in, before optimization grows it -- which is
        # the accountant's "scanned" sample.
        samples = dict(build.accountant.samples)
        base = samples.get("scanned", build.hlo_result.peak_bytes)
        kb_per_line = base / 1024.0 / lines
        table.add_row(label, "%.2f" % fmt_mb(base), "%.2f" % kb_per_line)
        series.append({"release": label, "kb_per_line": kb_per_line})
    table.add_note("paper: 1.7 KB/line -> 0.9 KB/line -> NAIM (sub-linear)")
    table.add_note("our relocatable encoding is denser than HP's, so the "
                   "10.01 row lands below the paper's 0.9 KB/line")
    return FigureResult("history", table, {"series": series})


# -- NAIM / inliner ablations (§4.3) -------------------------------------------------------


def run_naim_ablation(scale: float = 2.0) -> FigureResult:
    """Loader-cache sizing and inline-scheduling locality ablations.

    Cache sizing runs on the gcc-like app.  The pair-scheduling ablation
    uses a dispatcher-heavy micro-workload (one caller with many call
    sites spread over several callee modules) because that is the shape
    the paper's §4.3 scheduling optimizes: "cross-module inlines from
    the same pair of modules are processed one after another".
    """
    config = next(c for c in spec_like_suite() if c.name == "gcc_like")
    if scale != 1.0:
        config = config.scaled(scale)
    app = generate(config)
    profile_db = train(app.sources, [app.make_input(seed=1)])

    table = Table(
        "NAIM ablations (gcc-like, %d lines; dispatcher micro-workload)"
        % app.source_lines(),
        ["configuration", "hlo_seconds", "uncompactions", "cache_hits",
         "pair_locality_%"],
    )
    series = []

    def run_cache_point(label: str, cache_pools: int):
        naim = NaimConfig.pinned(NaimLevel.IR_COMPACT, cache_pools=cache_pools)
        options = CompilerOptions(opt_level=4, pbo=True, naim=naim,
                                  hlo=_aggressive_hlo())
        build = Compiler(options).build(app.sources, profile_db=profile_db)
        assert build.hlo_result is not None
        stats = build.hlo_result.loader.stats
        seconds = build.timings.phases.get("hlo", 0.0)
        table.add_row(label, "%.3f" % seconds, stats.uncompactions,
                      stats.cache_hits, "-")
        series.append(
            {"label": label, "seconds": seconds,
             "uncompactions": stats.uncompactions, "locality": None}
        )

    for cache in (2, 8, 32):
        run_cache_point("cache=%d pools" % cache, cache)

    dispatcher = _dispatcher_workload()
    for schedule, label in ((True, "dispatcher, pair scheduling"),
                            (False, "dispatcher, no pair scheduling")):
        hlo = _aggressive_hlo()
        hlo.inline_schedule_by_module_pair = schedule
        hlo.inline_program_growth_factor = 40.0
        hlo.inline_caller_max_instrs = 100000
        hlo.inline_routine_growth_factor = 1000.0
        naim = NaimConfig.pinned(NaimLevel.IR_COMPACT, cache_pools=2)
        options = CompilerOptions(opt_level=4, naim=naim, hlo=hlo)
        build = Compiler(options).build(dispatcher)
        assert build.hlo_result is not None
        stats = build.hlo_result.loader.stats
        trace = build.hlo_result.inline_stats.callee_module_trace
        adjacent = sum(
            1 for i in range(1, len(trace)) if trace[i] == trace[i - 1]
        )
        locality = 100.0 * adjacent / max(len(trace) - 1, 1)
        seconds = build.timings.phases.get("hlo", 0.0)
        table.add_row(label, "%.3f" % seconds, stats.uncompactions,
                      stats.cache_hits, "%.1f" % locality)
        series.append(
            {"label": label, "seconds": seconds,
             "uncompactions": stats.uncompactions, "locality": locality}
        )
    table.add_note("pair scheduling groups a caller's inlines by callee "
                   "module (paper section 4.3)")
    return FigureResult("ablation_naim", table, {"series": series})


def _dispatcher_workload(n_callee_modules: int = 4,
                         callees_per_module: int = 3,
                         repeats: int = 5):
    """One dispatcher whose call sites interleave callee modules, with
    every callee called several times -- the §4.3 scheduling stress
    case.  Grouping a callee's inlines together keeps its pool in a
    tiny loader cache; interleaving evicts it between every splice."""
    sources = {}
    for m in range(n_callee_modules):
        lines = []
        for f in range(callees_per_module):
            lines.append(
                "func cm%d_f%d(x) { return x * %d + %d; }"
                % (m, f, m + 2, f + 1)
            )
        sources["cm%d" % m] = "\n".join(lines) + "\n"
    calls = []
    for _rep in range(repeats):
        for m in range(n_callee_modules):  # interleave modules
            for f in range(callees_per_module):
                calls.append("    acc = acc + cm%d_f%d(acc);" % (m, f))
    sources["main"] = (
        "func main() {\n    var acc = 1;\n" + "\n".join(calls)
        + "\n    return acc;\n}\n"
    )
    return sources


# -- §6.2 stale / unrepresentative profiles --------------------------------------------


def run_stale_profiles(scale: float = 0.5) -> FigureResult:
    """Benefit of PBO+CMO under representative vs unrepresentative
    training data (paper §6.2).

    "It is possible that the training sets will not exercise parts of
    the applications that are important to some users" -- selectivity
    then optimizes the wrong code.  We train once on the real (Zipf)
    input distribution and once on a uniform distribution, then
    benchmark both builds on the real distribution.
    """
    config = mcad_suite(scale)[0]
    app = generate(config)
    bench_input = app.make_input(seed=2)

    representative = train(app.sources, [app.make_input(seed=1)])
    unrepresentative = train(
        app.sources, [app.make_input(seed=1, uniform=True)]
    )

    baseline = _build_and_run(
        app, CompilerOptions(opt_level=2), None, bench_input
    )
    table = Table(
        "Stale-profile ablation (mcad1-like, %d lines): +O4 +P sel=20%%"
        % app.source_lines(),
        ["training data", "run_Mcycles", "speedup_vs_O2"],
    )
    table.add_row("(baseline +O2)", "%.3f" % (baseline["cycles"] / 1e6),
                  "1.000")
    series = [{"training": "baseline", "cycles": baseline["cycles"]}]
    for label, profile_db in (
        ("representative (Zipf)", representative),
        ("unrepresentative (uniform)", unrepresentative),
    ):
        outcome = _build_and_run(
            app,
            CompilerOptions(opt_level=4, pbo=True, selectivity_percent=20,
                            hlo=_aggressive_hlo()),
            profile_db,
            bench_input,
        )
        assert outcome["value"] == baseline["value"]
        table.add_row(label, "%.3f" % (outcome["cycles"] / 1e6),
                      "%.3f" % speedup(baseline["cycles"],
                                       outcome["cycles"]))
        series.append({"training": label, "cycles": outcome["cycles"]})
    table.add_note("unrepresentative training spreads selectivity over the "
                   "wrong call sites (paper section 6.2)")
    return FigureResult("stale_profiles", table, {"series": series})


def run_profile_loop(scale: float = 1.0, **kwargs):
    """Closed-loop profile service vs static baselines (streaming Fig. 6).

    Implemented in :mod:`repro.bench.profile_loop`; imported lazily
    because that module itself builds on :class:`FigureResult`.
    """
    from .profile_loop import run_profile_loop as run

    return run(scale=scale, **kwargs)


#: Registry for the CLI and the EXPERIMENTS.md builder.

FIGURES = {
    "figure1": run_figure1,
    "stale_profiles": run_stale_profiles,
    "figure4": run_figure4,
    "figure5": run_figure5,
    "figure6": run_figure6,
    "history": run_history,
    "ablation_naim": run_naim_ablation,
    "profile_loop": run_profile_loop,
}
