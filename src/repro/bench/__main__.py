"""CLI: regenerate paper figures.

Usage::

    python -m repro.bench figure1 [--quick] [--scale S]
    python -m repro.bench all
"""

from __future__ import annotations

import argparse
import sys

from .figures import FIGURES


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's data figures.",
    )
    parser.add_argument(
        "figure",
        choices=sorted(FIGURES) + ["all"],
        help="which figure to regenerate",
    )
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads (figure1 only)")
    parser.add_argument("--scale", type=float, default=None,
                        help="workload scale factor override")
    parser.add_argument("--csv", action="store_true",
                        help="emit CSV instead of an aligned table")
    args = parser.parse_args(argv)

    names = sorted(FIGURES) if args.figure == "all" else [args.figure]
    for name in names:
        runner = FIGURES[name]
        kwargs = {}
        if name == "figure1":
            if args.quick:
                kwargs["quick"] = True
            if args.scale is not None:
                kwargs["mcad_scale"] = args.scale
        elif args.scale is not None:
            kwargs["scale"] = args.scale
        result = runner(**kwargs)
        print(result.table.to_csv() if args.csv else result.render())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
