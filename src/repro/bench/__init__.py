"""Benchmark harness: regenerates every data figure of the paper."""

from .figures import (
    FIGURES,
    FigureResult,
    run_figure1,
    run_figure4,
    run_figure5,
    run_figure6,
    run_history,
    run_naim_ablation,
    run_profile_loop,
    run_stale_profiles,
)
from .tables import Table, fmt_mb, speedup

__all__ = [
    "FIGURES",
    "FigureResult",
    "run_figure1",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_history",
    "run_naim_ablation",
    "run_profile_loop",
    "run_stale_profiles",
    "Table",
    "fmt_mb",
    "speedup",
]
