"""NAIM: the not-all-in-memory model for large-program optimization."""

from .compaction import (
    CompactionError,
    compact_routine,
    compact_symtab,
    routines_equal,
    uncompact_routine,
    uncompact_symtab,
    zigzag_decode,
    zigzag_encode,
)
from .config import NaimConfig, NaimLevel
from .loader import Loader, LoaderStats
from .memory import (
    CostTable,
    MemoryAccountant,
    callgraph_bytes,
    expanded_routine_bytes,
    expanded_symtab_bytes,
    fmt_bytes,
    llo_working_bytes,
    program_symtab_bytes,
)
from .pools import KIND_IR, KIND_SYMTAB, Handle, Pool, PoolState
from .prefetch import PrefetchPipeline
from .repository import (
    LAYOUT_FILES,
    LAYOUT_PACK,
    OverlayRepository,
    Repository,
    RepositoryError,
)

__all__ = [
    "CompactionError",
    "compact_routine",
    "compact_symtab",
    "routines_equal",
    "uncompact_routine",
    "uncompact_symtab",
    "zigzag_decode",
    "zigzag_encode",
    "NaimConfig",
    "NaimLevel",
    "Loader",
    "LoaderStats",
    "CostTable",
    "MemoryAccountant",
    "callgraph_bytes",
    "expanded_routine_bytes",
    "expanded_symtab_bytes",
    "fmt_bytes",
    "llo_working_bytes",
    "program_symtab_bytes",
    "KIND_IR",
    "KIND_SYMTAB",
    "Handle",
    "Pool",
    "PoolState",
    "OverlayRepository",
    "PrefetchPipeline",
    "Repository",
    "RepositoryError",
    "LAYOUT_FILES",
    "LAYOUT_PACK",
]
