"""Per-repository string interning for pool decode (hot-path support).

Uncompaction decodes the same small set of strings over and over:
module names, block labels, source-language tags, annotation keys.
Each ``uncompact_routine`` call used to pay ``bytes.decode("utf-8")``
plus a fresh ``str`` allocation for every one of them, every fetch.

An :class:`InternPool` maps the *raw encoded bytes* to one canonical
``str`` per session, so a string is decoded once per repository
lifetime rather than once per fetch.  Canonical strings also make the
dict lookups downstream (symbol tables, label maps, annotation keys)
cheaper: CPython short-circuits ``str`` comparison on pointer
equality, and :func:`sys.intern` extends that sharing across pools.

The pool is deliberately unbounded: the universe of strings in a
compilation is the program's identifier set, which the program symbol
table already keeps resident for the whole session anyway (paper
§4.1's "permanent objects").  ``clear()`` exists for long-lived
daemons that recycle a repository between unrelated programs.
"""

from __future__ import annotations

import sys
from typing import Dict


class InternPool:
    """Bytes -> canonical ``str`` cache shared across pool decodes."""

    __slots__ = ("_by_raw", "hits", "misses")

    def __init__(self) -> None:
        self._by_raw: Dict[bytes, str] = {}
        self.hits = 0
        self.misses = 0

    def utf8(self, raw: bytes) -> str:
        """Decode UTF-8 ``raw`` to the session's canonical string.

        Raises ``UnicodeDecodeError`` exactly like ``bytes.decode``;
        callers wrap it in their own format error.
        """
        text = self._by_raw.get(raw)
        if text is None:
            self.misses += 1
            text = sys.intern(raw.decode("utf-8"))
            self._by_raw[bytes(raw)] = text
            return text
        self.hits += 1
        return text

    def canonical(self, text: str) -> str:
        """Canonicalize an already-decoded string (wire/JSON inputs)."""
        return sys.intern(text)

    def __len__(self) -> int:
        return len(self._by_raw)

    def clear(self) -> None:
        self._by_raw.clear()

    def stats(self) -> Dict[str, int]:
        return {"entries": len(self._by_raw), "hits": self.hits,
                "misses": self.misses}
